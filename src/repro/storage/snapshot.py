"""Snapshot persistence for Cinderella-partitioned tables.

Saves a :class:`~repro.table.partitioned.CinderellaTable` — configuration,
attribute dictionary, and the exact partition membership with all entity
payloads — to a single JSON file, and restores it without re-running the
partitioning algorithm.  Restoring replays each partition's members in
stored order, so the split-starter pairs are rebuilt deterministically
with the same incremental rule the online algorithm uses (the pair after
restore equals the pair a fresh partition would reach when fed its
members in that order; the *placement* of every entity is preserved
exactly).

The format is versioned and checksummed: every snapshot carries a CRC32
over its canonical payload, so truncation and byte-level corruption are
always detected at load time.  Loaders reject unknown versions,
malformed payloads, and checksum mismatches with
:class:`SnapshotFormatError` rather than guessing.

This module also persists the *distributed coordinator*
(:func:`save_store` / :func:`load_store`): the full catalog — exact
partition ids, members, and split-starter pairs — plus the cluster's
replica placement and node health.  Together with the write-ahead log
(:mod:`repro.storage.wal`) this is the coordinator's crash-recovery
basis: ``load_store`` restores the checkpointed state bit-for-bit and
the WAL tail replays deterministically on top of it.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from pathlib import Path
from typing import Any, Union

from repro.core.config import CinderellaConfig
from repro.core.sizes import (
    AttributeCountSizeModel,
    ByteSizeModel,
    SizeModel,
    UniformSizeModel,
)

FORMAT_VERSION = 2
STORE_FORMAT_VERSION = 1
NODE_CHECKPOINT_FORMAT = "repro-cinderella-node-checkpoint"
NODE_CHECKPOINT_VERSION = 1

_SIZE_MODELS: dict[str, type[SizeModel]] = {
    "UniformSizeModel": UniformSizeModel,
    "AttributeCountSizeModel": AttributeCountSizeModel,
    "ByteSizeModel": ByteSizeModel,
}


class SnapshotFormatError(ValueError):
    """Raised when a snapshot file cannot be interpreted."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": base64.b64encode(bytes(value)).decode("ascii")}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$bytes"}:
            return base64.b64decode(value["$bytes"])
        raise SnapshotFormatError(f"unexpected nested object value: {value!r}")
    return value


def _payload_checksum(document: dict) -> str:
    """CRC32 over the canonical JSON of everything but the checksum."""
    payload = {key: value for key, value in document.items() if key != "checksum"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"


def _write_document(document: dict, path: Union[str, Path]) -> None:
    """Stamp the checksum and write atomically via a temp file.

    The temp file is fsynced before the rename, so a crash anywhere in
    this function leaves either the previous snapshot or the complete
    new one under the final name — never a torn file.  Checkpoint
    ordering rests on this: the WAL may only be truncated once the
    snapshot covering it has *returned* from here.
    """
    document["checksum"] = _payload_checksum(document)
    target = Path(path)
    temporary = target.with_suffix(target.suffix + ".tmp")
    with temporary.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(document))
        handle.flush()
        os.fsync(handle.fileno())
    temporary.replace(target)


def _read_document(path: Union[str, Path], expected_format: str) -> dict:
    """Read, parse, and integrity-check a snapshot document."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        # ValueError covers both JSONDecodeError and the UnicodeDecodeError
        # a byte-flipped file raises before JSON even sees it.
        raise SnapshotFormatError(f"cannot read snapshot {path}: {error}") from error
    if not isinstance(document, dict) or document.get("format") != expected_format:
        raise SnapshotFormatError(f"{path} is not a {expected_format} file")
    return document


def _verify_checksum(document: dict, path: Union[str, Path]) -> None:
    stated = document.get("checksum")
    if stated != _payload_checksum(document):
        raise SnapshotFormatError(
            f"snapshot {path} failed its integrity check "
            f"(checksum {stated!r}) — the file is corrupted"
        )


def _table_document(table) -> dict:
    """The snapshot body shared by table snapshots and node checkpoints:
    config, dictionary, and exact partition membership with payloads."""
    config = table.config
    size_model_name = type(config.size_model).__name__
    if size_model_name not in _SIZE_MODELS:
        raise SnapshotFormatError(
            f"cannot persist custom size model {size_model_name}"
        )
    partitions = []
    for partition in table.catalog:
        members = []
        for eid, _mask, _size in partition.members():
            entity = table.get(eid)
            members.append(
                {
                    "eid": eid,
                    "attributes": {
                        name: _encode_value(value)
                        for name, value in entity.attributes.items()
                    },
                }
            )
        partitions.append({"members": members})
    return {
        "config": {
            "max_partition_size": config.max_partition_size,
            "weight": config.weight,
            "size_model": size_model_name,
            "use_synopsis_index": config.use_synopsis_index,
            "selection": config.selection,
            "exact_starters": config.exact_starters,
        },
        "page_size": table.page_size,
        "dictionary": list(table.dictionary.names()),
        "partitions": partitions,
    }


def _table_from_document(document: dict, path, result_cache=None):
    """Rebuild a :class:`CinderellaTable` from a snapshot body."""
    from repro.catalog.dictionary import AttributeDictionary
    from repro.table.partitioned import CinderellaTable

    try:
        config_doc = document["config"]
        size_model_cls = _SIZE_MODELS[config_doc["size_model"]]
        config = CinderellaConfig(
            max_partition_size=config_doc["max_partition_size"],
            weight=config_doc["weight"],
            size_model=size_model_cls(),
            use_synopsis_index=config_doc["use_synopsis_index"],
            selection=config_doc["selection"],
            exact_starters=config_doc["exact_starters"],
        )
        dictionary = AttributeDictionary(document["dictionary"])
        table = CinderellaTable(
            config=config,
            dictionary=dictionary,
            page_size=document["page_size"],
            result_cache=result_cache,
        )
        for partition_doc in document["partitions"]:
            table._restore_partition(
                [
                    (
                        member["eid"],
                        {
                            name: _decode_value(value)
                            for name, value in member["attributes"].items()
                        },
                    )
                    for member in partition_doc["members"]
                ]
            )
    except (KeyError, TypeError) as error:
        raise SnapshotFormatError(f"malformed snapshot {path}: {error}") from error
    return table


def save_table(table, path: Union[str, Path]) -> None:
    """Write a snapshot of *table* to *path* (JSON, atomic via temp file)."""
    document = {
        "format": "repro-cinderella-snapshot",
        "version": FORMAT_VERSION,
        **_table_document(table),
    }
    _write_document(document, path)


def load_table(path: Union[str, Path]):
    """Restore a :class:`CinderellaTable` from a snapshot file.

    Partition membership is restored exactly (partition ids are freshly
    assigned); no rating or splitting runs during the load.
    """
    document = _read_document(path, "repro-cinderella-snapshot")
    if document.get("version") != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    _verify_checksum(document, path)
    return _table_from_document(document, path)


def save_node_checkpoint(table, wal_seq: int, path: Union[str, Path]) -> None:
    """Checkpoint a serving node's table to *path*.

    A node checkpoint is a table snapshot plus ``wal_seq`` — the journal
    position it covers.  Recovery loads the checkpoint and replays only
    WAL records with a later sequence number, so replay work is bounded
    by the writes since the last checkpoint instead of the node's whole
    history.
    """
    document = {
        "format": NODE_CHECKPOINT_FORMAT,
        "version": NODE_CHECKPOINT_VERSION,
        "wal_seq": wal_seq,
        **_table_document(table),
    }
    _write_document(document, path)


def load_node_checkpoint(path: Union[str, Path], result_cache=None):
    """Restore a node checkpoint; returns ``(table, wal_seq)``.

    ``wal_seq`` is the journal position the checkpoint covers; the
    caller must skip WAL records at or below it when replaying.
    """
    document = _read_document(path, NODE_CHECKPOINT_FORMAT)
    if document.get("version") != NODE_CHECKPOINT_VERSION:
        raise SnapshotFormatError(
            f"unsupported node checkpoint version {document.get('version')!r}"
        )
    _verify_checksum(document, path)
    wal_seq = document.get("wal_seq")
    if not isinstance(wal_seq, int):
        raise SnapshotFormatError(f"node checkpoint {path} lacks a wal_seq")
    table = _table_from_document(document, path, result_cache=result_cache)
    return table, wal_seq


# ----------------------------------------------------------------------
# distributed coordinator snapshots (checkpoint basis for WAL recovery)
# ----------------------------------------------------------------------
def save_store(store, path: Union[str, Path]) -> None:
    """Checkpoint a :class:`DistributedUniversalStore` to *path*.

    Persists the coordinator's exact state: partition ids, members (in
    insertion order), split-starter pairs, partitioner counters, and the
    cluster's replica placement and node health.  ``wal_seq`` records
    the journal position this snapshot covers; recovery replays only
    WAL records after it.  Only Cinderella partitioners are supported —
    baselines carry partitioner-specific state this format does not
    model.
    """
    from repro.core.partitioner import CinderellaPartitioner

    if not isinstance(store.partitioner, CinderellaPartitioner):
        raise SnapshotFormatError(
            "only CinderellaPartitioner-backed stores can be persisted"
        )
    config = store.partitioner.config
    size_model_name = type(config.size_model).__name__
    if size_model_name not in _SIZE_MODELS:
        raise SnapshotFormatError(
            f"cannot persist custom size model {size_model_name}"
        )
    partitions = []
    for partition in store.catalog:
        starters = partition.starters
        partitions.append({
            "pid": partition.pid,
            "members": [
                [eid, mask, size] for eid, mask, size in partition.members()
            ],
            "starters": [
                starters.eid_a, starters.mask_a,
                starters.eid_b, starters.mask_b,
            ],
        })
    cluster = store.cluster
    document = {
        "format": "repro-cinderella-store-snapshot",
        "version": STORE_FORMAT_VERSION,
        "config": {
            "max_partition_size": config.max_partition_size,
            "weight": config.weight,
            "size_model": size_model_name,
            "use_synopsis_index": config.use_synopsis_index,
            "selection": config.selection,
            "exact_starters": config.exact_starters,
        },
        "split_count": store.partitioner.split_count,
        "ratings_computed": store.partitioner.ratings_computed,
        "next_pid": store.catalog.next_partition_id,
        "partitions": partitions,
        "cluster": {
            "node_count": len(cluster),
            "replication_factor": cluster.replication_factor,
            "nodes": [
                {
                    "node_id": node.node_id,
                    "state": node.state.value,
                    "slowdown": node.slowdown,
                    "drop_every": node.drop_every,
                }
                for node in cluster.nodes
            ],
            "replicas": [
                [pid, list(cluster.replica_nodes(pid))]
                for pid in sorted(cluster.partition_ids())
            ],
            "sizes": [
                [pid, cluster.partition_size(pid)]
                for pid in sorted(cluster.partition_ids())
            ],
            "unhosted": sorted(cluster.unhosted_partitions()),
        },
        "wal_seq": store.wal.last_seq if store.wal is not None else 0,
        "applied_op_ids": sorted(store.applied_op_ids),
    }
    _write_document(document, path)


def load_store(store_path: Union[str, Path], network=None):
    """Restore a coordinator checkpoint; returns ``(store, wal_seq)``.

    The restored store is bit-for-bit the checkpointed one: same
    partition ids, members, starter pairs, replica placement, and node
    health.  ``wal_seq`` is the journal position the snapshot covers.
    """
    from repro.core.partitioner import CinderellaPartitioner
    from repro.distributed.failures import NodeState
    from repro.distributed.store import DistributedUniversalStore

    document = _read_document(store_path, "repro-cinderella-store-snapshot")
    if document.get("version") != STORE_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported store snapshot version {document.get('version')!r}"
        )
    _verify_checksum(document, store_path)
    try:
        config_doc = document["config"]
        size_model_cls = _SIZE_MODELS[config_doc["size_model"]]
        config = CinderellaConfig(
            max_partition_size=config_doc["max_partition_size"],
            weight=config_doc["weight"],
            size_model=size_model_cls(),
            use_synopsis_index=config_doc["use_synopsis_index"],
            selection=config_doc["selection"],
            exact_starters=config_doc["exact_starters"],
        )
        cluster_doc = document["cluster"]
        store = DistributedUniversalStore(
            cluster_doc["node_count"],
            CinderellaPartitioner(config),
            network=network,
            replication_factor=cluster_doc["replication_factor"],
        )
        catalog = store.catalog
        for partition_doc in document["partitions"]:
            partition = catalog.create_partition_with_id(partition_doc["pid"])
            for eid, mask, size in partition_doc["members"]:
                catalog.add_entity(
                    partition.pid, eid, mask, size, observe_starters=False
                )
            starters = partition.starters
            (starters.eid_a, starters.mask_a,
             starters.eid_b, starters.mask_b) = partition_doc["starters"]
        catalog.next_partition_id = document["next_pid"]
        store.partitioner.split_count = document["split_count"]
        store.partitioner.ratings_computed = document["ratings_computed"]
        cluster = store.cluster
        for node_doc in cluster_doc["nodes"]:
            node = cluster.nodes[node_doc["node_id"]]
            node.state = NodeState(node_doc["state"])
            node.slowdown = node_doc["slowdown"]
            node.drop_every = node_doc["drop_every"]
        sizes = {pid: size for pid, size in cluster_doc["sizes"]}
        cluster._sizes = dict(sizes)
        cluster._replica_nodes = {
            pid: list(nids) for pid, nids in cluster_doc["replicas"] if nids
        }
        cluster._unhosted = set(cluster_doc["unhosted"])
        for pid, nids in cluster._replica_nodes.items():
            for nid in nids:
                node = cluster.nodes[nid]
                node.partitions.add(pid)
                node.load += sizes[pid]
        wal_seq = document["wal_seq"]
        # absent in pre-ingest-hardening snapshots — default to empty
        store.applied_op_ids = set(document.get("applied_op_ids", ()))
    except (KeyError, TypeError, IndexError, ValueError) as error:
        if isinstance(error, SnapshotFormatError):
            raise
        raise SnapshotFormatError(
            f"malformed store snapshot {store_path}: {error}"
        ) from error
    problems = store.check_placement()
    if problems:
        raise SnapshotFormatError(
            f"store snapshot {store_path} is internally inconsistent: "
            f"{problems[:3]}"
        )
    return store, wal_seq
