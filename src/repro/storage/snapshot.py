"""Snapshot persistence for Cinderella-partitioned tables.

Saves a :class:`~repro.table.partitioned.CinderellaTable` — configuration,
attribute dictionary, and the exact partition membership with all entity
payloads — to a single JSON file, and restores it without re-running the
partitioning algorithm.  Restoring replays each partition's members in
stored order, so the split-starter pairs are rebuilt deterministically
with the same incremental rule the online algorithm uses (the pair after
restore equals the pair a fresh partition would reach when fed its
members in that order; the *placement* of every entity is preserved
exactly).

The format is versioned; loaders reject unknown versions and malformed
payloads with :class:`SnapshotFormatError` rather than guessing.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any, Union

from repro.core.config import CinderellaConfig
from repro.core.sizes import (
    AttributeCountSizeModel,
    ByteSizeModel,
    SizeModel,
    UniformSizeModel,
)

FORMAT_VERSION = 1

_SIZE_MODELS: dict[str, type[SizeModel]] = {
    "UniformSizeModel": UniformSizeModel,
    "AttributeCountSizeModel": AttributeCountSizeModel,
    "ByteSizeModel": ByteSizeModel,
}


class SnapshotFormatError(ValueError):
    """Raised when a snapshot file cannot be interpreted."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": base64.b64encode(bytes(value)).decode("ascii")}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$bytes"}:
            return base64.b64decode(value["$bytes"])
        raise SnapshotFormatError(f"unexpected nested object value: {value!r}")
    return value


def save_table(table, path: Union[str, Path]) -> None:
    """Write a snapshot of *table* to *path* (JSON, atomic via temp file)."""
    config = table.config
    size_model_name = type(config.size_model).__name__
    if size_model_name not in _SIZE_MODELS:
        raise SnapshotFormatError(
            f"cannot persist custom size model {size_model_name}"
        )
    partitions = []
    for partition in table.catalog:
        members = []
        for eid, _mask, _size in partition.members():
            entity = table.get(eid)
            members.append(
                {
                    "eid": eid,
                    "attributes": {
                        name: _encode_value(value)
                        for name, value in entity.attributes.items()
                    },
                }
            )
        partitions.append({"members": members})
    document = {
        "format": "repro-cinderella-snapshot",
        "version": FORMAT_VERSION,
        "config": {
            "max_partition_size": config.max_partition_size,
            "weight": config.weight,
            "size_model": size_model_name,
            "use_synopsis_index": config.use_synopsis_index,
            "selection": config.selection,
            "exact_starters": config.exact_starters,
        },
        "page_size": table.page_size,
        "dictionary": list(table.dictionary.names()),
        "partitions": partitions,
    }
    target = Path(path)
    temporary = target.with_suffix(target.suffix + ".tmp")
    temporary.write_text(json.dumps(document), encoding="utf-8")
    temporary.replace(target)


def load_table(path: Union[str, Path]):
    """Restore a :class:`CinderellaTable` from a snapshot file.

    Partition membership is restored exactly (partition ids are freshly
    assigned); no rating or splitting runs during the load.
    """
    from repro.catalog.dictionary import AttributeDictionary
    from repro.table.partitioned import CinderellaTable

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(f"cannot read snapshot {path}: {error}") from error
    if not isinstance(document, dict) or document.get("format") != (
        "repro-cinderella-snapshot"
    ):
        raise SnapshotFormatError(f"{path} is not a Cinderella snapshot")
    if document.get("version") != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    try:
        config_doc = document["config"]
        size_model_cls = _SIZE_MODELS[config_doc["size_model"]]
        config = CinderellaConfig(
            max_partition_size=config_doc["max_partition_size"],
            weight=config_doc["weight"],
            size_model=size_model_cls(),
            use_synopsis_index=config_doc["use_synopsis_index"],
            selection=config_doc["selection"],
            exact_starters=config_doc["exact_starters"],
        )
        dictionary = AttributeDictionary(document["dictionary"])
        table = CinderellaTable(
            config=config, dictionary=dictionary, page_size=document["page_size"]
        )
        for partition_doc in document["partitions"]:
            table._restore_partition(
                [
                    (
                        member["eid"],
                        {
                            name: _decode_value(value)
                            for name, value in member["attributes"].items()
                        },
                    )
                    for member in partition_doc["members"]
                ]
            )
    except (KeyError, TypeError) as error:
        raise SnapshotFormatError(f"malformed snapshot {path}: {error}") from error
    return table
