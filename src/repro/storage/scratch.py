"""Signal-safe scratch directories for examples, CLIs, and benchmarks.

Long-running demonstration workloads (``repro obs``, the fault-tolerance
and robust-ingest examples) write WAL segments and snapshot files into a
temporary directory.  A bare ``tempfile.mkdtemp`` leaks that directory
on *every* exit path, and even ``TemporaryDirectory`` leaks it when the
process dies to SIGTERM — the default handler kills the interpreter
without unwinding context managers.

:func:`scratch_dir` closes both holes: the directory is removed on
normal exit, on exceptions (including ``KeyboardInterrupt``), and on
SIGTERM, which is converted to ``SystemExit`` for the duration of the
context so the ``finally`` unwind runs.  The previous SIGTERM handler
is restored on exit; when not running on the main thread (where signal
handlers cannot be installed) the conversion is skipped and the manager
degrades to plain cleanup-on-unwind.
"""

from __future__ import annotations

import shutil
import signal
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


def _raise_system_exit(signum: int, _frame: object) -> None:
    raise SystemExit(128 + signum)


@contextmanager
def scratch_dir(prefix: str = "repro-") -> Iterator[Path]:
    """A temporary directory that is removed on *every* exit path.

    >>> with scratch_dir(prefix="doctest-") as workdir:
    ...     _ = (workdir / "x.wal").write_text("record")
    ...     workdir.is_dir()
    True
    >>> workdir.exists()
    False
    """
    previous_handler = None
    on_main_thread = threading.current_thread() is threading.main_thread()
    if on_main_thread:
        previous_handler = signal.signal(signal.SIGTERM, _raise_system_exit)
    path = Path(tempfile.mkdtemp(prefix=prefix))
    try:
        yield path
    finally:
        shutil.rmtree(path, ignore_errors=True)
        if on_main_thread:
            signal.signal(signal.SIGTERM, previous_handler)
