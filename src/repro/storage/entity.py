"""Entities of a universal table.

An entity is a bag of ``attribute → value`` pairs — one row of the sparse
universal table of Figure 1.  Entities do not share a schema: a camera has
``aperture``, a hard disk has ``rotation``, both have ``name`` and
``weight``.  The entity's *synopsis* is the set of attributes it
instantiates; values never influence partitioning, only presence does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary


@dataclass(frozen=True)
class Entity:
    """One irregularly structured entity: an id and its attribute values.

    Attribute values may be ``None`` only to *explicitly* represent SQL
    NULL in an instantiated attribute; an attribute the entity does not
    have is simply absent from the mapping (and from the synopsis).
    """

    entity_id: int
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.attributes:
            if not isinstance(name, str) or not name:
                raise ValueError(
                    f"attribute names must be non-empty strings, got {name!r}"
                )

    def attribute_names(self) -> tuple[str, ...]:
        """The entity synopsis as attribute names."""
        return tuple(self.attributes)

    def synopsis_mask(self, dictionary: "AttributeDictionary") -> int:
        """The entity synopsis as a bitmask, interning unseen attributes."""
        return dictionary.encode(self.attributes)

    def instantiates(self, name: str) -> bool:
        return name in self.attributes

    def instantiates_any(self, names: tuple[str, ...]) -> bool:
        """The paper's query predicate: ``a₁ IS NOT NULL OR a₂ IS NOT NULL …``."""
        return any(name in self.attributes for name in names)

    def instantiates_all(self, names: tuple[str, ...]) -> bool:
        return all(name in self.attributes for name in names)

    def project(self, names: tuple[str, ...]) -> dict[str, Any]:
        """Projection to the query's attribute list (absent → None)."""
        return {name: self.attributes.get(name) for name in names}
