"""Minimal ASCII line charts for benchmark output.

Enough to show a trend in a terminal without any plotting dependency:
each series is resampled onto a fixed-width grid and drawn with its own
marker character; axes are annotated with min/max.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "*o+x#@%&"


def render_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render (x, y) series as an ASCII chart with a legend.

    Series may have different x grids; each point is nearest-neighbour
    mapped onto the character grid.  Empty input renders a placeholder.
    """
    points_exist = any(series_points for series_points in series.values())
    if not points_exist:
        return "(no data)"
    xs = [x for pts in series.values() for x, _y in pts]
    ys = [y for pts in series.values() for _x, y in pts]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>12.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_low:>12.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 14 + "└" + "─" * width)
    lines.append(
        " " * 14 + f"{x_low:<.4g}" + " " * max(1, width - 16) + f"{x_high:.4g}"
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
