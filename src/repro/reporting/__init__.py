"""Reporting: ASCII renderers for the benchmark harness output."""

from repro.reporting.chart import render_line_chart
from repro.reporting.tables import format_kv_block, format_series, format_table

__all__ = [
    "format_kv_block",
    "format_series",
    "format_table",
    "render_line_chart",
]
