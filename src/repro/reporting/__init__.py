"""Reporting: ASCII renderers for the benchmark harness output."""

from repro.reporting.chart import render_line_chart
from repro.reporting.obs_summary import (
    format_metrics_table,
    format_recent_events,
    format_run_summary,
    format_slow_ops,
    format_span_tree,
    format_top_spans,
)
from repro.reporting.tables import format_kv_block, format_series, format_table

__all__ = [
    "format_kv_block",
    "format_metrics_table",
    "format_recent_events",
    "format_run_summary",
    "format_slow_ops",
    "format_span_tree",
    "format_top_spans",
    "format_series",
    "format_table",
    "render_line_chart",
]
