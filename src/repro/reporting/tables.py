"""ASCII table and series renderers for the benchmark harness.

Every benchmark prints the rows/series of its paper figure or table
through these helpers, so the harness output is uniform and diffable
(EXPERIMENTS.md embeds it verbatim).
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table.

    Floats are formatted with *float_format*; all other values via
    ``str``.  Column widths adapt to the content.
    """
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[float, float]], value_unit: str = ""
) -> str:
    """Render one (x, y) series as a compact line, for figure benches."""
    rendered = "  ".join(f"({x:.2f}, {y:.3f}{value_unit})" for x, y in points)
    return f"{name}: {rendered}"


def format_kv_block(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render labelled values, one per line, under a title."""
    width = max(len(key) for key, _ in pairs) if pairs else 0
    lines = [title]
    for key, value in pairs:
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)
