"""ASCII renderers for the observability layer's run summaries.

``python -m repro obs`` renders an :class:`~repro.obs.ObservabilityState`
through these helpers: the metric families as a table, the heaviest span
names, the slow-op log, the freshest events, and full span trees with
indentation showing the nesting.  Everything is plain fixed-width text in
the same style as :mod:`repro.reporting.tables`, so run summaries diff
cleanly between runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.reporting.tables import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventLog
    from repro.obs.registry import MetricsRegistry
    from repro.obs.runtime import ObservabilityState
    from repro.obs.tracing import Span, Tracer


def _sample_value(value: Any) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_metrics_table(registry: "MetricsRegistry") -> str:
    """All metric families as one ``name | type | labels | value`` table.

    Histograms are summarized to ``count`` and ``sum`` (the full bucket
    vector lives in the Prometheus/JSON expositions).
    """
    rows: list[list[Any]] = []
    for family in registry.families():
        for child in family.children():
            label_text = ",".join(
                f"{name}={value}"
                for name, value in zip(family.labelnames, child.labels)
            )
            if family.kind == "histogram":
                rows.append([
                    family.name, family.kind, label_text,
                    f"count={int(child.count)} sum={child.sum:.6g}",
                ])
            else:
                rows.append([
                    family.name, family.kind, label_text,
                    _sample_value(child.value),
                ])
    if not rows:
        return "no metrics recorded"
    return format_table(["metric", "type", "labels", "value"], rows)


def format_top_spans(tracer: "Tracer", n: int = 10) -> str:
    """The heaviest span names by cumulative time."""
    ranked = tracer.top_spans(n)
    if not ranked:
        return "no spans recorded"
    rows = [
        [name, count, f"{total * 1e3:.2f}",
         f"{total / count * 1e6:.1f}" if count else "-"]
        for name, count, total in ranked
    ]
    return format_table(
        ["span", "calls", "total ms", "mean us"], rows,
        title=f"Top spans by cumulative time ({tracer.roots_finished} traces "
              f"finished, {tracer.traces_dropped} evicted)",
    )


def format_slow_ops(tracer: "Tracer", n: int = 10) -> str:
    """The most recent spans that crossed the slow threshold."""
    if tracer.slow_threshold_s is None:
        return "slow-op log disabled"
    recent = list(tracer.slow_ops)[-n:]
    if not recent:
        return (
            f"no operations slower than "
            f"{tracer.slow_threshold_s * 1e3:g} ms"
        )
    rows = [
        [op["name"], f"{op['duration_ms']:.2f}",
         ",".join(f"{k}={v}" for k, v in sorted(op["attributes"].items())),
         op["error"] or ""]
        for op in recent
    ]
    return format_table(
        ["span", "ms", "attributes", "error"], rows,
        title=f"Slow operations (>= {tracer.slow_threshold_s * 1e3:g} ms, "
              f"{tracer.slow_ops_seen} seen)",
    )


def format_recent_events(events: "EventLog", n: int = 15) -> str:
    """The freshest ring-buffer events, oldest first."""
    recent = events.events()[-n:]
    if not recent:
        return "no events recorded"
    rows = [
        [event.seq, event.kind,
         ",".join(f"{k}={v}" for k, v in sorted(event.fields.items()))]
        for event in recent
    ]
    return format_table(
        ["seq", "kind", "fields"], rows,
        title=f"Recent events ({events.emitted} emitted, "
              f"{events.dropped} dropped)",
    )


def format_span_tree(span: "Span", indent: str = "") -> str:
    """One finished span tree, children indented under their parent."""
    attributes = ",".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    line = f"{indent}{span.name}  {span.duration_s * 1e3:.3f} ms"
    if attributes:
        line += f"  [{attributes}]"
    if span.error is not None:
        line += f"  !{span.error}"
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent + "  "))
    return "\n".join(lines)


def format_run_summary(
    state: "ObservabilityState",
    top: int = 10,
    traces: int = 0,
    events: int = 15,
) -> str:
    """The full human-readable digest of one observability session."""
    sections = [format_metrics_table(state.registry)]
    if state.tracer is not None:
        sections.append(format_top_spans(state.tracer, top))
        sections.append(format_slow_ops(state.tracer))
        if traces > 0:
            for root in state.tracer.recent_traces(traces):
                sections.append(format_span_tree(root))
    sections.append(format_recent_events(state.events, events))
    return "\n\n".join(sections)
