"""Shared fixtures for the paper-reproduction benchmark harness.

Every benchmark regenerates one figure or table of the evaluation section
(see DESIGN.md's per-experiment index) and prints the same rows/series the
paper reports, plus assertions on the qualitative shape (who wins, where
the crossovers fall).

Scaling
-------
The paper ran 100 000 DBpedia entities and TPC-H SF 0.5 on PostgreSQL; a
pure-Python run of that size takes tens of minutes, so the default harness
scale is 1/5 of the paper's with all size limits scaled alike (ratios,
orderings, and crossovers are scale-free — asserted by the benches).  Set
``REPRO_SCALE=paper`` for the full-size run.

Loads are expensive and shared: the ``cinderella_loads`` fixture caches
one physical table load per ``(B, w)`` configuration per session, together
with the per-insert measurements Figure 8 needs.
"""

from __future__ import annotations

import gc
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import pytest

from repro.core.config import CinderellaConfig
from repro.cost.model import CostModel
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable
from repro.workloads.dbpedia import generate_dbpedia_persons, validate_distribution
from repro.workloads.querygen import (
    QuerySpec,
    build_query_workload,
    representative_queries,
)

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass
else:
    # same deterministic profile as tests/conftest.py: benches that draw
    # examples (or shrink failures) must replay identically run to run
    _hypothesis_settings.register_profile(
        "repro-deterministic", derandomize=True, deadline=None
    )
    _hypothesis_settings.load_profile("repro-deterministic")

PAPER_SCALE = os.environ.get("REPRO_SCALE", "small") == "paper"

#: number of DBpedia person entities (paper: 100 000)
N_ENTITIES = 100_000 if PAPER_SCALE else 20_000
#: partition size limits of Figures 5 and 8 (paper: 500 / 5 000 / 50 000)
B_VALUES = (500, 5_000, 50_000) if PAPER_SCALE else (100, 1_000, 10_000)
#: the middle limit, used by Figures 6 and 7 (paper: 5 000)
B_DEFAULT = B_VALUES[1]
#: weights of Figure 6
W_VALUES = (0.2, 0.5, 0.8)
#: weight sweep of Figure 7
W_SWEEP = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
#: TPC-H scale factor of Table I (paper: 0.5)
TPCH_SF = 0.05 if PAPER_SCALE else 0.005
#: TPC-H partition size limits of Table I (paper: 500 / 2 000 / 10 000)
TPCH_B_VALUES = (500, 2_000, 10_000) if PAPER_SCALE else (200, 800, 4_000)
#: page size; small pages keep partitions multi-page at harness scale
PAGE_SIZE = 8192 if PAPER_SCALE else 1024

DATASET_SEED = 42
#: seed for benchmark-local RNGs (query sampling, workload traces)
WORKLOAD_SEED = 42


@dataclass
class LoadedCinderella:
    """One Cinderella-partitioned load plus its per-insert measurements."""

    config: CinderellaConfig
    table: CinderellaTable
    #: simulated per-insert times (cost model, ms) — Figure 8's histogram
    insert_sim_ms: list[float] = field(default_factory=list)
    #: wall-clock per-insert times (ms), secondary evidence
    insert_wall_ms: list[float] = field(default_factory=list)
    #: inserts that triggered at least one split
    split_inserts: int = 0
    load_wall_s: float = 0.0


@pytest.fixture(scope="session")
def dbpedia():
    """The DBpedia person data set (validated against Figure 4)."""
    dataset = generate_dbpedia_persons(n_entities=N_ENTITIES, seed=DATASET_SEED)
    violations = validate_distribution(dataset)
    assert violations == [], violations
    return dataset


@pytest.fixture(scope="session")
def query_workload(dbpedia) -> list[QuerySpec]:
    """The paper's representative selective-query workload."""
    dictionary = dbpedia.dictionary()
    masks = [entity.synopsis_mask(dictionary) for entity in dbpedia.entities]
    specs = build_query_workload(masks, dictionary, max_triples=200)
    return representative_queries(specs, bucket_width=0.05, per_bucket=3)


@pytest.fixture(scope="session")
def universal_table(dbpedia) -> UniversalTable:
    table = UniversalTable(page_size=PAGE_SIZE)
    for entity in dbpedia.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    return table


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture(scope="session")
def cinderella_loads(dbpedia):
    """Factory caching one measured physical load per (B, w) setting."""
    cache: dict[tuple[float, float], LoadedCinderella] = {}
    model = CostModel()

    def load(max_partition_size: float, weight: float) -> LoadedCinderella:
        key = (max_partition_size, weight)
        if key in cache:
            return cache[key]
        config = CinderellaConfig(
            max_partition_size=max_partition_size, weight=weight
        )
        table = CinderellaTable(config, page_size=PAGE_SIZE)
        loaded = LoadedCinderella(config=config, table=table)
        partitioner = table.partitioner
        started_load = time.perf_counter()
        for entity in dbpedia.entities:
            ratings_before = partitioner.ratings_computed
            io_before = table.io.snapshot()
            started = time.perf_counter()
            outcome = table.insert(entity.attributes, entity_id=entity.entity_id)
            loaded.insert_wall_ms.append((time.perf_counter() - started) * 1000)
            io_delta = table.io.delta_since(io_before)
            relocations = sum(1 for m in outcome.moves if m.from_pid is not None)
            loaded.insert_sim_ms.append(
                model.insert_time_ms(
                    ratings_computed=partitioner.ratings_computed - ratings_before,
                    records_moved=relocations,
                    bytes_moved=io_delta.bytes_read,
                    partitions_created=len(outcome.created_partitions),
                )
            )
            if outcome.splits:
                loaded.split_inserts += 1
        loaded.load_wall_s = time.perf_counter() - started_load
        cache[key] = loaded
        return loaded

    return load


# ---------------------------------------------------------------------------
# shared timing protocol: quiet-floor estimation over interleaved runs
#
# Measuring small effects on a shared machine needs noise control, and
# several benches (observability overhead, the server load generator)
# need the same three pieces: CPU-timed runs with a ``gc.collect()``
# beforehand, A/B interleaving so a noisy window cannot systematically
# land on one mode, and the *quiet floor* — machine interference only
# ever adds time, so the mean of the K smallest of N runs approaches
# the interference-free floor (a raw minimum is an extreme order
# statistic; one lucky run swings it).
# ---------------------------------------------------------------------------

def timed_cpu_run(fn: Callable[[], None]) -> float:
    """One CPU-timed run of ``fn`` (collects garbage first, not charged)."""
    gc.collect()
    started = time.process_time()
    fn()
    return time.process_time() - started


def interleaved_cpu_runs(
    run_a: Callable[[], None],
    run_b: Callable[[], None],
    repeats: int,
) -> tuple[list[float], list[float]]:
    """CPU-time two workloads ``repeats`` times each, interleaved.

    The modes alternate run by run, in alternating order within each
    pair, so a long quiet window is sampled by both modes and a noise
    burst cannot systematically land on one of them.
    """
    a_runs: list[float] = []
    b_runs: list[float] = []
    for repeat in range(repeats):
        if repeat % 2 == 0:
            a_runs.append(timed_cpu_run(run_a))
            b_runs.append(timed_cpu_run(run_b))
        else:
            b_runs.append(timed_cpu_run(run_b))
            a_runs.append(timed_cpu_run(run_a))
    return a_runs, b_runs


def quiet_floor(runs: Sequence[float], floor_k: int = 5) -> float:
    """The mean of the ``floor_k`` smallest runs — the quiet-floor estimate."""
    if not runs:
        raise ValueError("quiet_floor needs at least one run")
    k = min(floor_k, len(runs))
    return sum(sorted(runs)[:k]) / k


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of unsorted values."""
    if not values:
        raise ValueError("percentile needs at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def average_query_times_by_selectivity(
    table,
    workload: list[QuerySpec],
    model: CostModel,
    bucket_width: float = 0.1,
) -> list[tuple[float, float]]:
    """(bucket centre, average simulated ms) series — a Figure 5/6 curve."""
    buckets: dict[int, list[float]] = {}
    for spec in workload:
        stats = table.execute(spec.query).stats
        buckets.setdefault(int(spec.selectivity / bucket_width), []).append(
            model.query_time_ms(stats)
        )
    return [
        ((index + 0.5) * bucket_width, sum(times) / len(times))
        for index, times in sorted(buckets.items())
    ]
