"""Workload-shift benchmark: the closed adaptation loop vs a frozen layout.

The scenario is the one the controller is built for.  A table holding
``GROUPS`` disjoint attribute groups (plus one attribute every entity
shares) is loaded under a deliberately *fine* layout (``B = FINE_B`` ->
dozens of partitions), which is the right layout for phase A: selective
per-group queries prune to a handful of partitions.  Then the workload
shifts — phase B scans the shared attribute, so every query touches
every partition and pays the fine layout's per-branch and per-page
overhead on all of them.

Three runs over identical traffic:

* **frozen** — no controller; the fine layout serves both phases.
* **adaptive** — an :class:`~repro.adapt.AdaptationController` is
  consulted once per round: it blesses phase A as the baseline, detects
  the phase-B shift, reorganizes to the advisor's coarser winner, and
  quiesces.
* **stationary control** — the adaptive setup, but traffic never
  shifts; the contract is *zero* actions.

Costs are accounted with the default :class:`~repro.cost.model.CostModel`
over each query's measured :class:`ExecutionStats` — deterministic I/O
accounting, not wall clock, so the comparison is machine-independent
(wall times are reported for context but never gated).  The headline is
the phase-B steady state (the last ``TAIL_ROUNDS`` rounds): the adapted
layout must beat the frozen one by at least ``MIN_STEADY_WIN`` with a
bounded number of reorganizations.

``python benchmarks/bench_adaptation.py --record`` rewrites the
committed baseline ``BENCH_adaptation.json`` at the repo root.  The
pytest gate re-runs the scenario and enforces: shift detected, 1..
``MAX_ACTIONS_ALLOWED`` reorganizations, steady-state win over frozen,
zero actions on the stationary control, and rows identical to the
frozen run throughout.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.adapt import AdaptationConfig, AdaptationController
from repro.core.config import CinderellaConfig
from repro.cost.model import CostModel
from repro.query.query import AttributeQuery
from repro.table.partitioned import CinderellaTable

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptation.json"

GROUPS = 6
N_ENTITIES = 900
#: the deliberately fine initial layout (B as entity count)
FINE_B = 30.0
FINE_W = 0.3
#: rounds per phase; one controller consult per round
ROUNDS_A = 4
ROUNDS_B = 8
#: the steady state is the mean of the last rounds of phase B
TAIL_ROUNDS = 3
#: controller tuning for the scenario's scale
MIN_OBSERVATIONS = 32
HORIZON_QUERIES = 500.0

#: gates
MIN_STEADY_WIN = 0.3
MAX_ACTIONS_ALLOWED = 2

#: deterministic accounting model (identical for every run)
ACCOUNTING = CostModel()


def build_table() -> CinderellaTable:
    table = CinderellaTable(CinderellaConfig(
        max_partition_size=FINE_B, weight=FINE_W, use_synopsis_index=True
    ))
    for i in range(N_ENTITIES):
        group = i % GROUPS
        attributes = {"common": i}
        for suffix in ("a", "b", "c"):
            attributes[f"g{group}_{suffix}"] = i
        table.insert(attributes, entity_id=i)
    return table


def selective_round() -> list[AttributeQuery]:
    return [
        AttributeQuery((f"g{group}_{suffix}",), "any")
        for group in range(GROUPS) for suffix in ("a", "b", "c")
    ]


def broad_round() -> list[AttributeQuery]:
    return [AttributeQuery(("common",), "any")] * (3 * GROUPS)


def make_controller() -> AdaptationController:
    return AdaptationController(config=AdaptationConfig(
        min_observations=MIN_OBSERVATIONS,
        cooldown_s=0.0,  # rounds gate the consults; the bench is seconds
        horizon_queries=HORIZON_QUERIES,
    ))


def run_scenario(adaptive: bool, shift: bool = True) -> dict:
    """One traffic replay; returns per-round accounting and decisions."""
    table = build_table()
    controller = None
    if adaptive:
        controller = make_controller()
        controller.bind_table(table)
    phases = [("A", selective_round(), ROUNDS_A)]
    phases.append(
        ("B", broad_round() if shift else selective_round(), ROUNDS_B)
    )
    rounds = []
    decisions = []
    row_digests = []
    for phase, queries, count in phases:
        for _ in range(count):
            cost_ms = 0.0
            rows = 0
            started = time.perf_counter()
            for query in queries:
                result = table.execute(query)
                cost_ms += ACCOUNTING.query_time_ms(result.stats)
                rows += len(result.rows)
            wall_s = time.perf_counter() - started
            decision = None
            if controller is not None:
                decision = controller.maybe_adapt(table)
                decisions.append(decision.as_dict())
            rounds.append({
                "phase": phase,
                "partitions": table.partition_count(),
                "cost_per_query_ms": round(cost_ms / len(queries), 4),
                "wall_ms": round(wall_s * 1e3, 2),
                "action": None if decision is None or not decision.acted
                else decision.action,
            })
            row_digests.append(rows)
    assert table.check_consistency() == []
    tail = [r["cost_per_query_ms"] for r in rounds[-TAIL_ROUNDS:]]
    return {
        "adaptive": adaptive,
        "shifted": shift,
        "initial_partitions": rounds[0]["partitions"],
        "final_partitions": rounds[-1]["partitions"],
        "actions": (0 if controller is None else controller.actions_taken),
        "steady_state_cost_ms": round(sum(tail) / len(tail), 4),
        "rounds": rounds,
        "decisions": decisions,
        "row_digests": row_digests,
    }


def run_benchmark() -> dict:
    frozen = run_scenario(adaptive=False)
    adapted = run_scenario(adaptive=True)
    stationary = run_scenario(adaptive=True, shift=False)
    win = 1.0 - (
        adapted["steady_state_cost_ms"] / frozen["steady_state_cost_ms"]
    )
    acted = [d for d in adapted["decisions"] if d["acted"]]
    return {
        "benchmark": "adaptation_shift",
        "protocol": {
            "groups": GROUPS,
            "entities": N_ENTITIES,
            "fine_b": FINE_B,
            "fine_w": FINE_W,
            "rounds_a": ROUNDS_A,
            "rounds_b": ROUNDS_B,
            "tail_rounds": TAIL_ROUNDS,
            "min_observations": MIN_OBSERVATIONS,
            "horizon_queries": HORIZON_QUERIES,
            "accounting": "default CostModel over measured ExecutionStats",
        },
        "headline": {
            "steady_state_win": round(win, 4),
            "frozen_steady_ms": frozen["steady_state_cost_ms"],
            "adapted_steady_ms": adapted["steady_state_cost_ms"],
            "reorganizations": adapted["actions"],
            "partitions": (
                f"{adapted['initial_partitions']} -> "
                f"{adapted['final_partitions']}"
            ),
            "detected_shift": acted[0]["shift"] if acted else None,
            "stationary_actions": stationary["actions"],
        },
        "frozen": frozen,
        "adapted": adapted,
        "stationary_control": stationary,
    }


def test_adaptation_gate():
    """CI gate: the closed loop must win the shift and sit still otherwise.

    * the adaptive run detects the phase-B shift and answers with a
      bounded number of reorganizations (1..MAX_ACTIONS_ALLOWED);
    * its phase-B steady state beats the frozen layout by at least
      MIN_STEADY_WIN on deterministic cost-model accounting;
    * both runs return identical row counts round for round (adaptation
      must never change answers);
    * the stationary control takes zero actions.
    """
    frozen = run_scenario(adaptive=False)
    adapted = run_scenario(adaptive=True)
    assert 1 <= adapted["actions"] <= MAX_ACTIONS_ALLOWED, (
        f"expected 1..{MAX_ACTIONS_ALLOWED} reorganizations, "
        f"got {adapted['actions']}"
    )
    acted = [d for d in adapted["decisions"] if d["acted"]]
    assert acted[0]["shift"] >= AdaptationConfig().shift_threshold, (
        "the action was not justified by a detected workload shift"
    )
    assert adapted["row_digests"] == frozen["row_digests"], (
        "adaptation changed query answers"
    )
    win = 1.0 - (
        adapted["steady_state_cost_ms"] / frozen["steady_state_cost_ms"]
    )
    assert win >= MIN_STEADY_WIN, (
        f"adapted steady state ({adapted['steady_state_cost_ms']} ms/query) "
        f"beats frozen ({frozen['steady_state_cost_ms']} ms/query) by only "
        f"{win:.1%}; gate: {MIN_STEADY_WIN:.0%}"
    )
    # after the action the controller must quiesce: no churn in the tail
    tail_actions = [
        r["action"] for r in adapted["rounds"][-TAIL_ROUNDS:]
        if r["action"] is not None
    ]
    assert tail_actions == [], f"controller kept churning: {tail_actions}"

    stationary = run_scenario(adaptive=True, shift=False)
    assert stationary["actions"] == 0, (
        f"{stationary['actions']} reorganizations on a stationary workload"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
