"""Figure 4 — attribute distribution in the DBpedia data set.

Regenerates both panels: (a) the attribute-frequency distribution and
(b) the attributes-per-entity distribution, and checks the anchors the
paper states in Section V-B:

* two attributes appear on almost every entity;
* eleven attributes are fairly common (> 30 %);
* 85 % of attributes appear on fewer than 10 % of entities;
* most entities have 2-15 attributes, a few up to 27;
* overall sparseness ≈ 0.94.
"""

from repro.metrics.histogram import LogHistogram, render_histogram
from repro.reporting.tables import format_kv_block, format_table
from repro.workloads.dbpedia import generate_dbpedia_persons

from conftest import DATASET_SEED, N_ENTITIES


def test_fig4_attribute_distribution(benchmark, dbpedia):
    dataset = dbpedia
    benchmark.pedantic(
        generate_dbpedia_persons,
        kwargs={"n_entities": min(N_ENTITIES, 5000), "seed": DATASET_SEED},
        rounds=1,
        iterations=1,
    )

    frequencies = sorted(dataset.attribute_frequencies().values(), reverse=True)
    per_entity = dataset.attributes_per_entity()

    # Figure 4(a): attribute frequency by rank
    rank_rows = [
        [f"rank {rank + 1}", frequencies[rank]]
        for rank in (0, 1, 2, 7, 12, 14, 19, 49, 99)
        if rank < len(frequencies)
    ]
    print()
    print(format_table(["attribute rank", "frequency"], rank_rows,
                       title="Figure 4(a): attribute frequency distribution"))

    # Figure 4(b): attributes per entity
    histogram = LogHistogram(low=1, high=100, buckets_per_decade=4)
    histogram.add_all(per_entity)
    print()
    print("Figure 4(b): attributes per entity")
    print(render_histogram(histogram.buckets()))

    print()
    print(format_kv_block(
        "Paper anchors (Section V-B)",
        [
            ("near-universal attributes (>= 0.85)",
             sum(1 for f in frequencies if f >= 0.85)),
            ("fairly common attributes (> 0.30)",
             sum(1 for f in frequencies if f > 0.30)),
            ("share of attributes below 0.10",
             sum(1 for f in frequencies if f < 0.10) / len(frequencies)),
            ("median attributes per entity", sorted(per_entity)[len(per_entity) // 2]),
            ("max attributes per entity", max(per_entity)),
            ("universal-table sparseness", dataset.sparseness()),
        ],
    ))

    # the paper's stated properties
    assert sum(1 for f in frequencies if f >= 0.85) == 2
    assert 10 <= sum(1 for f in frequencies if f > 0.30) <= 16
    assert sum(1 for f in frequencies if f < 0.10) >= 0.78 * len(frequencies)
    assert 2 <= sorted(per_entity)[len(per_entity) // 2] <= 15
    assert max(per_entity) <= 35
    assert 0.85 <= dataset.sparseness() <= 0.97
