"""Observability overhead benchmark and CI gate.

Runs one mixed workload — a DBpedia-style load with splits, repeated
cached queries, and a merge pass, i.e. every hot path the
:mod:`repro.obs` layer instruments — with observability *disabled* and
*enabled* (tracing + metrics + events) and compares CPU times.

Measuring a single-digit-percent effect on a shared machine needs a
deliberate protocol; three layers of noise control are stacked (the
machinery lives in ``benchmarks/conftest.py`` and is shared with the
server load generator):

* ``time.process_time`` + a ``gc.collect()`` before each run — CPU
  time ignores scheduler preemption, which alone exceeds the effect
  being measured in wall-clock time;
* **quiet-floor estimation**: machine interference (cache and
  bandwidth contention from co-tenants) only ever *adds* CPU time, so
  the quietest runs approach each mode's interference-free floor.  The
  floor is the mean of the ``FLOOR_K`` smallest of ``REPEATS`` runs —
  a raw minimum is an extreme order statistic and one lucky run swings
  it by several points — and the overhead is the ratio of the floors;
* **interleaving**: the modes alternate run by run, in alternating
  order within each pair, so a long quiet window is sampled by both
  modes and a burst cannot systematically land on one of them.

The claim under test is the layer's core contract:

* **enabled** tracing and metrics may slow the workload by at most
  ``MAX_ENABLED_OVERHEAD`` (the CI gate fails above 10 %; the committed
  baseline records well under 5 %);
* **disabled** instrumentation is noise: every call site is one global
  read plus an early return, micro-measured here in nanoseconds per
  call and bounded by ``MAX_DISABLED_NS_PER_CALL``.

``python benchmarks/bench_observability.py --record`` rewrites the
committed baseline ``BENCH_observability.json`` at the repo root.  The
pytest gate (``PYTHONPATH=src python -m pytest
benchmarks/bench_observability.py``) re-measures and fails when the
enabled overhead exceeds the gate.  The workload is fully seeded.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import interleaved_cpu_runs, quiet_floor

from repro import obs
from repro.core.config import CinderellaConfig
from repro.maintenance.merger import merge_small_partitions
from repro.query.cache import QueryResultCache
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.querygen import (
    build_query_workload,
    representative_queries,
)

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

#: workload shape — identical for recording and gating
N_ENTITIES = 2_000
MAX_PARTITION_SIZE = 200.0
WEIGHT = 0.3
QUERY_ROUNDS = 3
N_QUERIES = 15
SEED = 42
#: interleaved run pairs per mode
REPEATS = 25
#: the quiet floor is the mean of this many smallest runs
FLOOR_K = 5

#: the CI gate: enabled observability may cost at most this fraction
MAX_ENABLED_OVERHEAD = 0.10
#: a disabled call site must stay in no-op territory
MAX_DISABLED_NS_PER_CALL = 2_000.0


def _run_workload(dataset) -> None:
    """Inserts (with splits), repeated cached queries, one merge pass."""
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=MAX_PARTITION_SIZE,
            weight=WEIGHT,
            use_synopsis_index=True,
        ),
        result_cache=QueryResultCache(),
    )
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    masks = [
        entity.synopsis_mask(table.dictionary) for entity in dataset.entities
    ]
    specs = build_query_workload(masks, table.dictionary, max_triples=30)
    queries = [
        spec.query for spec in representative_queries(specs, per_bucket=2)
    ][:N_QUERIES]
    for _round in range(QUERY_ROUNDS):
        for query in queries:
            table.execute(query)
    merge_small_partitions(table.partitioner, min_fill=0.5)


def _measure_disabled_call_ns() -> float:
    """Nanoseconds per disabled ``obs.span()`` + ``obs.inc()`` pair."""
    assert not obs.is_enabled()
    iterations = 200_000
    span = obs.span
    inc = obs.inc
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop"):
            pass
        inc("bench_noop_total")
    elapsed = time.perf_counter() - started
    return elapsed / iterations * 1e9


def _run_disabled(dataset) -> None:
    obs.disable()
    _run_workload(dataset)


def _run_enabled(dataset) -> None:
    obs.enable(slow_op_threshold_s=0.05)
    try:
        _run_workload(dataset)
    finally:
        obs.disable()


def run_benchmark() -> dict:
    """Measure disabled vs. enabled; returns the JSON-ready report."""
    dataset = generate_dbpedia_persons(n_entities=N_ENTITIES, seed=SEED)
    obs.disable()
    _run_workload(dataset)  # warm-up: imports, allocator, caches

    disabled_runs, enabled_runs = interleaved_cpu_runs(
        lambda: _run_disabled(dataset),
        lambda: _run_enabled(dataset),
        REPEATS,
    )
    disabled_s = quiet_floor(disabled_runs, FLOOR_K)
    enabled_s = quiet_floor(enabled_runs, FLOOR_K)
    overhead = enabled_s / disabled_s - 1.0
    disabled_ns = _measure_disabled_call_ns()
    return {
        "benchmark": "observability_overhead",
        "workload": {
            "entities": N_ENTITIES,
            "max_partition_size": MAX_PARTITION_SIZE,
            "weight": WEIGHT,
            "query_rounds": QUERY_ROUNDS,
            "queries": N_QUERIES,
            "seed": SEED,
            "repeats": REPEATS,
            "floor_k": FLOOR_K,
        },
        "cpu_seconds": {
            "disabled_floor": round(disabled_s, 4),
            "enabled_floor": round(enabled_s, 4),
            "disabled_runs": [round(s, 4) for s in disabled_runs],
            "enabled_runs": [round(s, 4) for s in enabled_runs],
        },
        "overhead": {
            "enabled_pct": round(overhead * 100, 2),
            "disabled_ns_per_callsite": round(disabled_ns, 1),
        },
    }


def test_observability_overhead_gate():
    """CI gate: enabled ≤10 % slower; disabled call sites are no-ops."""
    report = run_benchmark()
    overhead_pct = report["overhead"]["enabled_pct"]
    assert overhead_pct <= MAX_ENABLED_OVERHEAD * 100, (
        f"enabled observability costs {overhead_pct:.1f}% on the mixed "
        f"workload (gate: {MAX_ENABLED_OVERHEAD:.0%}). Reduce span "
        f"granularity on the hot paths before shipping."
    )
    disabled_ns = report["overhead"]["disabled_ns_per_callsite"]
    assert disabled_ns <= MAX_DISABLED_NS_PER_CALL, (
        f"a disabled instrumentation site costs {disabled_ns:.0f} ns "
        f"(bound: {MAX_DISABLED_NS_PER_CALL:.0f} ns) — the "
        f"zero-cost-when-disabled contract is broken"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
