"""Observability overhead benchmark and CI gate.

Three measurements, one committed baseline:

* the original **mixed table workload** — a DBpedia-style load with
  splits, repeated cached queries, and a merge pass, i.e. every
  in-process hot path the :mod:`repro.obs` layer instruments — with
  observability *disabled* and *enabled* (tracing + metrics + events),
  comparing CPU times;
* the **server path** — a live :class:`CinderellaServer` over a real
  socket, driven through :class:`ServerClient` with a seeded read-mostly
  mix, comparing disabled against the *full* enabled configuration
  (tracing + metrics + **wire trace propagation**).  This is the path
  the cluster-observability work instruments most heavily: per-request
  spans, the op-labeled latency histogram, and context adoption all sit
  on it, and the same 10 % gate applies;
* **federation scrape latency** — wall-clock p50/p99 of one
  ``obs`` scatter-gather through the router of a live three-node
  cluster, i.e. what a fleet Prometheus endpoint pays per scrape.

Measuring a single-digit-percent effect on a shared machine needs a
deliberate protocol; three layers of noise control are stacked (the
machinery lives in ``benchmarks/conftest.py`` and is shared with the
server load generator):

* ``time.process_time`` + a ``gc.collect()`` before each run — CPU
  time ignores scheduler preemption, which alone exceeds the effect
  being measured in wall-clock time;
* **quiet-floor estimation**: machine interference (cache and
  bandwidth contention from co-tenants) only ever *adds* CPU time, so
  the quietest runs approach each mode's interference-free floor.  The
  floor is the mean of the ``FLOOR_K`` smallest of ``REPEATS`` runs —
  a raw minimum is an extreme order statistic and one lucky run swings
  it by several points — and the overhead is the ratio of the floors;
* **interleaving**: the modes alternate run by run, in alternating
  order within each pair, so a long quiet window is sampled by both
  modes and a burst cannot systematically land on one of them.

The claim under test is the layer's core contract:

* **enabled** tracing and metrics may slow the workload by at most
  ``MAX_ENABLED_OVERHEAD`` (the CI gate fails above 10 %; the committed
  baseline records well under 5 %);
* **disabled** instrumentation is noise: every call site is one global
  read plus an early return, micro-measured here in nanoseconds per
  call and bounded by ``MAX_DISABLED_NS_PER_CALL``.

``python benchmarks/bench_observability.py --record`` rewrites the
committed baseline ``BENCH_observability.json`` at the repo root.  The
pytest gate (``PYTHONPATH=src python -m pytest
benchmarks/bench_observability.py``) re-measures and fails when the
enabled overhead exceeds the gate.  The workload is fully seeded.
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from pathlib import Path

from conftest import interleaved_cpu_runs, percentile, quiet_floor

from repro import obs
from repro.core.config import CinderellaConfig
from repro.maintenance.merger import merge_small_partitions
from repro.query.cache import QueryResultCache
from repro.router.testing import ClusterHarness
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.client import ServerClient
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.querygen import (
    build_query_workload,
    representative_queries,
)

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

#: workload shape — identical for recording and gating
N_ENTITIES = 2_000
MAX_PARTITION_SIZE = 200.0
WEIGHT = 0.3
QUERY_ROUNDS = 3
N_QUERIES = 15
SEED = 42
#: interleaved run pairs per mode
REPEATS = 25
#: the quiet floor is the mean of this many smallest runs
FLOOR_K = 5

#: the CI gate: enabled observability may cost at most this fraction
#: (applies to the mixed table workload AND the server path alike)
MAX_ENABLED_OVERHEAD = 0.10
#: a disabled call site must stay in no-op territory
MAX_DISABLED_NS_PER_CALL = 2_000.0

#: server-path workload shape.  The mix must be *steady-state
#: representative*: a read-only plan degenerates to response-cache hits
#: after one run (the serving tier memoizes repeated shapes by design)
#: and would measure the instrumentation against the cheapest request
#: the server can answer.  Instead every eighth request is an **update
#: to an existing entity** — table size stays constant run to run, but
#: each write batch invalidates the snapshot caches, so the queries in
#: between keep planning, pruning, and scanning, i.e. keep exercising
#: the spans on the query path.
#:
#: The table size matters for the same reason the mix does: the
#: instrumentation cost per request is a constant (recorded as
#: ``enabled_us_per_request``), so against a near-empty table the ratio
#: gate degenerates into measuring that constant against requests that
#: plan, scan, and serialize almost nothing.  1 200 entities is the
#: small end of the paper's workloads (queries return ~100 rows and
#: touch several partitions); the absolute per-request figure is
#: committed alongside the ratio so a workload change cannot silently
#: move the goalposts
SERVER_PRELOAD = 1_200
SERVER_OPS = 400
SERVER_WRITE_EVERY = 8
SERVER_ATTRIBUTE_SPACE = 12
SERVER_REPEATS = 15
SERVER_FLOOR_K = 4

#: federation scrape-latency sample count (three-node cluster)
FEDERATION_NODES = 3
FEDERATION_SCRAPES = 40


def _run_workload(dataset) -> None:
    """Inserts (with splits), repeated cached queries, one merge pass."""
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=MAX_PARTITION_SIZE,
            weight=WEIGHT,
            use_synopsis_index=True,
        ),
        result_cache=QueryResultCache(),
    )
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    masks = [
        entity.synopsis_mask(table.dictionary) for entity in dataset.entities
    ]
    specs = build_query_workload(masks, table.dictionary, max_triples=30)
    queries = [
        spec.query for spec in representative_queries(specs, per_bucket=2)
    ][:N_QUERIES]
    for _round in range(QUERY_ROUNDS):
        for query in queries:
            table.execute(query)
    merge_small_partitions(table.partitioner, min_fill=0.5)


def _measure_disabled_call_ns() -> float:
    """Nanoseconds per disabled ``obs.span()`` + ``obs.inc()`` pair."""
    assert not obs.is_enabled()
    iterations = 200_000
    span = obs.span
    inc = obs.inc
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop"):
            pass
        inc("bench_noop_total")
    elapsed = time.perf_counter() - started
    return elapsed / iterations * 1e9


def _run_disabled(dataset) -> None:
    obs.disable()
    _run_workload(dataset)


def _run_enabled(dataset) -> None:
    obs.enable(slow_op_threshold_s=0.05)
    try:
        _run_workload(dataset)
    finally:
        obs.disable()


def _make_bench_server() -> CinderellaServer:
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=256.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(thread_safe=True),
    )
    return CinderellaServer(table=table, config=ServerConfig())


def _server_plan() -> list[tuple]:
    """The seeded request plan, identical for both modes and all runs."""
    rng = random.Random(SEED)
    plan: list[tuple] = []
    for step in range(SERVER_OPS):
        if step % SERVER_WRITE_EVERY == 0:
            # rewrite an existing entity's payload attribute: the table
            # neither grows nor re-partitions, but the write batch
            # invalidates the query caches
            plan.append(("update", rng.randrange(SERVER_PRELOAD)))
        elif rng.random() < 0.5:
            plan.append(
                ("query", f"attr{rng.randrange(SERVER_ATTRIBUTE_SPACE)}")
            )
        else:
            first = rng.randrange(SERVER_ATTRIBUTE_SPACE)
            second = (
                first + 1 + rng.randrange(SERVER_ATTRIBUTE_SPACE - 1)
            ) % SERVER_ATTRIBUTE_SPACE
            plan.append(("query", f"attr{first}", f"attr{second}"))
    return plan


def _drive_server(client: ServerClient, plan: list[tuple]) -> None:
    for step in plan:
        if step[0] == "update":
            eid = step[1]
            client.update(eid, {f"attr{eid % SERVER_ATTRIBUTE_SPACE}": eid})
        else:
            client.request("query", attributes=list(step[1:]))


def run_server_benchmark() -> dict:
    """Disabled vs. fully-enabled (propagation on) over a live socket.

    The server runs in-process threads, so ``time.process_time`` charges
    both sides of the wire — client encode + trace stamping, server
    decode + span recording + histogram observes — while ignoring the
    socket waits a strict request/response client spends most of its
    wall-clock time on.
    """
    obs.disable()
    server = _make_bench_server()
    plan = _server_plan()
    with ServerThread(server=server) as harness:
        with ServerClient(*harness.address) as client:
            rng = random.Random(SEED)
            for eid in range(SERVER_PRELOAD):
                client.insert(
                    {f"attr{rng.randrange(SERVER_ATTRIBUTE_SPACE)}": eid},
                    eid=eid,
                )
            _drive_server(client, plan)  # warm-up: caches, both codecs

            def disabled_run() -> None:
                obs.disable()
                _drive_server(client, plan)

            def enabled_run() -> None:
                obs.enable(propagate=True, slow_op_threshold_s=0.05)
                try:
                    _drive_server(client, plan)
                finally:
                    obs.disable()

            disabled_runs, enabled_runs = interleaved_cpu_runs(
                disabled_run, enabled_run, SERVER_REPEATS
            )
    disabled_s = quiet_floor(disabled_runs, SERVER_FLOOR_K)
    enabled_s = quiet_floor(enabled_runs, SERVER_FLOOR_K)
    overhead = enabled_s / disabled_s - 1.0
    return {
        "preload": SERVER_PRELOAD,
        "ops": SERVER_OPS,
        "repeats": SERVER_REPEATS,
        "floor_k": SERVER_FLOOR_K,
        "cpu_seconds": {
            "disabled_floor": round(disabled_s, 4),
            "enabled_floor": round(enabled_s, 4),
            "disabled_runs": [round(s, 4) for s in disabled_runs],
            "enabled_runs": [round(s, 4) for s in enabled_runs],
        },
        "enabled_pct": round(overhead * 100, 2),
        # the workload-independent figure: what one traced request costs
        # in absolute terms (client stamp + encode, adopt, spans,
        # histogram, counter, remote-span record, both codec deltas)
        "enabled_us_per_request": round(
            (enabled_s - disabled_s) / SERVER_OPS * 1e6, 1
        ),
    }


def run_federation_benchmark() -> dict:
    """Wall-clock latency of one ``obs`` scatter-gather via the router."""
    with tempfile.TemporaryDirectory() as tmp:
        obs.enable(propagate=True)
        try:
            with ClusterHarness(
                Path(tmp), n_nodes=FEDERATION_NODES
            ) as harness:
                with harness.client() as client:
                    rng = random.Random(SEED)
                    for eid in range(60):
                        client.insert(
                            {f"attr{rng.randrange(4)}": eid}, eid=eid
                        )
                    client.request("obs")  # warm-up
                    latencies_ms: list[float] = []
                    for _ in range(FEDERATION_SCRAPES):
                        started = time.perf_counter()
                        response = client.request("obs")
                        latencies_ms.append(
                            (time.perf_counter() - started) * 1000
                        )
                        assert response.ok
                        assert "cluster" in response.fields
        finally:
            obs.disable()
    return {
        "nodes": FEDERATION_NODES,
        "scrapes": FEDERATION_SCRAPES,
        "scrape_p50_ms": round(percentile(latencies_ms, 50), 2),
        "scrape_p99_ms": round(percentile(latencies_ms, 99), 2),
    }


def run_benchmark() -> dict:
    """Measure disabled vs. enabled; returns the JSON-ready report."""
    dataset = generate_dbpedia_persons(n_entities=N_ENTITIES, seed=SEED)
    obs.disable()
    _run_workload(dataset)  # warm-up: imports, allocator, caches

    disabled_runs, enabled_runs = interleaved_cpu_runs(
        lambda: _run_disabled(dataset),
        lambda: _run_enabled(dataset),
        REPEATS,
    )
    disabled_s = quiet_floor(disabled_runs, FLOOR_K)
    enabled_s = quiet_floor(enabled_runs, FLOOR_K)
    overhead = enabled_s / disabled_s - 1.0
    disabled_ns = _measure_disabled_call_ns()
    return {
        "benchmark": "observability_overhead",
        "workload": {
            "entities": N_ENTITIES,
            "max_partition_size": MAX_PARTITION_SIZE,
            "weight": WEIGHT,
            "query_rounds": QUERY_ROUNDS,
            "queries": N_QUERIES,
            "seed": SEED,
            "repeats": REPEATS,
            "floor_k": FLOOR_K,
        },
        "cpu_seconds": {
            "disabled_floor": round(disabled_s, 4),
            "enabled_floor": round(enabled_s, 4),
            "disabled_runs": [round(s, 4) for s in disabled_runs],
            "enabled_runs": [round(s, 4) for s in enabled_runs],
        },
        "overhead": {
            "enabled_pct": round(overhead * 100, 2),
            "disabled_ns_per_callsite": round(disabled_ns, 1),
        },
        "server_path": run_server_benchmark(),
        "federation": run_federation_benchmark(),
    }


# the gate tests share one measurement — CI collects all of them in a
# single pytest invocation and must not pay for the workloads twice
_REPORT_CACHE: dict = {}


def _cached_report() -> dict:
    if "report" not in _REPORT_CACHE:
        _REPORT_CACHE["report"] = run_benchmark()
    return _REPORT_CACHE["report"]


def test_observability_overhead_gate():
    """CI gate: enabled ≤10 % slower; disabled call sites are no-ops."""
    report = _cached_report()
    overhead_pct = report["overhead"]["enabled_pct"]
    assert overhead_pct <= MAX_ENABLED_OVERHEAD * 100, (
        f"enabled observability costs {overhead_pct:.1f}% on the mixed "
        f"workload (gate: {MAX_ENABLED_OVERHEAD:.0%}). Reduce span "
        f"granularity on the hot paths before shipping."
    )
    disabled_ns = report["overhead"]["disabled_ns_per_callsite"]
    assert disabled_ns <= MAX_DISABLED_NS_PER_CALL, (
        f"a disabled instrumentation site costs {disabled_ns:.0f} ns "
        f"(bound: {MAX_DISABLED_NS_PER_CALL:.0f} ns) — the "
        f"zero-cost-when-disabled contract is broken"
    )


def test_server_path_overhead_gate():
    """CI gate: full instrumentation (tracing + metrics + propagation)
    may slow the live server path by at most the same 10 %."""
    report = _cached_report()
    overhead_pct = report["server_path"]["enabled_pct"]
    assert overhead_pct <= MAX_ENABLED_OVERHEAD * 100, (
        f"enabled observability (with wire propagation) costs "
        f"{overhead_pct:.1f}% on the server path (gate: "
        f"{MAX_ENABLED_OVERHEAD:.0%}). The per-request span, histogram "
        f"observe, and context adoption are the suspects."
    )


def test_federation_scrape_is_interactive():
    """A fleet scrape must answer fast enough for a live dashboard."""
    report = _cached_report()
    assert report["federation"]["scrape_p99_ms"] < 1000.0, (
        "one obs scatter-gather took over a second on a three-node "
        "in-process cluster — the fleet endpoint would starve Prometheus"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
