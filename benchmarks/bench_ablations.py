"""Ablations of Cinderella's design choices (DESIGN.md §6).

Three ablations, each isolating one mechanism of the algorithm:

1. **Synopsis index** (Section VII future work): restricting the rating
   scan to overlapping partitions must produce the *identical*
   partitioning while computing strictly fewer ratings.
2. **Split starters**: the incremental heuristic vs. the exhaustive
   most-differential pair.  The heuristic must stay within a modest
   quality margin (efficiency of the result) at a fraction of the cost.
3. **Best-fit vs. first-fit selection**: Algorithm 1 scans the whole
   catalog for the best rating; first-fit settles for the first
   non-negative one.  Best-fit must not lose to first-fit on efficiency.
4. **Rating normalisation** (Section IV): comparing partitions by the raw
   local rating r' instead of the global rating r breaks the cross-
   partition comparison the paper warns about — the catalog degenerates
   into thousands of fragments (w→0-style explosion) with two orders of
   magnitude more rating work, even though the tiny fragments themselves
   prune fine.
"""

import time

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency
from repro.core.partitioner import CinderellaPartitioner
from repro.reporting.tables import format_table

from conftest import N_ENTITIES


def load(entities, **config_kwargs):
    partitioner = CinderellaPartitioner(CinderellaConfig(**config_kwargs))
    started = time.perf_counter()
    for eid, mask in entities:
        partitioner.insert(eid, mask)
    elapsed = time.perf_counter() - started
    return partitioner, elapsed


def test_ablations(benchmark, dbpedia, query_workload):
    dictionary = dbpedia.dictionary()
    # the exact-starter variant is quadratic per insert; cap the sample
    sample = dbpedia.entities[: min(N_ENTITIES, 4000)]
    entities = [(e.entity_id, e.synopsis_mask(dictionary)) for e in sample]
    queries = [spec.query.synopsis_mask(dictionary) for spec in query_workload]
    base = dict(max_partition_size=500, weight=0.3)

    variants = {
        "reference (Algorithm 1)": dict(base),
        "synopsis index": dict(base, use_synopsis_index=True),
        "exact split starters": dict(base, exact_starters=True),
        "first-fit selection": dict(base, selection="first"),
        "unnormalised local rating": dict(base, normalize_rating=False),
    }
    loaded = {}
    for name, kwargs in variants.items():
        partitioner, elapsed = load(entities, **kwargs)
        assert partitioner.check_invariants() == [], name
        loaded[name] = (partitioner, elapsed)

    rows = []
    for name, (partitioner, elapsed) in loaded.items():
        rows.append(
            [
                name,
                len(partitioner.catalog),
                partitioner.split_count,
                partitioner.ratings_computed,
                catalog_efficiency(partitioner.catalog, queries),
                elapsed,
            ]
        )
    print()
    print(
        format_table(
            [
                "variant",
                "partitions",
                "splits",
                "ratings computed",
                "EFFICIENCY(P)",
                "load wall s",
            ],
            rows,
            title=f"Ablations (n = {len(entities)}, B = 500, w = 0.3)",
        )
    )

    reference, _ = loaded["reference (Algorithm 1)"]
    indexed, _ = loaded["synopsis index"]
    exact, _ = loaded["exact split starters"]
    first_fit, _ = loaded["first-fit selection"]

    def signature(p):
        return sorted(tuple(sorted(part.entity_ids())) for part in p.catalog)

    # 1. the index is an exact optimization
    assert signature(indexed) == signature(reference)
    assert indexed.ratings_computed < reference.ratings_computed

    def eff(p):
        return catalog_efficiency(p.catalog, queries)

    # 2. the incremental starter heuristic is close to the exact pair
    assert eff(reference) > 0.85 * eff(exact)
    # 3. best-fit never loses to first-fit
    assert eff(reference) >= eff(first_fit) - 1e-9
    assert first_fit.ratings_computed <= reference.ratings_computed
    # 4. dropping the normalisation explodes the catalog and the work
    unnormalised, _ = loaded["unnormalised local rating"]
    assert len(unnormalised.catalog) > 10 * len(reference.catalog)
    assert unnormalised.ratings_computed > 10 * reference.ratings_computed

    # benchmark kernel: a reference load over a smaller slice
    benchmark.pedantic(
        load,
        args=(entities[:1000],),
        kwargs=base,
        rounds=1,
        iterations=1,
    )
