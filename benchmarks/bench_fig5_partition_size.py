"""Figure 5 — average query execution time for different partition size
limits B (paper: 500 / 5 000 / 50 000 entities, weight 0.5), against the
unpartitioned universal table.

Paper findings this bench reproduces and asserts:

* query time grows with decreasing selectivity on Cinderella partitions,
  while the universal table is near-flat;
* Cinderella achieves a significant speedup for selective queries
  (selectivity < 0.2);
* queries of low selectivity (> 0.3) run *slower* through Cinderella than
  on the universal table (union/projection overhead);
* a smaller B gives lower times for selective queries but more overhead
  for unselective ones.
"""

from reporting_helpers import print_series_figure

from conftest import B_VALUES, average_query_times_by_selectivity


def test_fig5_query_time_vs_partition_size(
    benchmark, cinderella_loads, universal_table, query_workload, cost_model
):
    weight = 0.5
    loads = {b: cinderella_loads(b, weight) for b in B_VALUES}

    series = {
        f"B={b}": average_query_times_by_selectivity(
            loads[b].table, query_workload, cost_model
        )
        for b in B_VALUES
    }
    series["universal table"] = average_query_times_by_selectivity(
        universal_table, query_workload, cost_model
    )

    print_series_figure(
        "Figure 5: avg query execution time vs selectivity (w = 0.5)",
        series,
        x_label="selectivity",
        y_label="simulated ms",
    )

    # benchmark kernel: one selective query on the middle configuration
    selective = min(query_workload, key=lambda s: (s.selectivity, s.query.attributes))
    table = loads[B_VALUES[1]].table
    benchmark(lambda: table.execute(selective.query))

    universal = dict(series["universal table"])

    def at(name: str, x: float) -> float:
        return dict(series[name])[x]

    selective_x = min(universal)
    broad_x = max(universal)

    # universal table is near-flat; Cinderella's curve rises with selectivity
    flatness = max(universal.values()) / min(universal.values())
    smallest_b = f"B={B_VALUES[0]}"
    rise = at(smallest_b, broad_x) / at(smallest_b, selective_x)
    assert rise > flatness, "partitioned curve must rise faster than universal"

    for b in B_VALUES:
        # every B beats the universal table on the selective end...
        assert at(f"B={b}", selective_x) < universal[selective_x], f"B={b}"
        # ...and pays union overhead on the unselective end
        assert at(f"B={b}", broad_x) > universal[broad_x], f"B={b}"
    # the two smaller limits achieve the *significant* speedup the paper
    # reports for selectivity < 0.2 (the largest B benefits least)
    for b in B_VALUES[:2]:
        assert at(f"B={b}", selective_x) < 0.55 * universal[selective_x], f"B={b}"

    # smaller B wins on the selective side
    assert at(f"B={B_VALUES[0]}", selective_x) < at(f"B={B_VALUES[2]}", selective_x)
    # larger B has the smaller overhead on the unselective side
    assert at(f"B={B_VALUES[2]}", broad_x) < at(f"B={B_VALUES[0]}", broad_x)
