"""Figure 8 — insert execution time for different partition size limits B
(paper: weight 0.5; B = 500 / 5 000 / 50 000).

Prints the per-insert time histogram (simulated cost-model milliseconds,
log-scale buckets) per size limit, plus the split counts.

Paper findings this bench reproduces and asserts:

* the majority of inserts complete in a narrow low band; a small fraction
  (the splitting inserts) takes considerably longer;
* a lower partition size limit means slightly more expensive ordinary
  inserts (bigger partition catalog to scan);
* the number of splits *decreases* as B grows (paper: 448 / 100 / 0),
  while each split gets more expensive (more entities to move).
"""

from repro.metrics.histogram import LogHistogram, render_histogram
from repro.metrics.partition_stats import percentile
from repro.reporting.tables import format_table

from conftest import B_VALUES


def test_fig8_insert_time_distribution(benchmark, cinderella_loads, dbpedia):
    weight = 0.5
    loads = {b: cinderella_loads(b, weight) for b in B_VALUES}

    print()
    rows = []
    for b, loaded in loads.items():
        times = loaded.insert_sim_ms
        ordered = sorted(times)
        rows.append(
            [
                f"B={b}",
                len(loaded.table.catalog),
                loaded.table.partitioner.split_count,
                loaded.split_inserts,
                percentile(ordered, 50),
                percentile(ordered, 99),
                ordered[-1],
            ]
        )
    print(
        format_table(
            [
                "limit",
                "partitions",
                "splits",
                "inserts w/ split",
                "median ms",
                "p99 ms",
                "max ms",
            ],
            rows,
            title="Figure 8: insert execution time (w = 0.5, simulated ms)",
        )
    )
    for b, loaded in loads.items():
        histogram = LogHistogram(low=0.1, high=100_000.0, buckets_per_decade=2)
        histogram.add_all(loaded.insert_sim_ms)
        print()
        print(f"B={b}: per-insert time distribution")
        print(render_histogram(histogram.buckets()))

    # benchmark kernel: a single ordinary insert on the middle config
    table = loads[B_VALUES[1]].table
    probe = dict(dbpedia.entities[0].attributes)
    next_eid = [10_000_000]

    def one_insert():
        table.insert(probe, entity_id=next_eid[0])
        table.delete(next_eid[0])
        next_eid[0] += 1

    benchmark(one_insert)

    small, medium, large = (loads[b] for b in B_VALUES)
    # split counts decrease with growing B (paper: 448 / 100 / 0)
    splits = [loads[b].table.partitioner.split_count for b in B_VALUES]
    assert splits[0] > splits[1] >= splits[2]
    assert splits[0] >= 10 * max(1, splits[2])

    for b, loaded in loads.items():
        ordered = sorted(loaded.insert_sim_ms)
        median = percentile(ordered, 50)
        # the bulk of inserts sits in a narrow band: p90 within 4x median
        assert percentile(ordered, 90) < 4 * median, f"B={b}"
        if loaded.split_inserts:
            # splitting inserts are far above the median band
            assert ordered[-1] > 5 * median, f"B={b}"

    # ordinary inserts cost more under a smaller limit (larger catalog):
    assert percentile(sorted(small.insert_sim_ms), 50) >= percentile(
        sorted(large.insert_sim_ms), 50
    )

    # each split is more expensive under a larger limit (more entities
    # moved per split) — compare the priciest insert where both split
    if small.split_inserts and medium.split_inserts:
        assert max(medium.insert_sim_ms) > max(small.insert_sim_ms)
