"""Fault-tolerance bench: availability and latency vs replication factor.

The paper's cluster setting (Section II) assumed reliable nodes; this
bench quantifies what the fault-tolerance subsystem buys when they are
not.  A seeded failure schedule crashes and recovers nodes while a
DBpedia-derived workload streams in; the same schedule is replayed
against replication factors 1, 2, and 3 and against a schedule with no
failures at all.

Asserted behaviour:

* with no failures, availability is exactly 1.0 at every replication
  factor — replication costs capacity, never correctness;
* under failures, availability increases monotonically with the
  replication factor, and rf >= 2 keeps the overwhelming share of
  queries complete while rf = 1 visibly degrades;
* failover is not free: the mean query latency under failures exceeds
  the failure-free baseline (timeouts and retries are priced in);
* every run ends with a healthy replication report and a clean
  placement check after the final repair pass.
"""

import random

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.failures import FailureSchedule
from repro.distributed.replication import replication_report
from repro.distributed.store import DistributedUniversalStore
from repro.reporting.tables import format_table

from conftest import N_ENTITIES

NODES = 8
OPERATIONS = min(N_ENTITIES, 1_500)
SCHEDULE_SEED = 29
WORKLOAD_SEED = 4242
CRASH_RATE = 0.01


def run_chaos(dbpedia, dictionary, replication_factor, schedule):
    store = DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=100, weight=0.3)),
        replication_factor=replication_factor,
    )
    rng = random.Random(WORKLOAD_SEED)
    latencies = []
    for op_index in range(OPERATIONS):
        if schedule is not None:
            for event in schedule.events_at(op_index):
                store.apply_event(event)
        entity = dbpedia.entities[op_index]
        store.insert(entity.entity_id, entity.synopsis_mask(dictionary))
        if op_index % 5 == 1:
            latencies.append(store.route_query(rng.getrandbits(16) | 0b1).latency_ms)
        if op_index % 25 == 24:
            store.re_replicate()
    store.re_replicate()
    assert replication_report(store.cluster).healthy
    assert store.check_placement() == []
    counters = store.counters
    return {
        "rf": replication_factor,
        "availability": counters.availability(),
        "degraded": counters.queries_degraded,
        "retries": counters.retries,
        "mean_latency_ms": sum(latencies) / len(latencies),
        "replicas_created": counters.replicas_created,
    }


def test_availability_vs_replication_factor(benchmark, dbpedia):
    dictionary = dbpedia.dictionary()
    schedule = FailureSchedule.random(
        NODES, OPERATIONS, seed=SCHEDULE_SEED, crash_rate=CRASH_RATE,
        mean_downtime=60,
    )
    assert schedule.crash_count >= 5

    calm = {
        rf: run_chaos(dbpedia, dictionary, rf, schedule=None) for rf in (1, 2, 3)
    }
    chaos = {
        rf: run_chaos(dbpedia, dictionary, rf, schedule) for rf in (1, 2, 3)
    }

    print()
    print(format_table(
        ["schedule", "rf", "availability", "degraded queries", "retries",
         "mean latency ms", "replicas created"],
        [
            [label, row["rf"], row["availability"], row["degraded"],
             row["retries"], row["mean_latency_ms"], row["replicas_created"]]
            for label, results in (("calm", calm), ("chaos", chaos))
            for row in results.values()
        ],
        title=f"Availability under {schedule.crash_count} node crashes "
              f"({OPERATIONS} ops, {NODES} nodes, crash rate {CRASH_RATE})",
    ))

    # benchmark kernel: one repair pass over a freshly wounded cluster
    probe = DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=100, weight=0.3)),
        replication_factor=2,
    )
    for entity in dbpedia.entities[:OPERATIONS]:
        probe.insert(entity.entity_id, entity.synopsis_mask(dictionary))

    def repair_round():
        probe.crash_node(0)
        probe.re_replicate()
        probe.recover_node(0)
        probe.re_replicate()

    benchmark(repair_round)

    # no failures -> perfect availability at every replication factor
    for row in calm.values():
        assert row["availability"] == 1.0
        assert row["retries"] == 0
    # availability is monotone in the replication factor under failures
    assert (chaos[1]["availability"] <= chaos[2]["availability"]
            <= chaos[3]["availability"])
    # rf >= 2 keeps almost every query complete; rf = 1 visibly degrades
    assert chaos[2]["availability"] > 0.9
    assert chaos[1]["availability"] < chaos[2]["availability"]
    # failover is priced in: chaos runs pay timeout + backoff latency
    assert chaos[2]["mean_latency_ms"] > calm[2]["mean_latency_ms"]
    # repair actually did work under chaos
    assert chaos[2]["replicas_created"] > 0
