"""Figure 6 — average query execution time for different weights w
(paper: B = 5 000), against the unpartitioned universal table.

Paper findings this bench reproduces and asserts:

* for very selective queries, a lower weight is beneficial;
* queries of very low selectivity slightly profit from a higher weight;
* all weights beat the universal table on the selective end and pay
  overhead on the unselective end.
"""

from reporting_helpers import print_series_figure

from conftest import B_DEFAULT, W_VALUES, average_query_times_by_selectivity


def test_fig6_query_time_vs_weight(
    benchmark, cinderella_loads, universal_table, query_workload, cost_model
):
    loads = {w: cinderella_loads(B_DEFAULT, w) for w in W_VALUES}

    series = {
        f"w={w}": average_query_times_by_selectivity(
            loads[w].table, query_workload, cost_model
        )
        for w in W_VALUES
    }
    series["universal table"] = average_query_times_by_selectivity(
        universal_table, query_workload, cost_model
    )

    print_series_figure(
        f"Figure 6: avg query execution time vs selectivity (B = {B_DEFAULT})",
        series,
        x_label="selectivity",
        y_label="simulated ms",
    )

    # benchmark kernel: a selective query at the paper's preferred weight
    selective_spec = min(
        query_workload, key=lambda s: (s.selectivity, s.query.attributes)
    )
    table = loads[0.2].table
    benchmark(lambda: table.execute(selective_spec.query))

    universal = dict(series["universal table"])

    def at(w: float, x: float) -> float:
        return dict(series[f"w={w}"])[x]

    selective_x = min(universal)
    broad_x = max(universal)

    low, mid, high = W_VALUES
    # low weight is best for very selective queries
    assert at(low, selective_x) < at(high, selective_x)
    # high weight has the smaller overhead for very unselective queries
    assert at(high, broad_x) < at(low, broad_x)
    for w in W_VALUES:
        assert at(w, selective_x) < universal[selective_x], f"w={w}"
        assert at(w, broad_x) > universal[broad_x], f"w={w}"
