"""Partitioning efficiency (Definition 1) across partitioners.

Not a figure of the paper, but the paper's own objective function: the
Online Partitioning Problem asks to maximize EFFICIENCY(P).  This bench
scores Cinderella against the related-work baselines of Section VI on the
DBpedia data set and the representative query workload:

* unpartitioned universal table (the paper's experimental baseline),
* hash partitioning (web-scale default, refs [12]-[14]),
* round-robin size-bounded partitioning,
* offline Jaccard leader clustering (hidden-schema style, ref [18]),
* the exact-signature oracle (upper bound).

Asserted ordering: oracle ≥ Cinderella > hash ≈ universal, and Cinderella
within reach of the offline clustering despite being online.
"""

from repro.baselines.hash_partitioner import HashPartitioner
from repro.baselines.offline_clustering import OfflineClusteringPartitioner
from repro.baselines.oracle import OraclePartitioner
from repro.baselines.round_robin import RoundRobinPartitioner
from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency, universal_table_efficiency
from repro.core.partitioner import CinderellaPartitioner
from repro.reporting.tables import format_table

from conftest import B_DEFAULT


def test_efficiency_across_partitioners(benchmark, dbpedia, query_workload):
    dictionary = dbpedia.dictionary()
    entities = [
        (entity.entity_id, entity.synopsis_mask(dictionary))
        for entity in dbpedia.entities
    ]
    queries = [
        spec.query.synopsis_mask(dictionary) for spec in query_workload
    ]

    cinderella = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=B_DEFAULT, weight=0.2)
    )
    for eid, mask in entities:
        cinderella.insert(eid, mask)

    hash_partitioner = HashPartitioner(num_partitions=len(cinderella.catalog))
    round_robin = RoundRobinPartitioner(max_partition_size=B_DEFAULT)
    for eid, mask in entities:
        hash_partitioner.insert(eid, mask)
        round_robin.insert(eid, mask)

    clustering = OfflineClusteringPartitioner(
        max_partition_size=B_DEFAULT, threshold=0.4
    )
    clustering.fit(entities)
    oracle = OraclePartitioner(max_partition_size=B_DEFAULT)
    oracle.fit(entities)

    sized = [(mask, 1.0) for _eid, mask in entities]
    scores = {
        "universal table": universal_table_efficiency(sized, queries),
        "hash": catalog_efficiency(hash_partitioner.catalog, queries),
        "round robin": catalog_efficiency(round_robin.catalog, queries),
        "offline clustering": catalog_efficiency(clustering.catalog, queries),
        "cinderella (online)": catalog_efficiency(cinderella.catalog, queries),
        "oracle (upper bound)": catalog_efficiency(oracle.catalog, queries),
    }
    partition_counts = {
        "universal table": 1,
        "hash": len(hash_partitioner.catalog),
        "round robin": len(round_robin.catalog),
        "offline clustering": len(clustering.catalog),
        "cinderella (online)": len(cinderella.catalog),
        "oracle (upper bound)": len(oracle.catalog),
    }
    print()
    print(
        format_table(
            ["partitioner", "partitions", "EFFICIENCY(P)"],
            [
                [name, partition_counts[name], score]
                for name, score in scores.items()
            ],
            title=f"Definition 1 efficiency (B = {B_DEFAULT}, w = 0.2)",
        )
    )

    # benchmark kernel: the efficiency computation itself
    benchmark(lambda: catalog_efficiency(cinderella.catalog, queries))

    assert scores["oracle (upper bound)"] >= scores["cinderella (online)"]
    assert scores["cinderella (online)"] > 1.3 * scores["universal table"]
    assert scores["cinderella (online)"] > 1.3 * scores["hash"]
    assert scores["cinderella (online)"] > 1.2 * scores["round robin"]
    # hash partitioning cannot beat the unpartitioned table by much
    assert abs(scores["hash"] - scores["universal table"]) < 0.1
    # online Cinderella is competitive with the offline clustering
    assert scores["cinderella (online)"] > 0.8 * scores["offline clustering"]
