"""Pretty-printing helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.reporting.tables import format_table


def print_series_figure(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> None:
    """Print multiple (x, y) series as one aligned table (x on rows)."""
    xs = sorted({x for points in series.values() for x, _y in points})
    headers = [x_label] + [f"{name} [{y_label}]" for name in series]
    rows = []
    for x in xs:
        row: list[object] = [f"{x:.2f}"]
        for name in series:
            value = dict(series[name]).get(x)
            row.append(value if value is not None else "-")
        rows.append(row)
    print()
    print(format_table(headers, rows, title=title))
