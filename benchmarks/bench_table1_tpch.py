"""Table I — query execution time on regularly structured data (TPC-H).

Loads TPC-H into a Cinderella-partitioned universal table and runs the
complete 22-query workload through schema-emulating views, against the
standard per-table layout.

Paper findings this bench reproduces and asserts:

* Cinderella finds only partitions that exactly fit the TPC-H schema, in
  every size-limit setting;
* the total workload overhead over standard TPC-H is small (paper:
  +8.9 % / +5.7 % / +1.3 % for B = 500 / 2 000 / 10 000);
* a larger partition size limit decreases the union overhead.
"""

import time

from repro.core.config import CinderellaConfig
from repro.reporting.tables import format_table
from repro.workloads.tpch.databases import (
    CinderellaTPCHDatabase,
    StandardTPCHDatabase,
)
from repro.workloads.tpch.dbgen import generate_tpch
from repro.workloads.tpch.queries import QUERIES, run_query

from conftest import TPCH_B_VALUES, TPCH_SF


def run_workload(db, cost_model) -> tuple[float, float]:
    """Run Q1-Q22; return (total wall s, total simulated ms)."""
    db.pop_stats()
    total_sim_ms = 0.0
    started = time.perf_counter()
    for number in sorted(QUERIES):
        run_query(number, db)
        total_sim_ms += cost_model.workload_time_ms(db.pop_stats())
    return time.perf_counter() - started, total_sim_ms


def test_table1_tpch_regular_data(benchmark, cost_model):
    data = generate_tpch(scale_factor=TPCH_SF, seed=7)
    standard = StandardTPCHDatabase(data)
    scenarios: list[tuple[str, object]] = [("Standard TPC-H", standard)]
    for b in TPCH_B_VALUES:
        db = CinderellaTPCHDatabase(
            data, CinderellaConfig(max_partition_size=b, weight=0.5)
        )
        scenarios.append((f"Cinderella B={b}", db))

    results = {}
    for name, db in scenarios:
        wall_s, sim_ms = run_workload(db, cost_model)
        results[name] = (wall_s, sim_ms)

    base_wall, base_sim = results["Standard TPC-H"]
    rows = []
    for name, db in scenarios:
        wall_s, sim_ms = results[name]
        rows.append(
            [
                name,
                "-" if name == "Standard TPC-H" else str(
                    getattr(db, "partition_count", lambda: "-")()
                ),
                wall_s,
                f"{100 * wall_s / base_wall:.2f} %",
                sim_ms / 1000.0,
                f"{100 * sim_ms / base_sim:.2f} %",
            ]
        )
    print()
    print(
        format_table(
            [
                "scenario",
                "partitions",
                "wall s",
                "wall vs std",
                "simulated s",
                "sim vs std",
            ],
            rows,
            title=(
                f"Table I: total execution time of the 22 TPC-H queries "
                f"(SF {TPCH_SF}, {data.total_rows()} rows)"
            ),
        )
    )

    # benchmark kernel: Q6 (pure lineitem scan) on the middle configuration
    middle = scenarios[2][1]
    benchmark.pedantic(
        run_query, args=(6, middle), rounds=1, iterations=1
    )
    middle.pop_stats()

    # Cinderella recovers the TPC-H schema exactly, in every setting
    for name, db in scenarios[1:]:
        assert db.schema_is_exact(), name

    # overhead is modest and shrinks with a growing partition size limit.
    # Absolute percentages run higher than the paper's 8.9/5.7/1.3 % —
    # at harness scale the partition count per row is ~20x the paper's, so
    # fragmentation and per-branch costs weigh proportionally more; the
    # ordering and the "small, shrinking with B" shape are scale-free.
    sims = [results[f"Cinderella B={b}"][1] for b in TPCH_B_VALUES]
    for sim_ms in sims:
        overhead = sim_ms / base_sim
        assert 1.0 <= overhead < 1.4, f"simulated overhead {overhead:.2f}"
    assert sims[0] >= sims[1] >= sims[2], "overhead must shrink with B"
    # the largest limit comes closest to standard (paper: +1.3 %)
    assert sims[2] / base_sim < 1.2
