"""Maintenance extension bench — merge & re-org after heavy deletes.

The paper's delete routine only drops *empty* partitions; its conclusions
announce further work on managing large partition counts.  This bench
quantifies the gap and the two maintenance remedies built in
:mod:`repro.maintenance`:

1. load the DBpedia data, then delete 70 % of the entities — the
   partition count barely drops while fill rates collapse;
2. ``merge_small_partitions`` folds compatible fragments together without
   hurting Definition 1 efficiency;
3. offline ``reorganize`` rebuilds from scratch as the quality reference.
"""

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency
from repro.core.partitioner import CinderellaPartitioner
from repro.maintenance.merger import merge_small_partitions
from repro.maintenance.reorganizer import reorganize
from repro.reporting.tables import format_table

from conftest import N_ENTITIES


def test_maintenance_after_heavy_deletes(benchmark, dbpedia, query_workload):
    dictionary = dbpedia.dictionary()
    sample = dbpedia.entities[: min(N_ENTITIES, 10_000)]
    queries = [spec.query.synopsis_mask(dictionary) for spec in query_workload]

    partitioner = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=200, weight=0.3)
    )
    for entity in sample:
        partitioner.insert(entity.entity_id, entity.synopsis_mask(dictionary))
    loaded = (len(partitioner.catalog), catalog_efficiency(partitioner.catalog, queries))

    # heavy deletions: 7 of 10 entities leave
    for entity in sample:
        if entity.entity_id % 10 < 7:
            partitioner.delete(entity.entity_id)
    after_delete = (
        len(partitioner.catalog),
        catalog_efficiency(partitioner.catalog, queries),
    )
    remaining = partitioner.catalog.entity_count
    mean_fill_before = remaining / len(partitioner.catalog)

    report = merge_small_partitions(partitioner, min_fill=0.4)
    assert partitioner.check_invariants() == []
    after_merge = (
        len(partitioner.catalog),
        catalog_efficiency(partitioner.catalog, queries),
    )
    mean_fill_after = remaining / len(partitioner.catalog)

    reorg = reorganize(partitioner, query_masks=queries)
    after_reorg = (reorg.partitions_after, reorg.efficiency_after)

    print()
    print(
        format_table(
            ["state", "partitions", "EFFICIENCY(P)", "mean fill"],
            [
                ["loaded (10k entities)", loaded[0], loaded[1], "-"],
                ["after 70 % deletes", after_delete[0], after_delete[1],
                 mean_fill_before],
                [f"after merge ({report.merge_count} merges)", after_merge[0],
                 after_merge[1], mean_fill_after],
                ["after offline re-org", after_reorg[0], after_reorg[1], "-"],
            ],
            title="Maintenance after heavy deletes (B = 200, w = 0.3)",
        )
    )

    # benchmark kernel: one merge pass over a fragmented copy
    def fragmented_merge():
        fresh = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=200, weight=0.3)
        )
        for entity in sample[:2000]:
            fresh.insert(entity.entity_id, entity.synopsis_mask(dictionary))
        for entity in sample[:2000]:
            if entity.entity_id % 10 < 7:
                fresh.delete(entity.entity_id)
        return merge_small_partitions(fresh, min_fill=0.4)

    benchmark.pedantic(fragmented_merge, rounds=1, iterations=1)

    # deletes leave a far more fragmented catalog than a fresh run needs
    assert after_delete[0] > 2 * after_reorg[0]
    # merging reduces partitions drastically and raises the mean fill...
    assert report.merge_count > 0
    assert after_merge[0] < 0.5 * after_delete[0]
    assert mean_fill_after > 2 * mean_fill_before
    # ...without giving up much efficiency (merges are rating-gated)
    assert after_merge[1] > 0.85 * after_delete[1]
    # the offline re-org stays the quality reference point
    assert after_reorg[1] >= after_merge[1] - 0.05
