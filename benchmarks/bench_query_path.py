"""Query-path throughput benchmark and CI perf-regression gate.

Measures three executions of the same repeated selective-query workload
over one DBpedia-style load:

* **naive full scan** — every partition scanned, no pruning, no cache
  (:meth:`CinderellaTable.execute_naive`), the paper's unoptimized
  baseline;
* **pruned, uncached** — inverted synopsis-index pruning only;
* **pruned + cached** — pruning plus the partition-granular result
  cache (repeat rounds hit the cache).

``python benchmarks/bench_query_path.py --record`` re-measures and
rewrites the committed baseline ``BENCH_query_path.json`` at the repo
root.  The pytest gate (run as
``PYTHONPATH=src python -m pytest benchmarks/bench_query_path.py``)
re-measures and fails on a **>25 % regression** of the cached-vs-naive
speedup against that baseline.  Gating on the *relative* speedup —
both sides measured in the same process on the same machine — keeps the
gate meaningful across hardware, unlike absolute queries/sec.

The workload is fully seeded; ``benchmarks/conftest.py`` pins
``WORKLOAD_SEED`` and the deterministic hypothesis profile.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.querygen import build_query_workload, representative_queries

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_query_path.json"

#: workload shape — identical for recording and gating
N_ENTITIES = 4_000
MAX_PARTITION_SIZE = 400.0
WEIGHT = 0.3
ROUNDS = 5
N_QUERIES = 20
SEED = 42

#: the gate: cached speedup may lose at most 25 % vs. the baseline
REGRESSION_TOLERANCE = 0.25
#: ISSUE 3 acceptance: cached beats naive by at least this factor
MIN_CACHED_SPEEDUP = 2.0


def _load_table(use_cache: bool) -> tuple[CinderellaTable, list]:
    dataset = generate_dbpedia_persons(n_entities=N_ENTITIES, seed=SEED)
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=MAX_PARTITION_SIZE,
            weight=WEIGHT,
            use_synopsis_index=True,
        ),
        result_cache=QueryResultCache() if use_cache else None,
    )
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    masks = [e.synopsis_mask(table.dictionary) for e in dataset.entities]
    specs = build_query_workload(masks, table.dictionary, max_triples=50)
    queries = [
        spec.query
        for spec in representative_queries(specs, per_bucket=2)
        if spec.selectivity < 0.5
    ][:N_QUERIES]
    return table, queries


def _throughput(execute, queries, rounds: int) -> float:
    """Repeated-workload throughput in queries/second."""
    executed = 0
    started = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            execute(query)
            executed += 1
    return executed / (time.perf_counter() - started)


def run_benchmark() -> dict:
    """Measure all three strategies; returns the JSON-ready report."""
    cached, queries = _load_table(use_cache=True)
    uncached, _ = _load_table(use_cache=False)

    # verify the three strategies agree before timing them
    for query in queries[:5]:
        rows = cached.execute_naive(query).rows
        assert cached.execute(query).rows == rows
        assert uncached.execute(query).rows == rows
    cached.result_cache.clear()

    naive_qps = _throughput(uncached.execute_naive, queries, ROUNDS)
    pruned_qps = _throughput(uncached.execute, queries, ROUNDS)
    cached_qps = _throughput(cached.execute, queries, ROUNDS)

    counters = cached.query_counters.as_dict()
    return {
        "benchmark": "query_path",
        "workload": {
            "entities": N_ENTITIES,
            "max_partition_size": MAX_PARTITION_SIZE,
            "weight": WEIGHT,
            "rounds": ROUNDS,
            "queries": len(queries),
            "seed": SEED,
        },
        "throughput_qps": {
            "naive_full_scan": round(naive_qps, 1),
            "pruned_uncached": round(pruned_qps, 1),
            "pruned_cached": round(cached_qps, 1),
        },
        "speedups": {
            "pruned_vs_naive": round(pruned_qps / naive_qps, 2),
            "cached_vs_naive": round(cached_qps / naive_qps, 2),
            "cached_vs_pruned": round(cached_qps / pruned_qps, 2),
        },
        "fast_path_counters": {
            "partitions": cached.partition_count(),
            "pruning_ratio": round(counters["pruning_ratio"], 3),
            "cache_hit_rate": round(counters["cache_hit_rate"], 3),
            "cache_stale_drops": counters["cache_stale_drops"],
        },
    }


def test_query_path_perf_gate():
    """CI gate: ≥2× over naive, and within 25 % of the recorded baseline."""
    report = run_benchmark()
    cached_speedup = report["speedups"]["cached_vs_naive"]
    assert cached_speedup >= MIN_CACHED_SPEEDUP, (
        f"cached fast path is only {cached_speedup:.2f}x over the naive "
        f"full scan (acceptance floor: {MIN_CACHED_SPEEDUP}x)"
    )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["speedups"]["cached_vs_naive"] * (1 - REGRESSION_TOLERANCE)
    assert cached_speedup >= floor, (
        f"query-path throughput regressed >25%: cached-vs-naive speedup "
        f"{cached_speedup:.2f}x vs. recorded baseline "
        f"{baseline['speedups']['cached_vs_naive']:.2f}x (floor {floor:.2f}x). "
        f"If the slowdown is intended, re-record with "
        f"`python benchmarks/bench_query_path.py --record`."
    )
    # the pruning layer alone must also still pay for itself
    assert report["speedups"]["pruned_vs_naive"] >= 1.0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
