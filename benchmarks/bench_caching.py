"""Caching extension bench — the buffer pool over Cinderella partitions.

The paper's conclusions list caching among the physical-design aspects to
integrate next.  This bench runs a skewed query workload (selective
queries over popular attributes repeat) against the partitioned table
with and without a buffer pool:

* without a pool, every repetition pays the full physical scan;
* with a pool sized at a fraction of the data, the hot partitions stay
  resident, so the *partitioned* layout caches far better than the
  universal table — partitions concentrate the working set, the
  unpartitioned table smears it over all pages.
"""

from repro.core.config import CinderellaConfig
from repro.reporting.tables import format_table
from repro.storage.buffer import BufferPool
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable

from conftest import N_ENTITIES, PAGE_SIZE


def load_tables(dbpedia, pool_pages):
    pool_c = BufferPool(pool_pages)
    pool_u = BufferPool(pool_pages)
    cinderella = CinderellaTable(
        CinderellaConfig(max_partition_size=500, weight=0.3),
        page_size=PAGE_SIZE,
        buffer_pool=pool_c,
    )
    universal = UniversalTable(page_size=PAGE_SIZE, buffer_pool=pool_u)
    for entity in dbpedia.entities[: min(N_ENTITIES, 10_000)]:
        cinderella.insert(entity.attributes, entity_id=entity.entity_id)
        universal.insert(entity.attributes, entity_id=entity.entity_id)
    return cinderella, universal, pool_c, pool_u


def test_buffer_pool_over_partitions(benchmark, dbpedia, query_workload):
    selective = [s.query for s in query_workload if s.selectivity < 0.1][:2]
    assert selective, "need selective queries for a hot working set"

    # pool sized at ~50 % of the table's pages
    probe = CinderellaTable(
        CinderellaConfig(max_partition_size=500, weight=0.3), page_size=PAGE_SIZE
    )
    for entity in dbpedia.entities[:2000]:
        probe.insert(entity.attributes, entity_id=entity.entity_id)
    pages_per_entity = sum(
        probe.heap_of(p.pid).page_count for p in probe.catalog
    ) / len(probe)
    total_pages = int(pages_per_entity * min(N_ENTITIES, 10_000))
    pool_pages = max(8, total_pages // 2)

    cinderella, universal, pool_c, pool_u = load_tables(dbpedia, pool_pages)
    pool_c.reset()
    pool_u.reset()

    repeats = 5
    for _round in range(repeats):
        for query in selective:
            cinderella.execute(query)
            universal.execute(query)

    print()
    print(
        format_table(
            ["layout", "pool pages", "hits", "misses", "hit rate"],
            [
                ["cinderella", pool_pages, pool_c.hits, pool_c.misses,
                 pool_c.hit_rate],
                ["universal table", pool_pages, pool_u.hits, pool_u.misses,
                 pool_u.hit_rate],
            ],
            title=(
                f"Buffer pool (50 % of data) under a repeated selective "
                f"workload ({repeats}x{len(selective)} queries)"
            ),
        )
    )

    # benchmark kernel: one warm selective query on the partitioned table
    benchmark(lambda: cinderella.execute(selective[0]))

    # the partitioned working set fits the pool: high hit rate after warmup
    assert pool_c.hit_rate > 0.5
    # the universal table cycles over 2x the pool: LRU keeps missing
    assert pool_u.hit_rate < pool_c.hit_rate
