"""Vertical hidden-schema comparator bench — Section VI, quantified.

The paper argues the hidden-schema technique [18] is the closest related
work but "not directly applicable": it partitions vertically, offline,
and needs a good ``k``.  This bench runs the technique on the DBpedia
data and compares the resulting vertical layout against Cinderella's
horizontal layout on the same query workload, at instantiated-cell
granularity (the unit on which both layouts are measurable).

What the numbers show:

* vertical fragments excel when queries reference *few attributes of
  wide entities* (they never ship unreferenced columns);
* horizontal partitions excel at *entity retrieval* (a vertical layout
  must touch every fragment overlapping the entity's attributes — and
  reassembling whole entities means reading essentially everything);
* the hidden-schema clustering is highly sensitive to its ``k`` — the
  exact objection the paper raises.
"""

from repro.baselines.vertical import (
    HiddenSchemaPartitioner,
    horizontal_cell_efficiency,
)
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.reporting.tables import format_table

from conftest import N_ENTITIES


def test_vertical_vs_horizontal(benchmark, dbpedia, query_workload):
    dictionary = dbpedia.dictionary()
    sample = dbpedia.entities[: min(N_ENTITIES, 10_000)]
    masks = [entity.synopsis_mask(dictionary) for entity in sample]
    n_attributes = len(dictionary)
    queries = [spec.query.synopsis_mask(dictionary) for spec in query_workload]

    cinderella = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=500, weight=0.2)
    )
    for eid, mask in enumerate(masks):
        cinderella.insert(eid, mask)
    horizontal = horizontal_cell_efficiency(cinderella.catalog, queries)

    rows = []
    fragment_counts = {}
    vertical_scores = {}
    for k in (1, 2, 3, 5, 10):
        partitioner = HiddenSchemaPartitioner(k_neighbors=k, min_jaccard=0.05)
        fragments = partitioner.fit(masks, n_attributes)
        score = partitioner.cell_efficiency(masks, queries)
        fragment_counts[k] = len(fragments)
        vertical_scores[k] = score
        rows.append([f"hidden schema k={k}", len(fragments), score])
    rows.append(["cinderella horizontal", len(cinderella.catalog), horizontal])
    print()
    print(format_table(
        ["layout", "fragments/partitions", "cell-level EFFICIENCY"],
        rows,
        title=f"Vertical [18] vs horizontal Cinderella "
              f"({len(sample)} entities, {len(queries)} queries)",
    ))

    # the entity-retrieval case: fetch whole entities relevant to a query
    # (the universal-table access pattern the paper's queries embody) —
    # a vertical layout must then read every overlapping fragment per
    # referenced attribute AND the remaining fragments to reassemble rows
    print(
        "\nNote: scores above charge the vertical layout only for the "
        "fragments a query references; reassembling whole entities "
        "(SELECT *) would force it to read all fragments."
    )

    # benchmark kernel: one clustering run
    benchmark.pedantic(
        lambda: HiddenSchemaPartitioner(k_neighbors=3, min_jaccard=0.05).fit(
            masks, n_attributes
        ),
        rounds=1,
        iterations=1,
    )

    # k sensitivity: fragment counts swing with k (the paper's "requires
    # additional knowledge to provide a reasonably good k")
    assert fragment_counts[1] > fragment_counts[10]
    # an ill-chosen k collapses the layout towards one wide table
    assert min(fragment_counts.values()) <= 5
    # Cinderella is competitive with the best vertical k on this workload
    best_vertical = max(vertical_scores.values())
    assert horizontal > 0.5 * best_vertical
