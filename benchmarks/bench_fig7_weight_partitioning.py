"""Figure 7 — influence of the weight w on the partitioning
(paper: B = 5 000, DBpedia data set).

Four panels, each a distribution over the weight sweep:
(a) number of partitions, (b) entities per partition,
(c) attributes per partition, (d) sparseness per partition.

Paper findings this bench reproduces and asserts:

* the lower the weight, the more partitions; the count explodes for
  w < 0.2;
* higher weights put more entities per partition;
* attributes per partition grow with the weight, yet stay significantly
  below the universal table's attribute count in all settings;
* sparseness per partition grows with the weight; w = 0 yields perfectly
  dense (sparseness-0) partitions; medium weights stay well below the
  data set's overall sparseness (paper: 0.94).
"""

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.metrics.partition_stats import summarize_catalog
from repro.reporting.tables import format_table

from conftest import B_DEFAULT, W_SWEEP


def partition_with_weight(dbpedia, weight: float) -> CinderellaPartitioner:
    dictionary = dbpedia.dictionary()
    partitioner = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=B_DEFAULT, weight=weight)
    )
    for entity in dbpedia.entities:
        partitioner.insert(entity.entity_id, entity.synopsis_mask(dictionary))
    return partitioner


def test_fig7_weight_influence_on_partitioning(benchmark, dbpedia):
    summaries = {}
    for weight in W_SWEEP:
        partitioner = partition_with_weight(dbpedia, weight)
        assert partitioner.check_invariants() == []
        summaries[weight] = summarize_catalog(partitioner.catalog)

    # benchmark kernel: one full partitioning pass at the paper's w = 0.2
    benchmark.pedantic(
        partition_with_weight, args=(dbpedia, 0.2), rounds=1, iterations=1
    )

    rows = []
    for weight, summary in summaries.items():
        rows.append(
            [
                weight,
                summary.partition_count,
                summary.entities_summary.median,
                float(max(summary.entities_per_partition)),
                summary.attributes_summary.median,
                float(max(summary.attributes_per_partition)),
                summary.sparseness_summary.median,
                summary.max_sparseness,
            ]
        )
    print()
    print(
        format_table(
            [
                "w",
                "partitions (a)",
                "entities p50 (b)",
                "entities max (b)",
                "attrs p50 (c)",
                "attrs max (c)",
                "sparseness p50 (d)",
                "sparseness max (d)",
            ],
            rows,
            title=f"Figure 7: influence of the weight (B = {B_DEFAULT})",
        )
    )

    counts = {w: s.partition_count for w, s in summaries.items()}
    # (a) monotone-ish decrease, explosion below 0.2
    assert counts[0.0] > 4 * counts[0.4], "w < 0.2 must explode the count"
    assert counts[0.2] >= counts[0.6]
    # (b) higher weights fill partitions further
    assert (
        summaries[0.8].entities_summary.median
        > summaries[0.2].entities_summary.median
    )
    # (c) attributes per partition grow with w but stay below the table width
    table_width = len(dbpedia.attribute_names)
    assert (
        summaries[0.8].attributes_summary.median
        >= summaries[0.2].attributes_summary.median
    )
    for weight, summary in summaries.items():
        assert max(summary.attributes_per_partition) < table_width, f"w={weight}"
    # (d) w = 0 is perfectly homogeneous; medium weights stay well below
    # the data set's overall sparseness
    assert summaries[0.0].max_sparseness == 0.0
    dataset_sparseness = dbpedia.sparseness()
    assert summaries[0.4].sparseness_summary.median < dataset_sparseness - 0.15
    assert (
        summaries[0.8].sparseness_summary.median
        > summaries[0.2].sparseness_summary.median
    )
