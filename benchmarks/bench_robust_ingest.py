"""Robustness bench — hardened ingest overhead and atomic maintenance.

The paper's prototype assumes well-formed input and an uninterruptible
coordinator.  This bench prices what the robustness subsystem costs and
proves what it buys, on DBpedia-derived data:

1. a dirty load (deterministically corrupted rows mixed into the
   stream) goes through the validating pipeline: every bad row is
   quarantined, none reaches the catalog, and the validation overhead
   over raw inserts stays small;
2. a crash matrix kills an atomic merge at *every* internal step: each
   crash rolls the store back to the exact pre-operation catalog;
3. committed maintenance survives a coordinator crash: snapshot + WAL
   replay reproduce the exact post-merge catalog, and journal
   compaction shrinks the log without breaking recovery.
"""

import time

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.failures import CrashInjector, MidOperationCrash
from repro.distributed.store import DistributedUniversalStore
from repro.ingest import APPLIED, QUARANTINED, IngestPipeline
from repro.reporting.tables import format_table
from repro.storage.wal import WriteAheadLog

from conftest import N_ENTITIES

NODES = 6
B = 150
WEIGHT = 0.3


def make_store(wal=None):
    return DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=B, weight=WEIGHT)),
        replication_factor=2,
        wal=wal,
    )


def catalog_signature(store):
    return sorted(
        (p.pid, p.mask, tuple(sorted(p.entity_ids()))) for p in store.catalog
    )


def fragmented_rows(dbpedia, dictionary, count):
    rows = [
        (entity.entity_id, entity.synopsis_mask(dictionary))
        for entity in dbpedia.entities[:count]
    ]
    doomed = [eid for eid, _mask in rows if eid % 10 < 7]
    return rows, doomed


def test_robust_ingest_and_atomic_maintenance(benchmark, dbpedia, tmp_path):
    dictionary = dbpedia.dictionary()
    sample = dbpedia.entities[: min(N_ENTITIES, 6_000)]
    universe = 0
    clean_rows = []
    for entity in sample:
        mask = entity.synopsis_mask(dictionary)
        universe |= mask
        clean_rows.append((entity.entity_id, mask))

    # deterministically corrupt the stream: empty synopses, negative
    # sizes, and duplicate ids sprinkled through the load
    dirty_rows, corrupted = [], 0
    for index, (eid, mask) in enumerate(clean_rows):
        if index and index % 97 == 0:
            dirty_rows.append((eid, 0))                  # empty synopsis
            corrupted += 1
        elif index and index % 101 == 0:
            dirty_rows.append((eid, mask, -8))           # negative SIZE(e)
            corrupted += 1
        else:
            dirty_rows.append((eid, mask))
    dirty_rows.append(clean_rows[0])                     # duplicate id
    corrupted += 1

    # 1. dirty load through the hardened pipeline
    wal = WriteAheadLog(tmp_path / "bench.wal")
    store = make_store(wal=wal)
    pipe = IngestPipeline(store, attribute_universe=universe, max_pending=1024)
    started = time.perf_counter()
    results = pipe.load(dirty_rows)
    pipeline_seconds = time.perf_counter() - started

    applied = sum(r.status == APPLIED for r in results)
    quarantined = sum(r.status == QUARANTINED for r in results)

    # raw baseline: the same clean rows without the pipeline
    raw = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=B, weight=WEIGHT)
    )
    started = time.perf_counter()
    for eid, mask in clean_rows:
        if store.catalog.has_entity(eid):
            raw.insert(eid, mask)
    raw_seconds = time.perf_counter() - started
    overhead = pipeline_seconds / raw_seconds

    # 2. crash matrix over an atomic merge on a fragmented store
    matrix_rows, doomed = fragmented_rows(dbpedia, dictionary, 800)

    def build_fragmented(with_wal=None):
        fresh = make_store(wal=with_wal)
        for eid, mask in matrix_rows:
            fresh.insert(eid, mask)
        for eid in doomed:
            fresh.delete(eid)
        return fresh

    probe = build_fragmented()
    dry = CrashInjector(crash_at=None)
    probe.merge_small(min_fill=0.5, crash_hook=dry.reached)
    steps = dry.steps_seen
    assert steps >= 2, "merge must expose at least move + drop steps"

    rollbacks = 0
    for crash_at in range(steps):
        victim = build_fragmented()
        before = catalog_signature(victim)
        try:
            victim.merge_small(
                min_fill=0.5, crash_hook=CrashInjector(crash_at).reached
            )
        except MidOperationCrash:
            rollbacks += 1
        assert catalog_signature(victim) == before
        assert victim.partitioner.check_invariants() == []

    # 3. committed maintenance survives a coordinator crash + compaction
    store.checkpoint(tmp_path / "bench.snap.json")
    merge_report = store.merge_small(min_fill=0.5)
    committed = catalog_signature(store)
    bytes_before = wal.size_bytes()
    dropped = wal.compact()
    bytes_after = wal.size_bytes()
    recovered = DistributedUniversalStore.recover(
        tmp_path / "bench.snap.json", tmp_path / "bench.wal"
    )

    print()
    print(format_table(
        ["phase", "result"],
        [
            ["rows loaded (dirty stream)", len(dirty_rows)],
            ["applied / quarantined", f"{applied} / {quarantined}"],
            ["validation overhead vs raw", f"{overhead:.2f}x"],
            ["merge crash matrix", f"{steps} steps, {rollbacks} exact rollbacks"],
            ["merges committed after recovery", merge_report.merge_count],
            ["journal compaction", f"{bytes_before} -> {bytes_after} bytes "
                                   f"({dropped} records dropped)"],
        ],
        title=f"Robust ingest + atomic maintenance "
              f"({len(sample)} entities, B = {B}, w = {WEIGHT})",
    ))

    # benchmark kernel: one atomic (journaled, undo-logged) merge pass
    benchmark.pedantic(
        lambda: build_fragmented().merge_small(min_fill=0.5),
        rounds=1, iterations=1,
    )

    # the pipeline is lossless and exact: every row accounted for
    assert applied + quarantined == len(dirty_rows)
    assert quarantined == corrupted
    assert len(pipe.quarantine) == corrupted
    assert store.catalog.entity_count == applied
    assert store.partitioner.check_invariants() == []
    assert store.check_placement() == []
    # validation costs little next to the catalog's rating scans
    assert overhead < 3.0
    # every injected crash rolled back; none leaked a partial merge
    assert rollbacks == steps
    # committed maintenance recovers exactly, even from a compacted log
    assert merge_report.merge_count > 0
    assert dropped > 0 and bytes_after < bytes_before
    assert catalog_signature(recovered) == committed
    assert recovered.partitioner.check_invariants() == []
