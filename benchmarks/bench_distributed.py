"""Distributed deployment bench — Section II's cluster setting.

"Most obviously in distributed databases or distributed file systems,
partitions are distributed among the nodes."  This bench loads the
DBpedia workload into a simulated shared-nothing cluster twice — once
partitioned by Cinderella, once by load-balancing hash partitioning (the
web-scale default of Section VI) — and routes the selective query
workload through both placements.

Asserted behaviour:

* Cinderella routes selective queries to a small fraction of the nodes;
  hash placement contacts essentially all of them;
* total remote work (entities scanned across the cluster) drops by the
  pruning factor;
* hash keeps marginally better load balance — the price Cinderella pays,
  quantified, not hidden (single-query parallelism can likewise favour
  hash; the fan-out and aggregate-work win is Cinderella's).
"""

from repro.baselines.hash_partitioner import HashPartitioner
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.store import DistributedUniversalStore
from repro.reporting.tables import format_table

from conftest import N_ENTITIES

NODES = 16


def test_distributed_routing(benchmark, dbpedia, query_workload):
    dictionary = dbpedia.dictionary()
    sample = dbpedia.entities[: min(N_ENTITIES, 20_000)]

    cinderella_store = DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=500, weight=0.3)),
    )
    hash_store = DistributedUniversalStore(
        NODES, HashPartitioner(num_partitions=NODES * 8)
    )
    for entity in sample:
        mask = entity.synopsis_mask(dictionary)
        cinderella_store.insert(entity.entity_id, mask)
        hash_store.insert(entity.entity_id, mask)
    assert cinderella_store.check_placement() == []
    assert hash_store.check_placement() == []

    selective = [s for s in query_workload if s.selectivity < 0.15]
    broad = [s for s in query_workload if s.selectivity > 0.5]

    def route_all(store, specs):
        nodes = 0.0
        scanned = 0.0
        latency = 0.0
        for spec in specs:
            stats = store.route_query(spec.query.synopsis_mask(dictionary))
            nodes += stats.nodes_contacted
            scanned += stats.entities_scanned
            latency += stats.latency_ms
        count = len(specs)
        return nodes / count, scanned / count, latency / count

    cin_sel = route_all(cinderella_store, selective)
    hash_sel = route_all(hash_store, selective)
    cin_broad = route_all(cinderella_store, broad)
    hash_broad = route_all(hash_store, broad)

    print()
    print(format_table(
        ["placement", "workload", "avg nodes contacted", "avg entities scanned",
         "avg latency ms", "load imbalance"],
        [
            ["cinderella", "selective", cin_sel[0], cin_sel[1], cin_sel[2],
             cinderella_store.cluster.imbalance()],
            ["hash", "selective", hash_sel[0], hash_sel[1], hash_sel[2],
             hash_store.cluster.imbalance()],
            ["cinderella", "broad", cin_broad[0], cin_broad[1], cin_broad[2],
             cinderella_store.cluster.imbalance()],
            ["hash", "broad", hash_broad[0], hash_broad[1], hash_broad[2],
             hash_store.cluster.imbalance()],
        ],
        title=f"Distributed routing over {NODES} nodes "
              f"({len(sample)} entities, B = 500, w = 0.3)",
    ))

    # benchmark kernel: routing one selective query
    probe = selective[0].query.synopsis_mask(dictionary)
    benchmark(lambda: cinderella_store.route_query(probe))

    # hash placement cannot prune: (almost) every node is contacted
    assert hash_sel[0] > 0.95 * NODES
    # cinderella contacts a fraction of the cluster for selective queries
    assert cin_sel[0] < 0.7 * NODES
    # and scans a fraction of the data across the cluster
    assert cin_sel[1] < 0.6 * hash_sel[1]
    # hash keeps the better balance — report the honest trade-off
    assert hash_store.cluster.imbalance() <= cinderella_store.cluster.imbalance() + 0.1
