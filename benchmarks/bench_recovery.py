"""Recovery benchmark: restart replay with/without checkpoints, resync cost.

Two measurements behind the durability work:

* **Restart replay** — a serving node's cold start is ``load the last
  checkpoint snapshot + replay the WAL tail``.  Without checkpoints the
  tail *is* the node's whole history, so replay time grows linearly
  with the write count; with periodic checkpoints the tail is bounded
  by the checkpoint interval and replay time stays flat as the history
  grows 10×.  Both modes are measured on identical journals.
* **Resync wall-clock** — rebuilding a diverged replica from a healthy
  shard peer over the wire (``sync_snapshot`` pages + ``sync_delta``
  replay + count/digest verification), end to end through the router,
  for a multi-thousand-entity replica.

``python benchmarks/bench_recovery.py --record`` rewrites the committed
baseline ``BENCH_recovery.json`` at the repo root.  The pytest gates
fail on collapse: a checkpointed restart whose replay work grows with
history depth, or a resync that cannot rebuild a replica inside its
ceiling.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from conftest import WORKLOAD_SEED, quiet_floor

from repro.backup import checkpoint_node, replay_into_table
from repro.router import ClusterHarness, RouterConfig
from repro.storage.snapshot import load_node_checkpoint
from repro.storage.wal import WriteAheadLog, read_wal
from repro.table.partitioned import CinderellaTable

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"

#: write-history depths; the 10× step is the claim under test.  The
#: interval deliberately does not divide the depths: both levels end
#: with the same 100-record tail past their last checkpoint, so a flat
#: replay time is visible as *equal work*, not as an empty tail.
OPS_LEVELS = (1_000, 10_000)
CHECKPOINT_EVERY = 300
REPEATS = 5
FLOOR_K = 2

#: gate thresholds (collapse detectors)
MAX_RESYNC_S = 30.0
GATE_RESYNC_ENTITIES = 2_000
RECORD_RESYNC_ENTITIES = 10_000
#: checkpointed replay at 10× history may cost at most this fraction of
#: the uncheckpointed replay of the same history
MAX_CHECKPOINTED_REPLAY_RATIO = 0.35


def build_node_journal(root: Path, ops: int, checkpoint_every: int = 0):
    """One serving node's write history: *ops* journaled inserts, with a
    checkpoint every *checkpoint_every* writes when asked (0 = never).

    Returns ``(wal_path, snapshot_path_or_None, tail_records)``.
    """
    wal_path = root / f"node-{ops}-{checkpoint_every}.wal"
    snapshot_path = root / f"node-{ops}-{checkpoint_every}.snapshot"
    wal = WriteAheadLog(wal_path)
    table = CinderellaTable()
    for eid in range(ops):
        attributes = {
            "uid": f"u{eid}", "common": eid % 7, f"attr{eid % 4}": eid,
        }
        table.insert(attributes, entity_id=eid)
        wal.append("insert", {"eid": eid, "attributes": attributes})
        if checkpoint_every and (eid + 1) % checkpoint_every == 0:
            wal.sync()
            checkpoint_node(table, wal, snapshot_path)
    wal.sync()
    tail = len(wal.records())
    wal.close()
    return wal_path, (snapshot_path if checkpoint_every else None), tail


def measure_restart(wal_path: Path, snapshot_path, repeats: int = REPEATS):
    """Time the two cold-start phases over *repeats* runs (quiet floor)."""
    load_runs, replay_runs = [], []
    replayed = entities = 0
    for _ in range(repeats):
        started = time.perf_counter()
        if snapshot_path is not None:
            table, checkpoint_seq = load_node_checkpoint(snapshot_path)
        else:
            table, checkpoint_seq = CinderellaTable(), 0
        load_runs.append(time.perf_counter() - started)
        _basis, records, _torn = read_wal(wal_path)
        started = time.perf_counter()
        replayed = replay_into_table(table, records, after_seq=checkpoint_seq)
        replay_runs.append(time.perf_counter() - started)
        entities = table.catalog.entity_count
    return {
        "snapshot_load_ms": round(quiet_floor(load_runs, FLOOR_K) * 1e3, 3),
        "wal_replay_ms": round(quiet_floor(replay_runs, FLOOR_K) * 1e3, 3),
        "records_replayed": replayed,
        "entities_recovered": entities,
    }


def measure_replay_level(root: Path, ops: int) -> dict:
    """Both restart modes on identical *ops*-deep write histories."""
    plain_wal, _, plain_tail = build_node_journal(root, ops)
    ckpt_wal, ckpt_snapshot, ckpt_tail = build_node_journal(
        root, ops, checkpoint_every=CHECKPOINT_EVERY
    )
    return {
        "ops": ops,
        "checkpoint_every": CHECKPOINT_EVERY,
        "uncheckpointed": {
            "wal_tail_records": plain_tail,
            **measure_restart(plain_wal, None),
        },
        "checkpointed": {
            "wal_tail_records": ckpt_tail,
            **measure_restart(ckpt_wal, ckpt_snapshot),
        },
    }


def measure_resync(entities: int) -> dict:
    """Wall-clock to rebuild one diverged replica over the wire."""
    config = RouterConfig(
        upstream_timeout_s=2.0, eject_base_s=0.05, eject_max_s=0.5,
        resync_interval_s=0.0,  # driven explicitly, timed explicitly
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-resync-") as tmp:
        with ClusterHarness(
            tmp, n_nodes=3, replication_factor=2, router_config=config
        ) as cluster:
            with cluster.client() as client:
                for eid in range(entities):
                    client.insert(
                        {"uid": f"u{eid}", "common": eid % 5}, eid=eid
                    )
            router = cluster.router
            loop = cluster.router_thread._loop

            async def declare():
                router._mark_diverged("node1", reason="benchmark")

            asyncio.run_coroutine_threadsafe(declare(), loop).result(30)
            started = time.perf_counter()
            ok = asyncio.run_coroutine_threadsafe(
                router.resync_node("node1"), loop
            ).result(300)
            wall_s = time.perf_counter() - started
            assert ok, "benchmark resync failed"
            streamed = router.counters.sync_entities_streamed
            pages = sum(
                thread.server.counters.sync_pages_served
                for thread in cluster.nodes.values()
            )
    return {
        "entities_total": entities,
        "entities_streamed": streamed,
        "sync_pages_served": pages,
        "resync_wall_s": round(wall_s, 4),
        "entities_per_s": round(streamed / wall_s, 1) if wall_s else None,
    }


def run_benchmark(resync_entities: int = RECORD_RESYNC_ENTITIES) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as tmp:
        levels = [measure_replay_level(Path(tmp), ops) for ops in OPS_LEVELS]
    return {
        "benchmark": "recovery",
        "protocol": {
            "ops_levels": list(OPS_LEVELS),
            "checkpoint_every": CHECKPOINT_EVERY,
            "repeats": REPEATS,
            "floor_k": FLOOR_K,
            "seed": WORKLOAD_SEED,
        },
        "restart": levels,
        "resync": measure_resync(resync_entities),
    }


def test_checkpointed_replay_stays_flat_gate(tmp_path):
    """CI gate: checkpoints must bound restart replay as history grows.

    At every history depth the checkpointed tail stays under the
    checkpoint interval; at the deepest level the checkpointed replay
    costs a small fraction of replaying the whole history.
    """
    levels = [measure_replay_level(tmp_path, ops) for ops in OPS_LEVELS]
    for level in levels:
        plain, ckpt = level["uncheckpointed"], level["checkpointed"]
        assert plain["records_replayed"] == level["ops"]
        assert ckpt["records_replayed"] <= CHECKPOINT_EVERY, (
            f"checkpointing left {ckpt['records_replayed']} records to "
            f"replay at {level['ops']} ops (interval: {CHECKPOINT_EVERY})"
        )
        assert ckpt["entities_recovered"] == plain["entities_recovered"]
    deep = levels[-1]
    ratio = (
        deep["checkpointed"]["wal_replay_ms"]
        / max(deep["uncheckpointed"]["wal_replay_ms"], 1e-9)
    )
    assert ratio <= MAX_CHECKPOINTED_REPLAY_RATIO, (
        f"checkpointed replay at {deep['ops']} ops cost "
        f"{ratio:.2f}× the full-history replay "
        f"(ceiling: {MAX_CHECKPOINTED_REPLAY_RATIO})"
    )


def test_resync_wall_clock_gate():
    """CI gate: a diverged multi-thousand-entity replica must rebuild
    over the wire inside the ceiling, and actually stream its copy."""
    window = measure_resync(GATE_RESYNC_ENTITIES)
    assert window["resync_wall_s"] <= MAX_RESYNC_S, (
        f"resync of {window['entities_total']} entities took "
        f"{window['resync_wall_s']:.1f}s (ceiling: {MAX_RESYNC_S:.0f}s)"
    )
    assert window["entities_streamed"] > 0, "resync streamed nothing"


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--resync-entities", type=int, default=RECORD_RESYNC_ENTITIES,
    )
    args = parser.parse_args(argv)
    report = run_benchmark(resync_entities=args.resync_entities)
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
