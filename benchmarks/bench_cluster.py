"""Cluster load generator: routed throughput, tail latency, failover.

Drives a live :class:`~repro.router.testing.ClusterHarness` — WAL-backed
serving nodes behind a :class:`~repro.router.router.CinderellaRouter` —
over real sockets at 1, 2, and 3 nodes.  Every worker thread owns one
TCP connection *to the router* and issues a seeded mix of partition-
routed inserts and scatter-gather queries, timing every request at the
client.

Reported per node count:

* **throughput** — completed requests per second against the
  quiet-floor run duration (see ``benchmarks/conftest.py``);
* **p50 / p99 latency** — client-observed, pooled across repeats; the
  router adds a proxy hop and (for queries) a fan-out, which is the
  cost being measured;
* **failover recovery time** (3 nodes, rf=2) — a serving node is killed
  mid-traffic and the recovery window is measured twice: time until the
  next *complete* (non-degraded) query response, and time after restart
  until the router's catch-up buffer has fully drained back into the
  rejoined node.

``python benchmarks/bench_cluster.py --record`` rewrites the committed
baseline ``BENCH_cluster.json`` at the repo root.  The pytest gate
re-measures the 2-node level and the failover window and fails on
collapse (throughput floor, p99 ceiling, recovery ceiling, lost-write
accounting).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path

from conftest import WORKLOAD_SEED, percentile, quiet_floor

from repro.router import ClusterHarness, RouterConfig
from repro.server.client import ServerClient

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

NODE_COUNTS = (1, 2, 3)
CLIENTS = 6
OPS_PER_CLIENT = 120
REPEATS = 3
FLOOR_K = 2

#: gate thresholds (loose collapse detectors, not microbenchmarks)
MIN_THROUGHPUT_RPS = 80.0
MAX_P99_S = 1.5
MAX_FAILOVER_RECOVERY_S = 5.0
MAX_REJOIN_CATCHUP_S = 15.0


def _harness(tmp: str, n_nodes: int) -> ClusterHarness:
    return ClusterHarness(
        tmp,
        n_nodes=n_nodes,
        replication_factor=min(2, n_nodes),
        router_config=RouterConfig(
            upstream_timeout_s=1.0, eject_base_s=0.1, eject_max_s=1.0,
        ),
    )


class LoadWorker(threading.Thread):
    """One router connection issuing a seeded insert/query mix."""

    def __init__(self, index: int, address, ops: int):
        super().__init__(name=f"cluster-load-{index}")
        self.index = index
        self.address = address
        self.ops = ops
        self.latencies_s: list[float] = []
        self.applied = 0
        self.bounced = 0
        self.queries = 0
        self.errors: list[str] = []

    def run(self) -> None:
        import random

        rng = random.Random(WORKLOAD_SEED + self.index)
        base = self.index * 1_000_000
        try:
            with ServerClient(*self.address, check=False) as client:
                for step in range(self.ops):
                    started = time.perf_counter()
                    if rng.random() < 0.7:
                        response = client.insert(
                            {"common": 1, f"attr{rng.randrange(4)}": step},
                            eid=base + step,
                        )
                        if response.status == "applied":
                            self.applied += 1
                        elif response.retryable:
                            self.bounced += 1
                        else:
                            self.errors.append(f"insert -> {response.status}")
                    else:
                        client.query([f"attr{rng.randrange(4)}"])
                        self.queries += 1
                    self.latencies_s.append(time.perf_counter() - started)
        except Exception as err:
            self.errors.append(f"{type(err).__name__}: {err}")


def _run_level(n_nodes: int, ops_per_client: int, clients: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
        with _harness(tmp, n_nodes) as cluster:
            workers = [
                LoadWorker(index, cluster.router_address, ops_per_client)
                for index in range(clients)
            ]
            started = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=300)
            duration_s = time.perf_counter() - started
            errors = [e for worker in workers for e in worker.errors]
            assert errors == [], errors
            applied = sum(w.applied for w in workers)
            # nothing acked may be lost: with rf capped at the node
            # count, summing per-node acked writes double-counts by the
            # replication factor at most — the router's own accounting
            # is the ground truth
            assert cluster.router.counters.writes_routed >= applied
            for thread in cluster.nodes.values():
                assert thread.server.table.check_consistency() == []
    return {
        "duration_s": duration_s,
        "requests": sum(len(w.latencies_s) for w in workers),
        "latencies_s": [s for w in workers for s in w.latencies_s],
        "applied": applied,
        "bounced": sum(w.bounced for w in workers),
        "queries": sum(w.queries for w in workers),
    }


def measure_level(n_nodes: int, ops_per_client: int = OPS_PER_CLIENT,
                  clients: int = CLIENTS, repeats: int = REPEATS) -> dict:
    runs = [
        _run_level(n_nodes, ops_per_client, clients) for _ in range(repeats)
    ]
    latencies = [s for run in runs for s in run["latencies_s"]]
    floor_duration = quiet_floor([run["duration_s"] for run in runs], FLOOR_K)
    return {
        "nodes": n_nodes,
        "replication_factor": min(2, n_nodes),
        "clients": clients,
        "ops_per_client": ops_per_client,
        "repeats": repeats,
        "requests_per_run": runs[0]["requests"],
        "throughput_rps": round(runs[0]["requests"] / floor_duration, 1),
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "writes_applied": sum(run["applied"] for run in runs),
        "writes_bounced": sum(run["bounced"] for run in runs),
        "queries_served": sum(run["queries"] for run in runs),
    }


def measure_failover(ops_before_kill: int = 60) -> dict:
    """Kill a node mid-traffic; time the two recovery windows."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-failover-") as tmp:
        with _harness(tmp, 3) as cluster:
            with cluster.client(check=False) as client:
                for i in range(ops_before_kill):
                    client.insert({"common": 1, "a": i}, eid=i)
                cluster.kill_node("node1")
                killed_at = time.perf_counter()
                # failover recovery: until the next *complete* answer
                recovery_s = None
                deadline = killed_at + 30.0
                while time.perf_counter() < deadline:
                    response = client.request("query", attributes=["a"])
                    if response.ok:
                        recovery_s = time.perf_counter() - killed_at
                        break
                assert recovery_s is not None, "scatter never recovered"
                # write while the node is down so rejoin has work to do
                # (spread over several shards: some are replicated on
                # the dead node and land in its catch-up buffer)
                for offset in range(10):
                    acked = client.retrying(
                        "insert", attributes={"common": 1, "a": 999},
                        eid=1_000 + offset,
                    )
                    assert acked.status == "applied"
                cluster.restart_node("node1")
                restarted_at = time.perf_counter()
                rejoin_s = None
                deadline = restarted_at + 60.0
                router = cluster.router
                while time.perf_counter() < deadline:
                    client.request("query", attributes=["a"])
                    if (
                        not router._catchup["node1"]
                        and router.health["node1"].state == "healthy"
                    ):
                        rejoin_s = time.perf_counter() - restarted_at
                        break
                    time.sleep(0.02)
                assert rejoin_s is not None, "node never rejoined"
                counters = router.counters.as_dict()
    return {
        "nodes": 3,
        "replication_factor": 2,
        "failover_recovery_s": round(recovery_s, 4),
        "rejoin_catchup_s": round(rejoin_s, 4),
        "failovers": counters["failovers"],
        "node_ejections": counters["node_ejections"],
        "availability": counters["availability"],
    }


def run_benchmark() -> dict:
    _run_level(1, 20, 2)  # warm-up: imports, thread pools, allocator
    return {
        "benchmark": "cluster_serving",
        "protocol": {
            "node_counts": list(NODE_COUNTS),
            "clients": CLIENTS,
            "ops_per_client": OPS_PER_CLIENT,
            "repeats": REPEATS,
            "floor_k": FLOOR_K,
            "seed": WORKLOAD_SEED,
        },
        "levels": [measure_level(n) for n in NODE_COUNTS],
        "failover": measure_failover(),
    }


def test_cluster_load_gate():
    """CI gate: routed serving must not collapse, failover must be fast."""
    level = measure_level(2, ops_per_client=60, clients=4, repeats=2)
    assert level["throughput_rps"] >= MIN_THROUGHPUT_RPS, (
        f"routed throughput collapsed to {level['throughput_rps']:.0f} "
        f"req/s at 2 nodes (floor: {MIN_THROUGHPUT_RPS:.0f})"
    )
    assert level["latency_p99_ms"] <= MAX_P99_S * 1e3, (
        f"routed p99 latency {level['latency_p99_ms']:.0f} ms exceeds "
        f"{MAX_P99_S * 1e3:.0f} ms at 2 nodes"
    )


def test_failover_recovery_gate():
    """CI gate: a dead node must not take the cluster down with it."""
    window = measure_failover(ops_before_kill=40)
    assert window["failover_recovery_s"] <= MAX_FAILOVER_RECOVERY_S, (
        f"scatter needed {window['failover_recovery_s']:.2f}s to answer "
        f"complete again (ceiling: {MAX_FAILOVER_RECOVERY_S:.0f}s)"
    )
    assert window["rejoin_catchup_s"] <= MAX_REJOIN_CATCHUP_S, (
        f"rejoin catch-up needed {window['rejoin_catchup_s']:.2f}s "
        f"(ceiling: {MAX_REJOIN_CATCHUP_S:.0f}s)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
