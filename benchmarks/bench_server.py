"""Server load generator: throughput, latency, and shed rate under load.

Drives a live :class:`~repro.server.server.CinderellaServer` over real
sockets at several concurrency levels.  Each level runs ``REPEATS``
fresh server instances; every worker thread owns one TCP connection and
issues a seeded mix of inserts (raw, no client-side retry — shed
responses are the measurement, not an error) and attribute queries,
timing every request at the client.

Reported per concurrency level:

* **throughput** — completed requests per second, computed against the
  quiet-floor run duration (see ``benchmarks/conftest.py``: machine
  interference only ever adds time, so the quietest run approaches the
  interference-free floor);
* **p50 / p99 latency** — client-observed, pooled across repeats;
* **shed rate** — the fraction of modifications bounced with
  ``overloaded`` by admission control; under a bounded queue this is
  load shedding working, not failure.

``python benchmarks/bench_server.py --record`` rewrites the committed
baseline ``BENCH_server.json`` at the repo root.  The pytest gate
re-measures one mid-size level and fails on collapse (throughput floor,
p99 ceiling, lost-write accounting).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from conftest import WORKLOAD_SEED, percentile, quiet_floor

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.client import ServerClient
from repro.table.partitioned import CinderellaTable

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: concurrent client connections measured (the issue demands >= 3 levels)
CONCURRENCY_LEVELS = (2, 8, 16)
OPS_PER_CLIENT = 150
#: fresh server runs per level; the floor is the quietest run
REPEATS = 3
FLOOR_K = 2
#: write-queue bound.  A synchronous client has at most one write in
#: flight, so queue depth is bounded by the connection count — the
#: bound sits below the top concurrency level precisely so that level
#: demonstrates admission control shedding under real overload
MAX_PENDING = 8

#: gate thresholds (deliberately loose: this is a collapse detector,
#: not a regression microbenchmark — CI machines vary wildly)
MIN_THROUGHPUT_RPS = 150.0
MAX_P99_S = 1.0


def _make_server() -> CinderellaServer:
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=64.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(thread_safe=True),
    )
    return CinderellaServer(
        table=table,
        config=ServerConfig(
            max_pending=MAX_PENDING,
            batch_max=16,
            batch_linger_s=0.002,
            max_parallel_reads=8,
            maintenance_interval_s=0.1,
            merge_min_fill=0.5,
        ),
    )


class LoadWorker(threading.Thread):
    """One connection issuing a seeded insert/query mix, timing each op."""

    def __init__(self, index: int, address, ops: int):
        super().__init__(name=f"load-{index}")
        self.index = index
        self.address = address
        self.ops = ops
        self.latencies_s: list[float] = []
        self.applied = 0
        self.shed = 0
        self.queries = 0
        self.errors: list[str] = []

    def run(self) -> None:
        import random

        rng = random.Random(WORKLOAD_SEED + self.index)
        base = self.index * 1_000_000
        try:
            with ServerClient(*self.address, check=False) as client:
                for step in range(self.ops):
                    started = time.perf_counter()
                    if rng.random() < 0.7:
                        response = client.insert(
                            {"common": 1, f"attr{rng.randrange(4)}": step},
                            eid=base + step,
                        )
                        if response.status == "applied":
                            self.applied += 1
                        elif response.retryable:
                            self.shed += 1
                        else:
                            self.errors.append(
                                f"insert -> {response.status}"
                            )
                    else:
                        client.query([f"attr{rng.randrange(4)}"])
                        self.queries += 1
                    self.latencies_s.append(time.perf_counter() - started)
        except Exception as err:
            self.errors.append(f"{type(err).__name__}: {err}")


def _run_level(concurrency: int, ops_per_client: int) -> dict:
    """One fresh server under ``concurrency`` connections; returns raw data."""
    server = _make_server()
    with ServerThread(server=server) as harness:
        workers = [
            LoadWorker(index, harness.address, ops_per_client)
            for index in range(concurrency)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300)
        duration_s = time.perf_counter() - started
    errors = [e for worker in workers for e in worker.errors]
    assert errors == [], errors
    assert server.table.check_consistency() == []
    applied = sum(w.applied for w in workers)
    shed = sum(w.shed for w in workers)
    assert server.counters.writes_applied == applied  # nothing lost
    return {
        "duration_s": duration_s,
        "requests": sum(len(w.latencies_s) for w in workers),
        "latencies_s": [s for w in workers for s in w.latencies_s],
        "applied": applied,
        "shed": shed,
        "queries": sum(w.queries for w in workers),
        "server_shed_rate": server.counters.shed_rate(),
    }


def measure_level(concurrency: int, ops_per_client: int = OPS_PER_CLIENT,
                  repeats: int = REPEATS) -> dict:
    """Aggregate one concurrency level over ``repeats`` fresh servers."""
    runs = [_run_level(concurrency, ops_per_client) for _ in range(repeats)]
    latencies = [s for run in runs for s in run["latencies_s"]]
    requests_per_run = runs[0]["requests"]
    floor_duration = quiet_floor([run["duration_s"] for run in runs], FLOOR_K)
    writes = sum(run["applied"] + run["shed"] for run in runs)
    shed = sum(run["shed"] for run in runs)
    return {
        "concurrency": concurrency,
        "ops_per_client": ops_per_client,
        "repeats": repeats,
        "requests_per_run": requests_per_run,
        "throughput_rps": round(requests_per_run / floor_duration, 1),
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "shed_rate": round(shed / writes, 4) if writes else 0.0,
        "writes_applied": sum(run["applied"] for run in runs),
        "writes_shed": shed,
        "queries_served": sum(run["queries"] for run in runs),
    }


def run_benchmark() -> dict:
    """Measure every concurrency level; returns the JSON-ready report."""
    _run_level(2, 30)  # warm-up: imports, thread pools, allocator
    return {
        "benchmark": "server_load",
        "protocol": {
            "levels": list(CONCURRENCY_LEVELS),
            "ops_per_client": OPS_PER_CLIENT,
            "repeats": REPEATS,
            "floor_k": FLOOR_K,
            "max_pending": MAX_PENDING,
            "seed": WORKLOAD_SEED,
        },
        "levels": [
            measure_level(concurrency) for concurrency in CONCURRENCY_LEVELS
        ],
    }


def test_server_load_gate():
    """CI gate: the serving layer must not collapse under concurrency."""
    level = measure_level(8, ops_per_client=80, repeats=2)
    assert level["throughput_rps"] >= MIN_THROUGHPUT_RPS, (
        f"throughput collapsed to {level['throughput_rps']:.0f} req/s "
        f"at concurrency 8 (floor: {MIN_THROUGHPUT_RPS:.0f})"
    )
    assert level["latency_p99_ms"] <= MAX_P99_S * 1e3, (
        f"p99 latency {level['latency_p99_ms']:.0f} ms exceeds "
        f"{MAX_P99_S * 1e3:.0f} ms at concurrency 8"
    )
    # shedding is allowed (bounded queue working); losing writes is not —
    # _run_level already asserted applied-write accounting per run
    assert 0.0 <= level["shed_rate"] < 1.0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
