"""Server load generator: throughput, latency, and shed rate under load.

Drives a live :class:`~repro.server.server.CinderellaServer` over real
sockets at several concurrency levels.  Each level runs ``REPEATS``
fresh server instances; every worker thread owns one TCP connection and
**pipelines** a seeded mix of pre-encoded inserts (raw, no client-side
retry — shed responses are the measurement, not an error) and attribute
queries, keeping up to ``PIPELINE_WINDOW`` requests in flight.  The
line protocol answers in order, so latencies pair FIFO: send-time to
response-line read.

Pipelining matters: a strict request/response client measures the
round-trip latency floor, not the server.  With the MVCC read path
(queries served lock-free from immutable snapshots) and group commit
(one transaction + one fsync per write batch), the server's capacity
is far beyond one-in-flight-per-connection, and the generator has to
offer enough load to expose it.

Reported per concurrency level:

* **throughput** — completed requests per second, computed against the
  quiet-floor run duration (see ``benchmarks/conftest.py``: machine
  interference only ever adds time, so the quietest run approaches the
  interference-free floor);
* **p50 / p99 latency** — client-observed (queueing in the pipeline
  window included), pooled across repeats;
* **shed rate** — the fraction of modifications bounced with
  ``overloaded``.  Under adaptive admission this must stay near zero at
  every measured level: the window tracks the server's observed batch
  throughput instead of a fixed queue bound.

``python benchmarks/bench_server.py --record`` rewrites the committed
baseline ``BENCH_server.json`` at the repo root.  The pytest gate
re-measures the top level and fails if the MVCC serving layer loses its
headline: ≥4× the pre-snapshot baseline's c=16 throughput with the shed
rate under two percent (the old single-writer server shed 43% there).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

from conftest import WORKLOAD_SEED, percentile, quiet_floor

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.protocol import encode_request
from repro.table.partitioned import CinderellaTable

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: concurrent client connections measured (the issue demands >= 3 levels)
CONCURRENCY_LEVELS = (2, 8, 16)
OPS_PER_CLIENT = 400
#: fraction of requests that are modifications.  The seed protocol ran
#: write-heavy (70%) because the old server's story *was* its write
#: queue — and it still shed 43% of those writes at c=16.  The MVCC
#: protocol measures the serving shape the tentpole is about: a
#: read-dominant mix (10% writes, the YCSB-B shape) where queries never
#: block on writers and admission keeps every offered write instead of
#: bouncing it
WRITE_FRACTION = 0.1
#: the attribute universe: every entity carries one hot attribute,
#: queries probe one uniformly — four live query shapes whose results
#: grow as the run inserts, exercising the snapshot layer's incremental
#: match/serialize caches rather than a fixed hot fragment
ATTRIBUTE_SPACE = 4
#: requests a connection keeps in flight before reading responses
PIPELINE_WINDOW = 32
#: fresh server runs per level; the floor is the quietest run
REPEATS = 3
FLOOR_K = 2
#: write-queue bound.  Admission is adaptive now: the effective window
#: follows observed batch throughput × target latency, and this is only
#: its ceiling, sized above the deepest pipelined burst the generator
#: can offer (16 connections × 32 in flight)
MAX_PENDING = 512

#: gate thresholds.  The throughput gate is the tentpole's headline —
#: ≥4× the committed pre-MVCC c=16 baseline (4595.6 rps); the shed gate
#: pins adaptive admission (the fixed-window server shed 43% at c=16)
BASELINE_C16_RPS = 4595.6
MIN_C16_THROUGHPUT_RPS = 4.0 * BASELINE_C16_RPS
MAX_C16_SHED_RATE = 0.02
MAX_P99_S = 1.0


def _make_server() -> CinderellaServer:
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=256.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(thread_safe=True),
    )
    return CinderellaServer(
        table=table,
        config=ServerConfig(
            max_pending=MAX_PENDING,
            batch_max=128,
            batch_linger_s=0.001,
            admission_target_latency_s=0.25,
            maintenance_interval_s=0.1,
            merge_min_fill=0.5,
        ),
    )


class LoadWorker(threading.Thread):
    """One connection pipelining a seeded, pre-encoded insert/query mix."""

    def __init__(self, index: int, address, ops: int):
        super().__init__(name=f"load-{index}")
        self.index = index
        self.address = address
        self.ops = ops
        self.latencies_s: list[float] = []
        self.applied = 0
        self.shed = 0
        self.queries = 0
        self.errors: list[str] = []
        # pre-encode outside the timed loop: the generator must spend
        # its cycles offering load, not serializing JSON
        import random

        rng = random.Random(WORKLOAD_SEED + self.index)
        base = self.index * 1_000_000
        self._payloads: list[bytes] = []
        self._kinds: list[str] = []
        for step in range(ops):
            if rng.random() < WRITE_FRACTION:
                self._payloads.append(encode_request(
                    "insert", request_id=step,
                    attributes={f"attr{rng.randrange(ATTRIBUTE_SPACE)}": step},
                    eid=base + step,
                ))
                self._kinds.append("w")
            else:
                self._payloads.append(encode_request(
                    "query", request_id=step,
                    attributes=[f"attr{rng.randrange(ATTRIBUTE_SPACE)}"],
                ))
                self._kinds.append("q")

    def run(self) -> None:
        try:
            with socket.create_connection(self.address, timeout=60) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                reader = sock.makefile("rb")
                send_times: list[float] = []
                sent = 0
                done = 0
                while done < self.ops:
                    if sent < self.ops and sent - done < PIPELINE_WINDOW:
                        burst = min(self.ops, done + PIPELINE_WINDOW)
                        chunk = b"".join(self._payloads[sent:burst])
                        now = time.perf_counter()
                        send_times.extend(now for _ in range(sent, burst))
                        sock.sendall(chunk)
                        sent = burst
                        continue
                    line = reader.readline()
                    if not line:
                        self.errors.append("connection closed mid-run")
                        return
                    self.latencies_s.append(
                        time.perf_counter() - send_times[done]
                    )
                    self._classify(done, line)
                    done += 1
        except Exception as err:
            self.errors.append(f"{type(err).__name__}: {err}")

    def _classify(self, index: int, line: bytes) -> None:
        """Byte-level status checks: no JSON decode in the hot loop."""
        if self._kinds[index] == "w":
            if b'"status":"applied"' in line:
                self.applied += 1
            elif b'"status":"overloaded"' in line:
                self.shed += 1
            else:
                self.errors.append(f"insert -> {line[:120]!r}")
        else:
            if b'"row_count":' in line:
                self.queries += 1
            else:
                self.errors.append(f"query -> {line[:120]!r}")


def _run_level(concurrency: int, ops_per_client: int) -> dict:
    """One fresh server under ``concurrency`` connections; returns raw data."""
    server = _make_server()
    with ServerThread(server=server) as harness:
        workers = [
            LoadWorker(index, harness.address, ops_per_client)
            for index in range(concurrency)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300)
        duration_s = time.perf_counter() - started
    errors = [e for worker in workers for e in worker.errors]
    assert errors == [], errors[:10]
    assert server.table.check_consistency() == []
    applied = sum(w.applied for w in workers)
    shed = sum(w.shed for w in workers)
    assert server.counters.writes_applied == applied  # nothing lost
    assert server.lock.read_acquisitions == 0  # reads stayed lock-free
    return {
        "duration_s": duration_s,
        "requests": sum(len(w.latencies_s) for w in workers),
        "latencies_s": [s for w in workers for s in w.latencies_s],
        "applied": applied,
        "shed": shed,
        "queries": sum(w.queries for w in workers),
        "server_shed_rate": server.counters.shed_rate(),
    }


def measure_level(concurrency: int, ops_per_client: int = OPS_PER_CLIENT,
                  repeats: int = REPEATS) -> dict:
    """Aggregate one concurrency level over ``repeats`` fresh servers."""
    runs = [_run_level(concurrency, ops_per_client) for _ in range(repeats)]
    latencies = [s for run in runs for s in run["latencies_s"]]
    requests_per_run = runs[0]["requests"]
    floor_duration = quiet_floor([run["duration_s"] for run in runs], FLOOR_K)
    writes = sum(run["applied"] + run["shed"] for run in runs)
    shed = sum(run["shed"] for run in runs)
    return {
        "concurrency": concurrency,
        "ops_per_client": ops_per_client,
        "repeats": repeats,
        "requests_per_run": requests_per_run,
        "throughput_rps": round(requests_per_run / floor_duration, 1),
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "shed_rate": round(shed / writes, 4) if writes else 0.0,
        "writes_applied": sum(run["applied"] for run in runs),
        "writes_shed": shed,
        "queries_served": sum(run["queries"] for run in runs),
    }


def run_benchmark() -> dict:
    """Measure every concurrency level; returns the JSON-ready report."""
    _run_level(2, 50)  # warm-up: imports, thread pools, allocator
    return {
        "benchmark": "server_load",
        "protocol": {
            "levels": list(CONCURRENCY_LEVELS),
            "ops_per_client": OPS_PER_CLIENT,
            "write_fraction": WRITE_FRACTION,
            "attribute_space": ATTRIBUTE_SPACE,
            "pipeline_window": PIPELINE_WINDOW,
            "repeats": REPEATS,
            "floor_k": FLOOR_K,
            "max_pending": MAX_PENDING,
            "seed": WORKLOAD_SEED,
        },
        "levels": [
            measure_level(concurrency) for concurrency in CONCURRENCY_LEVELS
        ],
    }


def test_server_load_gate():
    """CI gate: the MVCC serving layer must hold its headline at c=16.

    ≥4× the committed pre-snapshot baseline's throughput, shed rate
    under two percent, and a sane tail — all on the same machine class
    that recorded the 4595.6 rps / 43%-shed single-writer baseline.
    """
    _run_level(2, 50)  # warm-up
    level = measure_level(16, ops_per_client=OPS_PER_CLIENT, repeats=2)
    assert level["throughput_rps"] >= MIN_C16_THROUGHPUT_RPS, (
        f"throughput {level['throughput_rps']:.0f} req/s at c=16 lost the "
        f"MVCC headline (gate: {MIN_C16_THROUGHPUT_RPS:.0f} = 4x the "
        f"single-writer baseline)"
    )
    assert level["shed_rate"] < MAX_C16_SHED_RATE, (
        f"shed rate {level['shed_rate']:.1%} at c=16 exceeds "
        f"{MAX_C16_SHED_RATE:.0%}: adaptive admission regressed toward "
        f"the fixed-window behaviour (43% shed)"
    )
    assert level["latency_p99_ms"] <= MAX_P99_S * 1e3, (
        f"p99 latency {level['latency_p99_ms']:.0f} ms exceeds "
        f"{MAX_P99_S * 1e3:.0f} ms at concurrency 16"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help=f"rewrite the committed baseline at {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    if args.record:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline recorded to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
