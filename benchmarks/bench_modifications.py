"""Modification-mix bench — partitioning stability under sustained churn.

The paper defines the update and delete routines (Section III) but its
evaluation only measures bulk inserts.  This bench closes that gap: after
a warm-up load, a long mixed trace of inserts, drift updates, churn
updates (entities changing their latent type), and deletes streams
through Cinderella while telemetry samples partitioning health.

Asserted behaviour:

* invariants hold through the whole trace;
* Definition 1 efficiency stays within a band of the warm-up value —
  the online algorithm keeps the partitioning good, it does not decay;
* churn updates move entities (the update routine re-rates and
  relocates), while pure drift updates mostly stay in place.
"""

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.metrics.telemetry import TelemetryCollector
from repro.reporting.chart import render_line_chart
from repro.reporting.tables import format_table
from repro.workloads.modifications import generate_trace

from conftest import N_ENTITIES


def test_partitioning_stability_under_churn(benchmark, dbpedia, query_workload):
    dictionary = dbpedia.dictionary()
    queries = [spec.query.synopsis_mask(dictionary) for spec in query_workload]
    warmup = min(N_ENTITIES // 4, 5_000)
    operations = warmup  # as many mixed ops as warm-up inserts
    trace = generate_trace(
        dbpedia,
        operations=operations,
        insert_share=0.4,
        update_share=0.35,
        churn_update_share=0.4,
        warmup=warmup,
        seed=5,
    )

    partitioner = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=200, weight=0.3)
    )
    telemetry = TelemetryCollector(
        interval=max(1, (warmup + operations) // 20), query_masks=queries
    )
    moved_updates = 0
    in_place_updates = 0
    applied = {"insert": 0, "update": 0, "delete": 0}
    efficiency_after_warmup = None
    for position, operation in enumerate(trace):
        if operation.kind == "insert":
            partitioner.insert(
                operation.entity_id, dictionary.encode(operation.attributes)
            )
        elif operation.kind == "update":
            outcome = partitioner.update(
                operation.entity_id, dictionary.encode(operation.attributes)
            )
            if outcome.in_place:
                in_place_updates += 1
            else:
                moved_updates += 1
        else:
            partitioner.delete(operation.entity_id)
        applied[operation.kind] += 1
        telemetry.observe(partitioner)
        if position + 1 == warmup:
            from repro.core.efficiency import catalog_efficiency

            efficiency_after_warmup = catalog_efficiency(
                partitioner.catalog, queries
            )

    final = telemetry.sample_now(partitioner)
    assert partitioner.check_invariants() == []

    print()
    print(format_table(
        ["metric", "value"],
        [
            ["operations applied", sum(applied.values())],
            ["inserts / updates / deletes",
             f"{applied['insert']} / {applied['update']} / {applied['delete']}"],
            ["updates moved / in place", f"{moved_updates} / {in_place_updates}"],
            ["efficiency after warm-up", efficiency_after_warmup],
            ["efficiency at end", final.efficiency],
            ["partitions at end", final.partition_count],
            ["splits total", final.split_count],
        ],
        title="Partitioning stability under mixed modifications",
    ))
    print()
    print(render_line_chart(
        {"efficiency": telemetry.series("efficiency")},
        title="Definition 1 efficiency over the trace",
        height=10,
    ))

    # benchmark kernel: one churn update (re-rate, possibly move)
    sample_update = next(op for op in reversed(trace) if op.kind == "update")
    mask = dictionary.encode(sample_update.attributes)
    benchmark(lambda: partitioner.update(sample_update.entity_id, mask))

    # stability: efficiency stays within a band of the warm-up value
    assert final.efficiency is not None
    assert final.efficiency > 0.85 * efficiency_after_warmup
    # churn updates do get relocated; drift updates mostly stay
    assert moved_updates > 0
    assert in_place_updates > 0
