"""Cross-validation of TPC-H queries against naive reference versions.

For a selection of structurally diverse queries, this module implements
an independent, deliberately brute-force version straight from the SQL
text and compares results with the operator-pipeline implementations in
:mod:`repro.workloads.tpch.queries`.
"""

import math

import pytest

from repro.workloads.tpch.dbgen import generate_tpch
from repro.workloads.tpch.queries import run_query, sql_like


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale_factor=0.002, seed=11)


def close(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)
    return a == b


class TestQ3Reference:
    def test_matches_naive(self, data):
        customers = {
            c["c_custkey"]
            for c in data.table("customer")
            if c["c_mktsegment"] == "BUILDING"
        }
        orders = {
            o["o_orderkey"]: o
            for o in data.table("orders")
            if o["o_orderdate"] < "1995-03-15" and o["o_custkey"] in customers
        }
        revenue: dict[tuple, float] = {}
        for line in data.table("lineitem"):
            order = orders.get(line["l_orderkey"])
            if order is None or line["l_shipdate"] <= "1995-03-15":
                continue
            key = (
                line["l_orderkey"], order["o_orderdate"], order["o_shippriority"]
            )
            revenue[key] = revenue.get(key, 0.0) + line["l_extendedprice"] * (
                1 - line["l_discount"]
            )
        expected = sorted(
            revenue.items(), key=lambda item: (-item[1], item[0][1])
        )[:10]
        actual = run_query(3, data)
        assert len(actual) == len(expected)
        for row, ((orderkey, orderdate, priority), rev) in zip(actual, expected):
            assert row["l_orderkey"] == orderkey
            assert row["o_orderdate"] == orderdate
            assert close(row["revenue"], rev)


class TestQ10Reference:
    def test_matches_naive(self, data):
        orders = {
            o["o_orderkey"]: o["o_custkey"]
            for o in data.table("orders")
            if "1993-10-01" <= o["o_orderdate"] < "1994-01-01"
        }
        revenue: dict[int, float] = {}
        for line in data.table("lineitem"):
            if line["l_returnflag"] != "R":
                continue
            custkey = orders.get(line["l_orderkey"])
            if custkey is None:
                continue
            revenue[custkey] = revenue.get(custkey, 0.0) + line[
                "l_extendedprice"
            ] * (1 - line["l_discount"])
        expected = sorted(revenue.items(), key=lambda item: -item[1])[:20]
        actual = run_query(10, data)
        assert [row["c_custkey"] for row in actual] == [
            custkey for custkey, _rev in expected
        ]
        for row, (_custkey, rev) in zip(actual, expected):
            assert close(row["revenue"], rev)


class TestQ12Reference:
    def test_matches_naive(self, data):
        priorities = {}
        for o in data.table("orders"):
            priorities[o["o_orderkey"]] = o["o_orderpriority"]
        expected = {"MAIL": [0, 0], "SHIP": [0, 0]}
        for line in data.table("lineitem"):
            if line["l_shipmode"] not in ("MAIL", "SHIP"):
                continue
            if not (
                line["l_shipdate"] < line["l_commitdate"] < line["l_receiptdate"]
            ):
                continue
            if not "1994-01-01" <= line["l_receiptdate"] < "1995-01-01":
                continue
            is_high = priorities[line["l_orderkey"]] in ("1-URGENT", "2-HIGH")
            expected[line["l_shipmode"]][0 if is_high else 1] += 1
        actual = {row["l_shipmode"]: row for row in run_query(12, data)}
        for mode, (high, low) in expected.items():
            if high or low:
                assert actual[mode]["high_line_count"] == high
                assert actual[mode]["low_line_count"] == low


class TestQ14Reference:
    def test_matches_naive(self, data):
        types = {p["p_partkey"]: p["p_type"] for p in data.table("part")}
        promo = 0.0
        total = 0.0
        for line in data.table("lineitem"):
            if not "1995-09-01" <= line["l_shipdate"] < "1995-10-01":
                continue
            amount = line["l_extendedprice"] * (1 - line["l_discount"])
            total += amount
            if types[line["l_partkey"]].startswith("PROMO"):
                promo += amount
        expected = 100.0 * promo / total if total else 0.0
        actual = run_query(14, data)[0]["promo_revenue"]
        assert close(actual, expected)


class TestQ16Reference:
    def test_matches_naive(self, data):
        sizes = {49, 14, 23, 45, 19, 3, 36, 9}
        qualifying_parts = {
            p["p_partkey"]: (p["p_brand"], p["p_type"], p["p_size"])
            for p in data.table("part")
            if p["p_brand"] != "Brand#45"
            and not p["p_type"].startswith("MEDIUM POLISHED")
            and p["p_size"] in sizes
        }
        complainers = {
            s["s_suppkey"]
            for s in data.table("supplier")
            if sql_like(s["s_comment"], "%Customer%Complaints%")
        }
        suppliers: dict[tuple, set[int]] = {}
        for ps in data.table("partsupp"):
            meta = qualifying_parts.get(ps["ps_partkey"])
            if meta is None or ps["ps_suppkey"] in complainers:
                continue
            suppliers.setdefault(meta, set()).add(ps["ps_suppkey"])
        actual = {
            (row["p_brand"], row["p_type"], row["p_size"]): row["supplier_cnt"]
            for row in run_query(16, data)
        }
        assert actual == {meta: len(s) for meta, s in suppliers.items()}


class TestQ21Reference:
    def test_matches_naive(self, data):
        saudi = {
            s["s_suppkey"]: s["s_name"]
            for s in data.table("supplier")
            if s["s_nationkey"] == 20  # SAUDI ARABIA in the schema's order
        }
        nation_names = {n["n_name"]: n["n_nationkey"] for n in data.table("nation")}
        assert nation_names["SAUDI ARABIA"] == 20
        failed = {
            o["o_orderkey"]
            for o in data.table("orders")
            if o["o_orderstatus"] == "F"
        }
        by_order: dict[int, set[int]] = {}
        late_by_order: dict[int, set[int]] = {}
        for line in data.table("lineitem"):
            if line["l_orderkey"] not in failed:
                continue
            by_order.setdefault(line["l_orderkey"], set()).add(line["l_suppkey"])
            if line["l_receiptdate"] > line["l_commitdate"]:
                late_by_order.setdefault(line["l_orderkey"], set()).add(
                    line["l_suppkey"]
                )
        expected: dict[str, int] = {}
        for orderkey, late in late_by_order.items():
            if len(late) == 1 and len(by_order[orderkey]) >= 2:
                (suppkey,) = late
                name = saudi.get(suppkey)
                if name:
                    expected[name] = expected.get(name, 0) + 1
        actual = {row["s_name"]: row["numwait"] for row in run_query(21, data)}
        assert actual == expected


class TestQ5Reference:
    def test_matches_naive(self, data):
        regions = {r["r_regionkey"] for r in data.table("region")
                   if r["r_name"] == "ASIA"}
        nations = {
            n["n_nationkey"]: n["n_name"]
            for n in data.table("nation")
            if n["n_regionkey"] in regions
        }
        customers = {
            c["c_custkey"]: c["c_nationkey"]
            for c in data.table("customer")
            if c["c_nationkey"] in nations
        }
        orders = {
            o["o_orderkey"]: customers[o["o_custkey"]]
            for o in data.table("orders")
            if "1994-01-01" <= o["o_orderdate"] < "1995-01-01"
            and o["o_custkey"] in customers
        }
        suppliers = {
            s["s_suppkey"]: s["s_nationkey"] for s in data.table("supplier")
        }
        revenue: dict[str, float] = {}
        for line in data.table("lineitem"):
            cust_nation = orders.get(line["l_orderkey"])
            if cust_nation is None:
                continue
            if suppliers.get(line["l_suppkey"]) != cust_nation:
                continue
            name = nations[cust_nation]
            revenue[name] = revenue.get(name, 0.0) + line["l_extendedprice"] * (
                1 - line["l_discount"]
            )
        actual = {row["n_name"]: row["revenue"] for row in run_query(5, data)}
        assert set(actual) == set(revenue)
        for name, value in revenue.items():
            assert close(actual[name], value)


class TestQ9Reference:
    def test_matches_naive(self, data):
        green_parts = {
            p["p_partkey"] for p in data.table("part")
            if "green" in p["p_name"]
        }
        nations = {n["n_nationkey"]: n["n_name"] for n in data.table("nation")}
        suppliers = {
            s["s_suppkey"]: nations[s["s_nationkey"]]
            for s in data.table("supplier")
        }
        costs = {
            (ps["ps_partkey"], ps["ps_suppkey"]): ps["ps_supplycost"]
            for ps in data.table("partsupp")
        }
        years = {o["o_orderkey"]: o["o_orderdate"][:4] for o in data.table("orders")}
        profit: dict[tuple, float] = {}
        for line in data.table("lineitem"):
            if line["l_partkey"] not in green_parts:
                continue
            key = (suppliers[line["l_suppkey"]], years[line["l_orderkey"]])
            amount = line["l_extendedprice"] * (1 - line["l_discount"]) - costs[
                (line["l_partkey"], line["l_suppkey"])
            ] * line["l_quantity"]
            profit[key] = profit.get(key, 0.0) + amount
        actual = {
            (row["nation"], row["o_year"]): row["sum_profit"]
            for row in run_query(9, data)
        }
        assert set(actual) == set(profit)
        for key, value in profit.items():
            assert close(actual[key], value)

    def test_ordering(self, data):
        """Q9 orders by nation ascending, then year descending."""
        rows = run_query(9, data)
        keys = [(row["nation"], row["o_year"]) for row in rows]
        assert [nation for nation, _year in keys] == sorted(
            nation for nation, _year in keys
        )
        by_nation: dict[str, list[str]] = {}
        for nation, year in keys:
            by_nation.setdefault(nation, []).append(year)
        for years_list in by_nation.values():
            assert years_list == sorted(years_list, reverse=True)
