"""Tests of the workload trace store and the shift metric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adapt.trace import WorkloadTraceStore, profile_shift

profiles = st.dictionaries(
    st.integers(min_value=1, max_value=1 << 12),
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    max_size=12,
)


class TestProfileShift:
    def test_identical_profiles_have_zero_shift(self):
        profile = {0b01: 3.0, 0b10: 1.0}
        assert profile_shift(profile, profile) == 0.0

    def test_scaling_does_not_count_as_shift(self):
        """TV distance compares normalized mixes, not raw volumes."""
        reference = {0b01: 3.0, 0b10: 1.0}
        doubled = {mask: 2.0 * w for mask, w in reference.items()}
        assert profile_shift(reference, doubled) == pytest.approx(0.0)

    def test_disjoint_profiles_are_maximally_shifted(self):
        assert profile_shift({0b01: 5.0}, {0b10: 5.0}) == 1.0

    def test_empty_sides(self):
        assert profile_shift({}, {}) == 0.0
        assert profile_shift({}, {0b1: 1.0}) == 1.0
        assert profile_shift({0b1: 1.0}, {}) == 1.0

    def test_half_replaced_mix_shifts_by_half(self):
        reference = {0b01: 1.0, 0b10: 1.0}
        current = {0b01: 1.0, 0b100: 1.0}
        assert profile_shift(reference, current) == pytest.approx(0.5)

    @given(profiles, profiles)
    def test_bounded_and_symmetric(self, reference, current):
        shift = profile_shift(reference, current)
        assert 0.0 <= shift <= 1.0
        assert shift == pytest.approx(profile_shift(current, reference))

    @given(profiles)
    def test_self_shift_is_zero(self, profile):
        assert profile_shift(profile, profile) == pytest.approx(0.0)


class TestTraceStore:
    def test_observe_query_accumulates_weights_and_heat(self):
        store = WorkloadTraceStore()
        store.observe_query(0b01, (1, 2), version=3,
                            exemplar=(("a",), "any"))
        store.observe_query(0b01, (1,), version=5)
        assert store.profile() == {0b01: 2.0}
        assert store.queries_observed == 2
        heat = store.heat()
        assert heat[1].reads == 2
        assert heat[1].last_version == 5
        assert heat[2].reads == 1
        assert store.exemplars() == {0b01: (("a",), "any")}

    def test_first_exemplar_per_mask_is_kept(self):
        store = WorkloadTraceStore()
        store.observe_query(0b01, exemplar=(("a",), "any"))
        store.observe_query(0b01, exemplar=(("b",), "all"))
        assert store.exemplars() == {0b01: (("a",), "any")}

    def test_observe_write_heats_the_partition(self):
        store = WorkloadTraceStore()
        store.observe_write(7, version=2)
        store.observe_write(7, version=9)
        heat = store.heat()
        assert heat[7].writes == 2
        assert heat[7].last_version == 9
        assert store.writes_observed == 2

    def test_decay_halves_weights_and_drops_dust(self):
        store = WorkloadTraceStore(decay=0.5, decay_every=8)
        store.observe_query(0b01)  # will decay to 0.5 ** k and vanish
        for _ in range(7):
            store.observe_query(0b10)
        # decay fired at the 8th observation: both weights halved
        profile = store.profile()
        assert profile[0b01] == pytest.approx(0.5)
        assert profile[0b10] == pytest.approx(3.5)
        for _ in range(9 * 8):
            store.observe_query(0b10)
        assert 0b01 not in store.profile()  # decayed below the floor

    def test_shape_bound_evicts_the_lightest(self):
        store = WorkloadTraceStore(max_query_shapes=2)
        for _ in range(5):
            store.observe_query(0b001, exemplar=(("a",), "any"))
        for _ in range(3):
            store.observe_query(0b010, exemplar=(("b",), "any"))
        store.observe_query(0b100, exemplar=(("c",), "any"))
        profile = store.profile()
        assert set(profile) == {0b001, 0b010}
        assert store.shapes_evicted == 1
        assert 0b100 not in store.exemplars()

    def test_clear_heat_keeps_the_profile(self):
        store = WorkloadTraceStore()
        store.observe_query(0b01, (1, 2))
        store.clear_heat()
        assert store.heat() == {}
        assert store.profile() == {0b01: 1.0}

    def test_heat_as_dict_is_wire_shaped(self):
        store = WorkloadTraceStore()
        store.observe_query(0b01, (3,), version=4)
        store.observe_write(3, version=6)
        assert store.heat_as_dict() == {
            "3": {"reads": 1, "writes": 1, "last_version": 6}
        }

    def test_shift_from_reference(self):
        store = WorkloadTraceStore()
        for _ in range(4):
            store.observe_query(0b01)
        reference = store.profile()
        assert store.shift_from(reference) == pytest.approx(0.0)
        for _ in range(4):
            store.observe_query(0b10)
        assert store.shift_from(reference) == pytest.approx(0.5)

    def test_status_counts(self):
        store = WorkloadTraceStore()
        store.observe_query(0b01, (1,))
        store.observe_write(1)
        status = store.status()
        assert status["queries_observed"] == 1
        assert status["writes_observed"] == 1
        assert status["distinct_shapes"] == 1
        assert status["hot_partitions"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadTraceStore(decay=0.0)
        with pytest.raises(ValueError):
            WorkloadTraceStore(max_query_shapes=0)
