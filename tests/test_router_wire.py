"""Wire robustness of the routing tier, on both of its faces.

Client-facing: malformed frames, oversized frames, mid-frame
disconnects, pipelining — the router answers with typed errors and the
accept loop survives, exactly like the serving node it fronts.

Upstream-facing: a node that answers garbage, truncates mid-exchange,
streams an oversized response, or hangs must surface as the *same*
typed unavailability a dead node does — bounded by the upstream
timeout, never as a crash or a hung fan-out.
"""

import json
import socket
import socketserver
import threading

import pytest

from repro.router import (
    CinderellaRouter,
    ClusterHarness,
    NodeAddress,
    PlacementMap,
    RouterConfig,
    RouterThread,
)
from repro.server.protocol import MAX_LINE_BYTES


@pytest.fixture()
def cluster(tmp_path):
    with ClusterHarness(tmp_path, n_nodes=2, replication_factor=2) as harness:
        yield harness


def _exchange_lines(address, payload, responses=1, timeout=10):
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(payload)
        reader = sock.makefile("rb")
        return [json.loads(reader.readline()) for _ in range(responses)]


class TestClientFacingFrames:
    def test_garbage_line_answers_bad_request(self, cluster):
        (document,) = _exchange_lines(
            cluster.router_address, b"}}not json{{\n"
        )
        assert document["ok"] is False
        assert document["status"] == "bad_request"

    def test_unknown_op_answers_bad_request(self, cluster):
        (document,) = _exchange_lines(
            cluster.router_address, b'{"op": "frobnicate", "id": 9}\n'
        )
        assert document["status"] == "bad_request"

    def test_oversized_frame_is_refused_with_typed_error(self, cluster):
        frame = (
            b'{"op": "insert", "id": 1, "attributes": {"a": "'
            + b"x" * MAX_LINE_BYTES
            + b'"}}\n'
        )
        (document,) = _exchange_lines(cluster.router_address, frame)
        assert document["status"] == "bad_request"
        assert document["error"]["code"] == "frame_too_long"

    def test_blank_lines_ignored_and_pipelining_preserved(self, cluster):
        documents = _exchange_lines(
            cluster.router_address,
            b"\n"
            b'{"op": "ping", "id": 1}\n'
            b'{"op": "insert", "id": 2, "attributes": {"a": 1}}\n'
            b"\n"
            b'{"op": "ping", "id": 3}\n',
            responses=3,
        )
        assert [d["id"] for d in documents] == [1, 2, 3]
        assert documents[1]["status"] == "applied"

    def test_mid_frame_disconnect_does_not_wedge_the_router(self, cluster):
        with socket.create_connection(cluster.router_address, timeout=10) as s:
            s.sendall(b'{"op": "insert", "id": 1, "attr')  # no newline
        # the half-frame connection is gone; fresh clients still served
        with cluster.client() as client:
            assert client.ping().ok
            assert client.insert({"a": 1}).status == "applied"

    def test_routing_internals_never_leak_as_tracebacks(self, cluster):
        # a shard_filter from a *client* is router-owned and stripped,
        # not an error; the reply is a normal scatter result
        (document,) = _exchange_lines(
            cluster.router_address,
            b'{"op": "query", "id": 4, "attributes": ["a"],'
            b' "shard_filter": {"n_shards": 1, "shards": [0]}}\n',
        )
        assert document["ok"] is True
        assert document["status"] == "ok"


class _MisbehavingNode(socketserver.ThreadingTCPServer):
    """A TCP endpoint that accepts connections and then misbehaves."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, behavior: str) -> None:
        self.behavior = behavior
        super().__init__(("127.0.0.1", 0), _MisbehaviorHandler)


class _MisbehaviorHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        behavior = self.server.behavior
        try:
            self.request.recv(65536)  # read the router's frame
            if behavior == "garbage":
                self.request.sendall(b"ceci n'est pas une reponse\n")
            elif behavior == "oversized":
                self.request.sendall(b"x" * (MAX_LINE_BYTES + 64) + b"\n")
            elif behavior == "truncate":
                self.request.sendall(b'{"id": 1, "status"')
                self.request.close()
            elif behavior == "hang":
                threading.Event().wait(5.0)
        except OSError:
            pass


@pytest.fixture()
def misbehaving_router(request):
    """A router whose only upstream misbehaves per the fixture param."""
    node = _MisbehavingNode(request.param)
    thread = threading.Thread(target=node.serve_forever, daemon=True)
    thread.start()
    placement = PlacementMap([
        NodeAddress(name="evil", host="127.0.0.1",
                    port=node.server_address[1]),
    ])
    router = CinderellaRouter(placement, config=RouterConfig(
        upstream_timeout_s=0.25, upstream_attempts=2,
        retry_base_s=0.005, retry_max_s=0.01,
    ))
    with RouterThread(router) as running:
        yield running
    node.shutdown()
    node.server_close()


@pytest.mark.parametrize(
    "misbehaving_router", ["garbage", "oversized", "truncate", "hang"],
    indirect=True,
)
class TestUpstreamMisbehavior:
    def test_write_surfaces_typed_unavailability(self, misbehaving_router):
        (document,) = _exchange_lines(
            misbehaving_router.address,
            b'{"op": "insert", "id": 1, "attributes": {"a": 1}, "eid": 3}\n',
            timeout=30,
        )
        assert document["status"] == "node_unavailable"
        assert document["error"]["code"] == "no_reachable_replica"

    def test_scatter_never_hangs_and_types_the_failure(
        self, misbehaving_router
    ):
        (document,) = _exchange_lines(
            misbehaving_router.address,
            b'{"op": "query", "id": 2, "attributes": ["a"]}\n',
            timeout=30,
        )
        assert document["status"] == "node_unavailable"
        assert document["shards_answered"] == 0
        # the router itself is alive and answers in-process ops
        (pong,) = _exchange_lines(
            misbehaving_router.address, b'{"op": "ping", "id": 3}\n'
        )
        assert pong["ok"] is True


class TestPartialScatterOnTheWire:
    def test_half_dead_placement_degrades_instead_of_failing(self, tmp_path):
        # one real node plus one port nobody listens on, rf=1: half the
        # shards answer, half are explicitly unreachable
        with ClusterHarness(tmp_path, n_nodes=1, replication_factor=1) as h:
            real = h.addresses["node0"]
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                dead_port = probe.getsockname()[1]
            placement = PlacementMap(
                [real, NodeAddress("ghost", "127.0.0.1", dead_port)],
                n_shards=4,
            )
            router = CinderellaRouter(placement, config=RouterConfig(
                upstream_timeout_s=0.25, upstream_attempts=1,
            ))
            with RouterThread(router) as running:
                documents = _exchange_lines(
                    running.address,
                    b'{"op": "insert", "id": 1, "attributes": {"a": 1},'
                    b' "eid": 0}\n'
                    b'{"op": "insert", "id": 2, "attributes": {"a": 2},'
                    b' "eid": 2}\n',
                    responses=2,
                    timeout=30,
                )
                assert all(d["status"] == "applied" for d in documents)
                (query,) = _exchange_lines(
                    running.address,
                    b'{"op": "query", "id": 3, "attributes": ["a"]}\n',
                    timeout=30,
                )
                assert query["status"] == "degraded"
                assert query["error"]["code"] == "partial_result"
                assert query["row_count"] == 2
                assert query["unreachable_shards"] == [1, 3]
