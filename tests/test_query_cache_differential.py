"""Differential battery: fast query path vs. the naive full-scan oracle.

The fast path (inverted-index pruning + partition-granular result cache)
and the naive executor (scan every partition, no pruning, no cache) must
return **bit-identical** results at every point of a randomized
DBpedia-style modification workload — inserts, churn updates, deletes,
the splits they trigger, plus explicit merge passes and an offline
reorganization.  The suite runs the same trace under all four
index × cache configurations (ISSUE 3 acceptance: differential suite
passes with cache and index both on and off).
"""

import pytest

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache, verify_cache_coherence
from repro.query.query import AttributeQuery
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.modifications import generate_trace

from tests.conftest import WORKLOAD_SEED

N_ENTITIES = 400
OPERATIONS = 220
WARMUP = 120
CHECK_EVERY = 20

#: mixed shapes: high/low selectivity, pairs, conjunctions, and queries
#: referencing attributes no DBpedia person ever instantiates
QUERIES = (
    AttributeQuery(("name",)),
    AttributeQuery(("deathPlace",)),
    AttributeQuery(("occupation", "team")),
    AttributeQuery(("birthDate", "birthPlace", "almaMater")),
    AttributeQuery(("birthDate", "deathDate"), mode="all"),
    AttributeQuery(("name", "no_such_attribute")),
    AttributeQuery(("no_such_attribute",)),          # empty-synopsis query
    AttributeQuery(("name", "no_such_attribute"), mode="all"),
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dbpedia_persons(n_entities=N_ENTITIES, seed=WORKLOAD_SEED)


@pytest.fixture(scope="module")
def trace(dataset):
    return generate_trace(
        dataset,
        operations=OPERATIONS,
        insert_share=0.45,
        update_share=0.3,
        churn_update_share=0.4,
        warmup=WARMUP,
        seed=WORKLOAD_SEED,
    )


def check_differential(table, live_eids):
    """Fast path vs. oracle: identical rows, coherent cache, sane stats."""
    for query in QUERIES:
        fast = table.execute(query)
        oracle = table.execute_naive(query)
        assert fast.rows == oracle.rows, (
            f"fast path diverged from full scan for {query.sql()}"
        )
        assert fast.stats.rows_returned == oracle.stats.rows_returned
        # pruning must stay sound: the fast path may not touch more
        # partitions than exist, and prune counts must add up
        assert (fast.stats.partitions_scanned + fast.stats.cache_hits
                + fast.stats.partitions_pruned) == fast.stats.partitions_total
    if table.result_cache is not None:
        assert verify_cache_coherence(table.result_cache, table) == []
    assert table.catalog.entity_count == len(live_eids)


@pytest.mark.parametrize("use_index", [False, True], ids=["scan", "index"])
@pytest.mark.parametrize("use_cache", [False, True], ids=["nocache", "cache"])
def test_differential_under_mixed_workload(dataset, trace, use_index, use_cache):
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=12.0, weight=0.3, use_synopsis_index=use_index
        ),
        result_cache=QueryResultCache() if use_cache else None,
    )
    live = set()
    for index, operation in enumerate(trace):
        if operation.kind == "insert":
            table.insert(operation.attributes, entity_id=operation.entity_id)
            live.add(operation.entity_id)
        elif operation.kind == "update":
            table.update(operation.entity_id, operation.attributes)
        else:
            table.delete(operation.entity_id)
            live.discard(operation.entity_id)
        if (index + 1) % CHECK_EVERY == 0:
            check_differential(table, live)

    # the tiny partition limit must have forced splits — otherwise the
    # trace never exercised split invalidation
    assert table.partitioner.split_count > 0
    check_differential(table, live)

    # a maintenance merge pass, then the full differential again
    table.merge_small_partitions(min_fill=0.5)
    assert table.check_consistency() == []
    check_differential(table, live)

    # an offline reorganization swaps in a rebuilt catalog (pids reused,
    # versions re-stamped); the fast path must still match the oracle
    table.reorganize(order="size")
    assert table.check_consistency() == []
    check_differential(table, live)


def test_differential_against_independent_replica(dataset, trace):
    """The cached fast-path table must also agree with a *separate*
    uncached replica replaying the same trace — catching any corruption
    the shared-table differential cannot see."""
    fast = CinderellaTable(
        CinderellaConfig(
            max_partition_size=12.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(),
    )
    replica = CinderellaTable(
        CinderellaConfig(max_partition_size=12.0, weight=0.3)
    )
    for index, operation in enumerate(trace):
        for table in (fast, replica):
            if operation.kind == "insert":
                table.insert(operation.attributes, entity_id=operation.entity_id)
            elif operation.kind == "update":
                table.update(operation.entity_id, operation.attributes)
            else:
                table.delete(operation.entity_id)
        if (index + 1) % CHECK_EVERY == 0:
            for query in QUERIES:
                # partitionings are identical (same algorithm, same trace),
                # so even row order matches between the two tables
                assert fast.execute(query).rows == replica.execute(query).rows
