"""Soak: concurrent mixed traffic with splits and merges firing.

The acceptance scenario of the serving layer: at least eight concurrent
client connections issue interleaved inserts, updates, deletes, queries,
and SQL while the table splits under growth and the background
maintenance task merges behind the deletes.  At the end the catalog must
pass its full invariant check, the result cache must be provably
coherent (every servable entry bit-identical to a fresh scan), and the
entity count must equal exactly what the applied responses promised —
admission control may *shed* work, but nothing may be half-applied.

A short soak runs in the default suite; the heavier one is ``slow``
(the dedicated CI soak job runs it).
"""

import threading

import pytest

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache, verify_cache_coherence
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.client import ServerClient
from repro.table.partitioned import CinderellaTable

from tests.conftest import WORKLOAD_SEED


class Worker(threading.Thread):
    """One client connection driving a deterministic mixed op stream."""

    def __init__(self, index: int, address, ops: int):
        super().__init__(name=f"soak-client-{index}")
        self.index = index
        self.address = address
        self.ops = ops
        #: eids this worker successfully inserted and has not deleted
        self.live: list[int] = []
        self.applied = 0
        self.shed = 0
        self.rows_seen = 0
        self.failures: list[str] = []

    def run(self) -> None:
        import random

        rng = random.Random(WORKLOAD_SEED + self.index)
        base = self.index * 1_000_000  # disjoint eid spaces per worker
        next_eid = base
        try:
            with ServerClient(*self.address, check=False) as client:
                for step in range(self.ops):
                    choice = rng.random()
                    if choice < 0.55 or not self.live:
                        # few distinct masks ⇒ partitions fill past B ⇒ splits
                        attributes = {
                            "common": self.index,
                            f"attr{rng.randrange(4)}": step,
                        }
                        response = client.retrying(
                            "insert", attempts=6, base_delay_s=0.002,
                            attributes=attributes, eid=next_eid,
                        )
                        if response.status == "applied":
                            self.live.append(next_eid)
                            self.applied += 1
                        elif response.retryable:
                            self.shed += 1
                        else:
                            self.failures.append(
                                f"insert -> {response.status}: {response.error}"
                            )
                        next_eid += 1
                    elif choice < 0.70:
                        eid = self.live[rng.randrange(len(self.live))]
                        response = client.update(
                            eid, {"renamed": step, f"attr{step % 4}": step}
                        )
                        if response.status == "applied":
                            self.applied += 1
                        elif not response.retryable:
                            self.failures.append(
                                f"update {eid} -> {response.status}"
                            )
                    elif choice < 0.85:
                        eid = self.live.pop(rng.randrange(len(self.live)))
                        response = client.delete(eid)
                        if response.status == "applied":
                            self.applied += 1
                        else:
                            self.live.append(eid)
                            if not response.retryable:
                                self.failures.append(
                                    f"delete {eid} -> {response.status}"
                                )
                    elif choice < 0.97:
                        rows = client.query(
                            [f"attr{rng.randrange(4)}", "renamed"],
                            mode="any",
                        )
                        self.rows_seen += len(rows)
                    else:
                        response = client.sql(
                            f"SELECT common, attr{rng.randrange(4)} "
                            f"FROM universalTable "
                            f"WHERE common = {self.index}"
                        )
                        if response.ok:
                            self.rows_seen += response.get("row_count", 0)
        except Exception as err:  # surfaced by the main thread
            self.failures.append(f"{type(err).__name__}: {err}")


def _plant_merge_fodder(client: ServerClient) -> list[int]:
    """Deterministically leave underfilled partitions for the final pass.

    The concurrent workload *usually* leaves merge fodder behind its
    deletes, but whether any survives to the final maintenance pass is a
    timing race (a mid-run tick may have merged it already), and
    asserting ``partitions_merged > 0`` on that race made the soak
    flaky.  Planting fodder after the workers finish derandomizes it:
    insert a same-mask burst that splits, delete most of it, and let the
    final pass merge the leftovers.
    """
    base = 50_000_000  # disjoint from every worker's eid space
    eids = []
    for i in range(32):
        response = client.retrying(
            "insert", attributes={"fodder": i}, eid=base + i
        )
        assert response.status == "applied", response.status
        eids.append(base + i)
    keep = set(eids[::8])  # every 8th survives: fill drops far below min
    for eid in eids:
        if eid not in keep:
            assert client.delete(eid).status == "applied"
    return sorted(keep)


def run_soak(workers: int, ops_per_worker: int) -> None:
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=12.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(thread_safe=True),
    )
    server = CinderellaServer(
        table=table,
        config=ServerConfig(
            max_pending=64,
            batch_max=16,
            batch_linger_s=0.001,
            max_parallel_reads=8,
            maintenance_interval_s=0.05,  # merges fire *during* the run
            merge_min_fill=0.6,
            reorganize_every=5,
        ),
    )
    with ServerThread(server=server) as harness:
        pool = [
            Worker(index, harness.address, ops_per_worker)
            for index in range(workers)
        ]
        for worker in pool:
            worker.start()
        for worker in pool:
            worker.join(timeout=180)
            assert not worker.is_alive(), f"{worker.name} hung"
        with ServerClient(*harness.address) as client:
            fodder_live = _plant_merge_fodder(client)
            client.maintain()  # one deterministic pass behind the deletes
            live_stats = client.stats()

    failures = [f for worker in pool for f in worker.failures]
    assert failures == [], failures

    # --- the acceptance checks: catalog invariants + cache coherence ---
    assert table.check_consistency() == []
    assert verify_cache_coherence(table.result_cache, table) == []

    # exactly the applied writes survive: shed ones left no trace
    expected_live = sorted(
        [eid for worker in pool for eid in worker.live] + fodder_live
    )
    actual_live = sorted(
        eid for partition in table.catalog for eid in partition.entity_ids()
    )
    assert actual_live == expected_live

    # the workload genuinely exercised the concurrent machinery
    counters = server.counters
    assert table.partitioner.split_count > 0, "no splits fired"
    assert counters.maintenance_passes > 0, "maintenance never ran"
    assert counters.partitions_merged > 0, "no merges fired"
    assert counters.queries_served > 0
    assert counters.batches_flushed > 0
    # reads are lock-free now: they serve from published MVCC snapshots
    assert live_stats["counters"]["snapshot_reads"] > 0
    assert live_stats["snapshots"]["published"] > 1
    assert live_stats["lock"]["read_acquisitions"] == 0
    assert live_stats["lock"]["write_acquisitions"] > 0
    # 32 fodder inserts plus the deletes that hollowed them out
    fodder_applied = 32 + (32 - len(fodder_live))
    total_applied = sum(worker.applied for worker in pool) + fodder_applied
    assert counters.writes_applied == total_applied


class TestServerSoak:
    def test_short_soak_eight_connections(self):
        run_soak(workers=8, ops_per_worker=60)

    @pytest.mark.slow
    def test_long_soak_twelve_connections(self):
        run_soak(workers=12, ops_per_worker=300)
