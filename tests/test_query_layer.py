"""Tests for attribute queries, pruning, rewriting, and the cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.dictionary import AttributeDictionary
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.cost.model import CostModel
from repro.query.executor import ExecutionStats
from repro.query.pruning import is_prunable, split_by_pruning
from repro.query.query import AttributeQuery
from repro.query.rewrite import rewrite

masks = st.integers(min_value=0, max_value=2**16 - 1)


class TestAttributeQuery:
    def test_any_mode_matches_on_single_attribute(self):
        q = AttributeQuery(("a", "b"))
        assert q.matches({"a": 1})
        assert q.matches({"b": None})  # instantiated-with-NULL still counts
        assert not q.matches({"c": 1})

    def test_all_mode_requires_every_attribute(self):
        q = AttributeQuery(("a", "b"), mode="all")
        assert q.matches({"a": 1, "b": 2, "c": 3})
        assert not q.matches({"a": 1})

    def test_projection(self):
        q = AttributeQuery(("a", "b"))
        assert q.project({"a": 1, "c": 9}) == {"a": 1, "b": None}

    def test_sql_rendering(self):
        q = AttributeQuery(("a", "b"))
        assert q.sql() == (
            "SELECT a, b FROM universalTable "
            "WHERE a IS NOT NULL OR b IS NOT NULL"
        )
        q_all = AttributeQuery(("a",), mode="all")
        assert "AND" not in q_all.sql() and "a IS NOT NULL" in q_all.sql()

    def test_synopsis_mask_ignores_unknown(self):
        d = AttributeDictionary(["a"])
        assert AttributeQuery(("a", "zz")).synopsis_mask(d) == 0b1

    def test_matches_mask(self):
        d = AttributeDictionary(["a", "b"])
        q_any = AttributeQuery(("a",))
        assert q_any.matches_mask(0b01, d)
        assert not q_any.matches_mask(0b10, d)
        q_all = AttributeQuery(("a", "b"), mode="all")
        assert q_all.matches_mask(0b11, d)
        assert not q_all.matches_mask(0b01, d)

    def test_all_mode_with_unknown_attribute_matches_nothing(self):
        d = AttributeDictionary(["a"])
        q = AttributeQuery(("a", "never"), mode="all")
        assert not q.matches_mask(0b1, d)

    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeQuery(())
        with pytest.raises(ValueError):
            AttributeQuery(("a", "a"))
        with pytest.raises(ValueError):
            AttributeQuery(("a",), mode="some")


class TestPruning:
    def test_any_mode_prunes_on_zero_overlap(self):
        d = AttributeDictionary(["a", "b", "c"])
        q = AttributeQuery(("a",))
        assert is_prunable(0b110, q, d)  # partition has only b, c
        assert not is_prunable(0b001, q, d)

    def test_all_mode_prunes_on_any_missing_attribute(self):
        d = AttributeDictionary(["a", "b", "c"])
        q = AttributeQuery(("a", "b"), mode="all")
        assert is_prunable(0b001, q, d)  # b missing from the synopsis
        assert not is_prunable(0b011, q, d)

    def test_all_mode_with_unknown_attribute_prunes_everything(self):
        d = AttributeDictionary(["a"])
        q = AttributeQuery(("a", "ghost"), mode="all")
        assert is_prunable(0b1, q, d)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(masks, min_size=1, max_size=40), masks.filter(bool))
    def test_pruning_is_sound(self, entity_masks, query_mask):
        """No pruned partition may contain a relevant entity."""
        d = AttributeDictionary(f"a{i}" for i in range(16))
        query = AttributeQuery(d.decode(query_mask) or ("a0",))
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=6, weight=0.4))
        for eid, mask in enumerate(entity_masks):
            p.insert(eid, mask)
        _surviving, pruned = split_by_pruning(p.catalog, query, d)
        qmask = query.synopsis_mask(d)
        for partition in pruned:
            for _eid, mask, _size in partition.members():
                assert mask & qmask == 0


class TestRewrite:
    def test_union_all_plan(self):
        d = AttributeDictionary(["a", "b", "c", "d"])
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4))
        p.insert(1, d.encode(["a", "b"]))
        p.insert(2, d.encode(["c", "d"]))
        plan = rewrite(AttributeQuery(("a",)), p.catalog, d)
        assert len(plan.branch_pids) == 1
        assert len(plan.pruned_pids) == 1
        assert plan.partitions_total == 2
        assert plan.pruning_ratio == 0.5
        assert "UNION ALL" not in plan.describe()  # single branch
        assert "pruned" in plan.describe()

    def test_fully_pruned_plan(self):
        d = AttributeDictionary(["a", "z"])
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4))
        p.insert(1, d.encode(["a"]))
        plan = rewrite(AttributeQuery(("z",)), p.catalog, d)
        assert plan.branch_pids == ()
        assert "empty result" in plan.describe()

    def test_multi_branch_plan_renders_union(self):
        d = AttributeDictionary(["a", "b"])
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=1, weight=0.4))
        p.insert(1, d.encode(["a"]))
        p.insert(2, d.encode(["a"]))
        plan = rewrite(AttributeQuery(("a",)), p.catalog, d)
        assert len(plan.branch_pids) == 2
        assert "UNION ALL" in plan.describe()


class TestEmptySynopsisQuery:
    """Regression (ISSUE 3 satellite): a query whose attributes are all
    unknown to the dictionary has an empty synopsis (``q = 0``) and must
    resolve to *zero* candidate partitions — in both modes and under both
    resolution strategies.  This is deliberately NOT the semantics of
    ``SynopsisIndex.candidate_pids(0)``: that call answers the *insert*
    question ("where could an attribute-less entity live?") and returns
    the partitions holding empty-synopsis entities."""

    def _partitioner(self):
        d = AttributeDictionary(["a", "b"])
        p = CinderellaPartitioner(
            CinderellaConfig(
                max_partition_size=10, weight=0.4, use_synopsis_index=True
            )
        )
        p.insert(1, d.encode(["a"]))
        p.insert(2, 0)  # an attribute-less entity
        return d, p

    @pytest.mark.parametrize("mode", ["any", "all"])
    @pytest.mark.parametrize("use_index", [False, True])
    def test_rewrite_yields_no_branches(self, mode, use_index):
        d, p = self._partitioner()
        query = AttributeQuery(("ghost", "phantom"), mode=mode)
        assert query.synopsis_mask(d) == 0
        plan = rewrite(query, p.catalog, d, use_index=use_index)
        assert plan.branch_pids == ()
        assert set(plan.pruned_pids) == set(p.catalog.partition_ids())

    @pytest.mark.parametrize("mode", ["any", "all"])
    def test_index_resolution_returns_empty_set(self, mode):
        from repro.query.pruning import candidate_pids_from_index

        d, p = self._partitioner()
        query = AttributeQuery(("ghost",), mode=mode)
        assert candidate_pids_from_index(p.catalog.index, query, d) == set()

    def test_contrast_with_index_empty_synopsis_posting(self):
        """The index's own empty-mask lookup is NOT empty here — it
        names the partition holding the attribute-less entity.  The
        query path must not confuse the two."""
        d, p = self._partitioner()
        assert p.catalog.index.candidate_pids(0) != set()

    def test_executor_returns_no_rows(self):
        from repro.table.partitioned import CinderellaTable

        table = CinderellaTable(
            CinderellaConfig(
                max_partition_size=10.0, weight=0.4, use_synopsis_index=True
            )
        )
        table.insert({"a": 1}, entity_id=1)
        result = table.execute(AttributeQuery(("ghost",)))
        assert result.rows == []
        assert result.stats.partitions_scanned == 0


class TestCostModel:
    def test_more_pages_cost_more(self):
        model = CostModel()
        small = ExecutionStats(pages_read=10, entities_read=100)
        big = ExecutionStats(pages_read=100, entities_read=100)
        assert model.query_time_ms(big) > model.query_time_ms(small)

    def test_union_overhead_only_for_branches(self):
        model = CostModel()
        plain = ExecutionStats(pages_read=10, entities_read=1000)
        unioned = ExecutionStats(pages_read=10, entities_read=1000, union_branches=5)
        assert model.query_time_ms(unioned) > model.query_time_ms(plain)

    def test_zero_stats_cost_zero(self):
        assert CostModel().query_time_ms(ExecutionStats()) == 0.0

    def test_insert_time_components(self):
        model = CostModel()
        base = model.insert_time_ms(0, 0, 0, 0)
        with_split = model.insert_time_ms(100, 500, 10_000, 2)
        assert with_split > base
        assert base == model.insert_base_ms
