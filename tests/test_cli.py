"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def _subcommands() -> list[str]:
    """Every registered subcommand, straight from the parser.

    Enumerated dynamically so a newly added command is covered by the
    help smoke test without anyone remembering to list it here.
    """
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return sorted(action.choices)
    raise AssertionError("parser has no subcommands")


class TestHelpSmoke:
    """``--help`` must exit 0 and have no side effects, for every command."""

    @pytest.mark.parametrize("argv", [[]] + [[name] for name in _subcommands()])
    def test_help_exits_zero(self, argv, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(argv + ["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "usage:" in out
        assert list(tmp_path.iterdir()) == []  # no files, no sockets, nothing

    def test_all_commands_have_handlers(self):
        from repro.cli import _HANDLERS

        assert sorted(_HANDLERS) == _subcommands()


class TestDemo:
    def test_runs_and_prints_plan(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "partitions formed" in out
        assert "SELECT aperture, resolution" in out
        assert "pruned" in out


class TestDBpedia:
    def test_prints_partition_stats(self, capsys):
        assert main(["dbpedia", "--entities", "500", "--partition-size", "50"]) == 0
        out = capsys.readouterr().out
        assert "partitions" in out
        assert "median entities/partition" in out

    def test_saves_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "table.json"
        code = main([
            "dbpedia", "--entities", "300", "--partition-size", "40",
            "--snapshot", str(snapshot),
        ])
        assert code == 0
        assert snapshot.exists()
        assert "snapshot written" in capsys.readouterr().out


class TestTpch:
    def test_reports_schema_recovery(self, capsys):
        assert main(["tpch", "--scale-factor", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "schema recovered exactly: True" in out

    def test_runs_a_query(self, capsys):
        assert main(["tpch", "--scale-factor", "0.001", "--query", "1"]) == 0
        out = capsys.readouterr().out
        assert "Q1:" in out


class TestAdvise:
    def test_prints_recommendation(self, capsys):
        assert main(["advise", "--entities", "400"]) == 0
        out = capsys.readouterr().out
        assert "recommended: B=" in out
        assert "Advisor trials" in out


class TestInspect:
    def test_inspects_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "table.json"
        main([
            "dbpedia", "--entities", "300", "--partition-size", "40",
            "--snapshot", str(snapshot),
        ])
        capsys.readouterr()
        assert main(["inspect", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "entities" in out and "partitions" in out

    def test_bad_snapshot_is_an_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["inspect", str(bogus)]) == 1
        assert "error:" in capsys.readouterr().err


class TestChaos:
    def test_reports_counters_and_stays_consistent(self, capsys):
        assert main(["chaos", "--ops", "400", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "Chaos run: 400 ops" in out
        assert "availability" in out
        assert "replication healthy : True" in out

    def test_deterministic_per_seed(self, capsys):
        main(["chaos", "--ops", "300", "--seed", "5"])
        first = capsys.readouterr().out
        main(["chaos", "--ops", "300", "--seed", "5"])
        assert capsys.readouterr().out == first

    def test_no_crashes_means_full_availability(self, capsys):
        assert main(["chaos", "--ops", "200", "--crash-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "availability        : 1.0000" in out
        assert "node crashes        : 0" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_query_range_enforced(self):
        with pytest.raises(SystemExit):
            main(["tpch", "--query", "23"])
