"""Tests for replication, failure injection, failover routing, repair."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.cluster import PlacementError, SimulatedCluster
from repro.distributed.failures import FailureEvent, FailureSchedule, NodeState
from repro.distributed.replication import replication_report
from repro.distributed.store import DistributedUniversalStore, NetworkCostModel


def make_store(nodes=4, rf=2, b=6, w=0.4, network=None):
    return DistributedUniversalStore(
        nodes,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=b, weight=w)),
        network=network,
        replication_factor=rf,
    )


class TestFailureSchedule:
    def test_random_is_deterministic(self):
        a = FailureSchedule.random(4, 500, seed=11, crash_rate=0.02)
        b = FailureSchedule.random(4, 500, seed=11, crash_rate=0.02)
        assert a.events == b.events
        assert a.crash_count > 0

    def test_different_seeds_differ(self):
        a = FailureSchedule.random(4, 500, seed=1, crash_rate=0.02)
        b = FailureSchedule.random(4, 500, seed=2, crash_rate=0.02)
        assert a.events != b.events

    def test_crashes_paired_with_recoveries(self):
        schedule = FailureSchedule.random(
            4, 2_000, seed=5, crash_rate=0.01, mean_downtime=20
        )
        down = set()
        for event in schedule:
            if event.action == "crash":
                assert event.node_id not in down
                down.add(event.node_id)
            elif event.action == "recover":
                down.discard(event.node_id)

    def test_never_crashes_last_node(self):
        schedule = FailureSchedule.random(
            2, 5_000, seed=9, crash_rate=0.5, mean_downtime=100
        )
        down = set()
        for event in schedule:
            if event.action == "crash":
                down.add(event.node_id)
                assert len(down) <= 1  # min_up=1 of 2 nodes
            elif event.action == "recover":
                down.discard(event.node_id)

    def test_events_at(self):
        event = FailureEvent(3, "crash", 0)
        schedule = FailureSchedule([event])
        assert schedule.events_at(3) == (event,)
        assert schedule.events_at(4) == ()

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(0, "explode", 1)
        with pytest.raises(ValueError):
            FailureEvent(-1, "crash", 1)
        with pytest.raises(ValueError):
            FailureEvent(0, "degrade", 1, slowdown=0.5)


class TestReplicatedPlacement:
    def test_copies_on_distinct_nodes(self):
        cluster = SimulatedCluster(4, replication_factor=3)
        cluster.place_partition(0, 5.0)
        hosts = cluster.replica_nodes(0)
        assert len(hosts) == 3
        assert len(set(hosts)) == 3

    def test_replication_capped_by_node_count(self):
        cluster = SimulatedCluster(2, replication_factor=3)
        cluster.place_partition(0, 1.0)
        assert len(cluster.replica_nodes(0)) == 2

    def test_each_copy_counts_toward_load(self):
        cluster = SimulatedCluster(3, replication_factor=2)
        cluster.place_partition(0, 4.0)
        assert sorted(cluster.loads()) == [0.0, 4.0, 4.0]
        cluster.resize_partition(0, 2.0)
        assert sorted(cluster.loads()) == [0.0, 6.0, 6.0]

    def test_drop_frees_every_copy(self):
        cluster = SimulatedCluster(3, replication_factor=2)
        cluster.place_partition(0, 4.0)
        cluster.drop_partition(0)
        assert cluster.loads() == [0.0, 0.0, 0.0]
        assert cluster.partition_count == 0

    def test_down_nodes_not_placement_targets(self):
        cluster = SimulatedCluster(3, replication_factor=1)
        cluster.crash_node(0)
        cluster.place_partition(0, 1.0)
        assert cluster.replica_nodes(0)[0] != 0

    def test_no_live_node_is_an_error(self):
        cluster = SimulatedCluster(1)
        cluster.crash_node(0)
        with pytest.raises(PlacementError):
            cluster.place_partition(0, 1.0)


class TestFailureInjection:
    def test_crash_keeps_stale_map_until_repair(self):
        cluster = SimulatedCluster(2, replication_factor=1)
        cluster.place_partition(0, 3.0)
        primary = cluster.node_of(0)
        cluster.crash_node(primary)
        # the coordinator's map is stale: the copy still appears placed
        assert cluster.replica_nodes(0) == (primary,)
        assert cluster.live_replica_nodes(0) == ()

    def test_recover_before_repair_resumes_copies(self):
        cluster = SimulatedCluster(2, replication_factor=1)
        cluster.place_partition(0, 3.0)
        primary = cluster.node_of(0)
        cluster.crash_node(primary)
        cluster.recover_node(primary)
        assert cluster.live_replica_nodes(0) == (primary,)

    def test_degrade_requires_live_node(self):
        cluster = SimulatedCluster(2)
        cluster.crash_node(0)
        with pytest.raises(PlacementError):
            cluster.degrade_node(0)

    def test_degrade_sets_slowdown_and_flakiness(self):
        cluster = SimulatedCluster(2)
        cluster.degrade_node(1, slowdown=3.0, drop_every=2)
        node = cluster.nodes[1]
        assert node.state is NodeState.DEGRADED
        assert node.slowdown == 3.0
        assert node.drop_every == 2
        cluster.recover_node(1)
        assert cluster.nodes[1].state is NodeState.UP
        assert cluster.nodes[1].slowdown == 1.0


class TestRepairPass:
    def test_restores_replication_factor(self):
        cluster = SimulatedCluster(4, replication_factor=2)
        for pid in range(6):
            cluster.place_partition(pid, 2.0)
        victim = cluster.node_of(0)
        cluster.crash_node(victim)
        assert cluster.under_replicated() != {}
        created = cluster.re_replicate()
        assert created
        assert cluster.under_replicated() == {}
        for pid in range(6):
            hosts = cluster.replica_nodes(pid)
            assert len(hosts) == 2
            assert victim not in hosts
            assert all(cluster.nodes[nid].is_up for nid in hosts)

    def test_purged_node_rejoins_empty(self):
        cluster = SimulatedCluster(3, replication_factor=2)
        cluster.place_partition(0, 2.0)
        victim = cluster.node_of(0)
        cluster.crash_node(victim)
        cluster.re_replicate()
        cluster.recover_node(victim)
        assert cluster.nodes[victim].partitions == set()
        assert cluster.nodes[victim].load == 0.0

    def test_unhosted_partition_restored(self):
        cluster = SimulatedCluster(3, replication_factor=1)
        cluster.place_partition(0, 2.0)
        cluster.crash_node(cluster.node_of(0))
        cluster.re_replicate()  # purges the only copy... and re-creates it
        assert cluster.unhosted_partitions() == frozenset()
        assert len(cluster.live_replica_nodes(0)) == 1

    def test_promotes_surviving_replica_to_primary(self):
        cluster = SimulatedCluster(3, replication_factor=2)
        cluster.place_partition(0, 2.0)
        old_primary = cluster.node_of(0)
        survivor = cluster.replica_nodes(0)[1]
        cluster.crash_node(old_primary)
        cluster.re_replicate()
        assert cluster.node_of(0) == survivor

    def test_deterministic(self):
        def run():
            cluster = SimulatedCluster(4, replication_factor=2)
            for pid in range(8):
                cluster.place_partition(pid, float(pid + 1))
            cluster.crash_node(1)
            return cluster.re_replicate()

        assert run() == run()

    def test_replication_report(self):
        cluster = SimulatedCluster(4, replication_factor=2)
        for pid in range(4):
            cluster.place_partition(pid, 1.0)
        report = replication_report(cluster)
        assert report.healthy
        assert report.min_live_copies == 2
        cluster.crash_node(0)
        report = replication_report(cluster)
        assert not report.healthy
        assert report.under_replicated != ()


class TestFailoverRouting:
    def test_failover_to_replica(self):
        store = make_store(nodes=3, rf=2, b=50)
        for eid in range(20):
            store.insert(eid, 0b11)
        pid = store.catalog.partition_ids()[0]
        primary = store.cluster.node_of(pid)
        store.crash_node(primary)
        stats = store.route_query(0b1)
        assert not stats.degraded
        assert stats.entities_returned == 20
        assert stats.retries >= 1
        assert stats.failovers >= 1
        assert store.counters.failovers >= 1

    def test_degraded_when_every_copy_down(self):
        store = make_store(nodes=3, rf=2, b=50)
        for eid in range(20):
            store.insert(eid, 0b11)
        pid = store.catalog.partition_ids()[0]
        for nid in store.cluster.replica_nodes(pid):
            store.crash_node(nid)
        stats = store.route_query(0b1)
        assert stats.degraded
        assert pid in stats.unreachable_partitions
        assert stats.entities_returned == 0.0
        assert store.counters.queries_degraded == 1

    def test_timeouts_and_backoff_cost_latency(self):
        network = NetworkCostModel(timeout_ms=10.0, retry_backoff_ms=1.0)
        store = make_store(nodes=3, rf=2, b=50, network=network)
        for eid in range(10):
            store.insert(eid, 0b11)
        healthy = store.route_query(0b1).latency_ms
        store.crash_node(store.cluster.node_of(store.catalog.partition_ids()[0]))
        failed_over = store.route_query(0b1).latency_ms
        assert failed_over >= healthy + network.timeout_ms

    def test_flaky_degraded_node_forces_retry(self):
        store = make_store(nodes=2, rf=1, b=50)
        for eid in range(10):
            store.insert(eid, 0b11)
        pid = store.catalog.partition_ids()[0]
        # drop_every=1: the node times out on every request the first
        # round and answers nothing — with rf=1 the second round also
        # fails, so the query degrades explicitly instead of lying.
        store.degrade_node(store.cluster.node_of(pid), slowdown=2.0, drop_every=1)
        stats = store.route_query(0b1)
        assert stats.retries >= 1
        assert stats.degraded

    def test_slowdown_inflates_scan_latency(self):
        store = make_store(nodes=2, rf=1, b=50)
        for eid in range(10):
            store.insert(eid, 0b11)
        base = store.route_query(0b1).latency_ms
        pid = store.catalog.partition_ids()[0]
        store.degrade_node(store.cluster.node_of(pid), slowdown=10.0)
        assert store.route_query(0b1).latency_ms > base

    def test_recovery_restores_full_availability(self):
        store = make_store(nodes=3, rf=2, b=10)
        for eid in range(30):
            store.insert(eid, 0b11 if eid % 2 else 0b1100)
        for pid in store.catalog.partition_ids():
            for nid in store.cluster.replica_nodes(pid):
                if store.cluster.nodes[nid].is_up and len(store.cluster.up_nodes()) > 1:
                    store.crash_node(nid)
        store.re_replicate()
        stats = store.route_query(0b1)
        assert not stats.degraded
        assert store.check_placement() == []

    def test_counters_accumulate(self):
        store = make_store(nodes=3, rf=2)
        store.insert(1, 0b1)
        store.crash_node(0)
        store.recover_node(0)
        store.degrade_node(1)
        store.re_replicate()
        store.route_query(0b1)
        counts = store.counters.as_dict()
        assert counts["node_crashes"] == 1
        assert counts["node_recoveries"] == 1
        assert counts["node_degradations"] == 1
        assert counts["re_replication_passes"] == 1
        assert counts["queries_total"] == 1
        assert counts["availability"] == 1.0
