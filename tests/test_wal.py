"""Tests for the coordinator write-ahead log and crash recovery."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.store import DistributedUniversalStore
from repro.storage.snapshot import SnapshotFormatError, load_store, save_store
from repro.storage.wal import (
    WALClosedError,
    WALFormatError,
    WriteAheadLog,
    read_wal,
)


def make_store(tmp_path, rf=2, nodes=3, b=6):
    wal = WriteAheadLog(tmp_path / "wal.log")
    store = DistributedUniversalStore(
        nodes,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=b, weight=0.4)),
        replication_factor=rf,
        wal=wal,
    )
    return store, wal


class TestWriteAheadLog:
    def test_append_and_read_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("insert", {"eid": 1, "mask": 0b11})
        wal.append("delete", {"eid": 1})
        records = wal.records()
        assert [(r.seq, r.op) for r in records] == [(1, "insert"), (2, "delete")]
        assert records[0].payload == {"eid": 1, "mask": 3}

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.close()
        wal = WriteAheadLog(path)
        assert wal.last_seq == 1
        wal.append("insert", {"eid": 2, "mask": 1})
        assert [r.seq for r in wal.records()] == [1, 2]

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.append("insert", {"eid": 2, "mask": 1})
        wal.close()
        # simulate a crash mid-append: half of the last record is gone
        content = path.read_text()
        path.write_text(content[:-10])
        reopened = WriteAheadLog(path)
        assert reopened.torn_records_dropped == 1
        assert [r.payload["eid"] for r in reopened.records()] == [1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.append("insert", {"eid": 2, "mask": 1})
        wal.close()
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:12] + "X" + lines[1][13:]  # flip inside record 1
        path.write_text("".join(lines))
        with pytest.raises(WALFormatError):
            read_wal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.append("insert", {"eid": 2, "mask": 1})
        wal.close()
        lines = path.read_text().splitlines(keepends=True)
        del lines[1]  # drop record 1, keep record 2: a gap, not a tail
        path.write_text("".join(lines))
        with pytest.raises(WALFormatError):
            read_wal(path)

    def test_not_a_wal_raises(self, tmp_path):
        path = tmp_path / "other.log"
        path.write_text("hello world\n")
        with pytest.raises(WALFormatError):
            read_wal(path)

    def test_reset_records_basis(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.append("insert", {"eid": 2, "mask": 1})
        wal.reset(basis_seq=2)
        assert wal.records() == []
        assert wal.basis_seq == 2
        seq = wal.append("insert", {"eid": 3, "mask": 1})
        assert seq == 3  # sequence numbers continue across checkpoints


class TestClosedLog:
    """Using a closed WAL is a clear, typed error — not a bare
    ``ValueError: I/O operation on closed file`` from the file object."""

    def closed_wal(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.close()
        return wal

    def test_append_after_close(self, tmp_path):
        wal = self.closed_wal(tmp_path)
        with pytest.raises(WALClosedError, match="append"):
            wal.append("insert", {"eid": 2, "mask": 1})

    def test_sync_after_close(self, tmp_path):
        wal = self.closed_wal(tmp_path)
        with pytest.raises(WALClosedError, match="sync"):
            wal.sync()

    def test_compact_and_reset_after_close(self, tmp_path):
        wal = self.closed_wal(tmp_path)
        with pytest.raises(WALClosedError):
            wal.compact()
        with pytest.raises(WALClosedError):
            wal.reset(basis_seq=1)

    def test_error_names_the_log(self, tmp_path):
        wal = self.closed_wal(tmp_path)
        with pytest.raises(WALClosedError) as caught:
            wal.append("insert", {"eid": 2, "mask": 1})
        assert str(wal.path) in str(caught.value)

    def test_is_a_value_error(self, tmp_path):
        """The serving node's abort-mid-batch path catches ``(OSError,
        ValueError)`` to un-ack queued writes when the journal goes
        away — the typed error must stay inside that net."""
        assert issubclass(WALClosedError, ValueError)

    def test_close_is_idempotent(self, tmp_path):
        wal = self.closed_wal(tmp_path)
        wal.close()  # no error the second time
        # reads never needed the handle: the file is still consultable
        assert [r.seq for r in wal.records()] == [1]


class TestCompactionAndRotation:
    def journaled_wal(self, tmp_path, **kwargs):
        """A WAL carrying operation-journal chatter around real records."""
        from repro.txn.journal import OperationJournal

        wal = WriteAheadLog(tmp_path / "wal.log", **kwargs)
        journal = OperationJournal(wal)
        wal.append("insert", {"eid": 1, "mask": 0b11})
        committed = journal.begin("merge", {"min_fill": 0.5})
        for index in range(5):
            journal.step(committed, index, "merge:member-moved")
        journal.commit(committed, "merge", {"min_fill": 0.5})
        aborted = journal.begin("reorganize", {"order": "size"})
        journal.abort(aborted, "ValueError: nope")
        interrupted = journal.begin("merge", {"min_fill": 0.9})
        journal.step(interrupted, 0, "merge:member-moved")
        wal.append("insert", {"eid": 2, "mask": 0b1100})
        return wal

    def test_compact_drops_journal_chatter_only(self, tmp_path):
        wal = self.journaled_wal(tmp_path)
        dropped = wal.compact()
        # 6 step records + finished begin/abort markers (2 begins, 1 abort)
        assert dropped == 9
        ops = [r.op for r in wal.records()]
        # real operations, the commit, and the *interrupted* begin survive
        assert ops == ["insert", "op_commit", "op_begin", "insert"]

    def test_compaction_preserves_sequence_numbers(self, tmp_path):
        wal = self.journaled_wal(tmp_path)
        before = {r.seq: r.op for r in wal.records()}
        last = wal.last_seq
        wal.compact()
        for record in wal.records():
            assert before[record.seq] == record.op
        # appends continue from the pre-compaction position
        assert wal.append("insert", {"eid": 3, "mask": 1}) == last + 1

    def test_compacted_log_reopens_and_tolerates_gaps(self, tmp_path):
        wal = self.journaled_wal(tmp_path)
        wal.compact()
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        assert reopened.compactions == 1
        assert [r.op for r in reopened.records()] == [
            "insert", "op_commit", "op_begin", "insert",
        ]

    def test_uncompacted_log_still_rejects_gaps(self, tmp_path):
        # compaction must not weaken gap detection for ordinary logs
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.append("insert", {"eid": 2, "mask": 1})
        wal.close()
        lines = (tmp_path / "wal.log").read_text().splitlines(keepends=True)
        del lines[1]
        (tmp_path / "wal.log").write_text("".join(lines))
        with pytest.raises(WALFormatError):
            read_wal(tmp_path / "wal.log")

    def test_size_threshold_rotation(self, tmp_path):
        from repro.txn.journal import OperationJournal

        def run(wal):
            journal = OperationJournal(wal)
            for _round in range(30):
                op = journal.begin("merge", {"min_fill": 0.5})
                journal.step(op, 0, "merge:member-moved")
                journal.commit(op, "merge", {"min_fill": 0.5})

        rotated = WriteAheadLog(tmp_path / "rotated.log", max_bytes=2_000)
        run(rotated)
        unbounded = WriteAheadLog(tmp_path / "unbounded.log")
        run(unbounded)
        assert rotated.compactions > 0, "rotation never triggered"
        # rotation keeps only commit records (plus the most recent,
        # not-yet-compacted chatter) — strictly smaller than unbounded
        assert rotated.size_bytes() < unbounded.size_bytes() * 0.6
        # every commit survives compaction — replay stays complete
        commits = [r for r in rotated.records() if r.op == "op_commit"]
        assert len(commits) == 30

    def test_sync_appends_are_counted(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("insert", {"eid": 1, "mask": 1})
        wal.append("op_commit", {"op_id": "op-1", "kind": "merge"}, sync=True)
        assert wal.syncs == 1

    def test_recovery_from_compacted_wal_is_exact(self, tmp_path):
        """Checkpoint + compacted WAL recovers the same store state."""
        store, wal = make_store(tmp_path)
        for eid in range(20):
            store.insert(eid, 0b11 if eid % 2 else 0b1100)
        store.checkpoint(tmp_path / "snap.json")
        for eid in range(10):
            store.delete(eid)
        store.merge_small(0.9)  # journaled: begin/steps/commit in the WAL
        wal.compact()
        recovered = DistributedUniversalStore.recover(
            tmp_path / "snap.json", tmp_path / "wal.log"
        )

        def sig(s):
            return (
                sorted((p.pid, p.mask, tuple(p.members())) for p in s.catalog),
                {
                    pid: s.cluster.replica_nodes(pid)
                    for pid in s.cluster.partition_ids()
                },
            )

        assert sig(recovered) == sig(store)
        assert recovered.check_placement() == []

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", max_bytes=0)


class TestJournaledStore:
    def test_operations_are_journaled(self, tmp_path):
        store, wal = make_store(tmp_path)
        store.insert(1, 0b11)
        store.insert(2, 0b1100)
        store.delete(1)
        store.update(2, 0b1111)
        store.crash_node(0)
        store.re_replicate()
        store.recover_node(0)
        ops = [record.op for record in wal.records()]
        assert ops == [
            "insert", "insert", "delete", "update",
            "crash", "re_replicate", "recover",
        ]
        assert store.counters.wal_records_appended == 7

    def test_full_replay_reproduces_catalog(self, tmp_path):
        store, wal = make_store(tmp_path)
        for eid in range(40):
            store.insert(eid, 0b11 if eid % 2 else 0b1100)
        for eid in range(0, 40, 5):
            store.delete(eid)
        replayed = DistributedUniversalStore(
            3,
            CinderellaPartitioner(
                CinderellaConfig(max_partition_size=6, weight=0.4)
            ),
            replication_factor=2,
        )
        replayed.replay_wal(wal.records())

        def sig(s):
            return (
                sorted(
                    (p.pid, p.mask, tuple(p.members())) for p in s.catalog
                ),
                {
                    pid: s.cluster.replica_nodes(pid)
                    for pid in s.cluster.partition_ids()
                },
            )

        assert sig(replayed) == sig(store)

    def test_checkpoint_plus_wal_recovery_is_exact(self, tmp_path):
        store, wal = make_store(tmp_path)
        for eid in range(30):
            store.insert(eid, 0b11 if eid % 3 else 0b111000)
        store.checkpoint(tmp_path / "snap.json")
        # post-checkpoint activity, including failures
        for eid in range(30, 45):
            store.insert(eid, 0b1010)
        store.crash_node(1)
        store.re_replicate()
        for eid in range(5):
            store.delete(eid)

        recovered = DistributedUniversalStore.recover(
            tmp_path / "snap.json", tmp_path / "wal.log"
        )

        def sig(s):
            return (
                sorted(
                    (
                        p.pid, p.mask, tuple(p.members()),
                        (p.starters.eid_a, p.starters.mask_a,
                         p.starters.eid_b, p.starters.mask_b),
                    )
                    for p in s.catalog
                ),
                {
                    pid: s.cluster.replica_nodes(pid)
                    for pid in s.cluster.partition_ids()
                },
                sorted(s.cluster.unhosted_partitions()),
                s.partitioner.split_count,
                [n.state.value for n in s.cluster.nodes],
            )

        assert sig(recovered) == sig(store)
        assert recovered.check_placement() == []
        assert recovered.counters.wal_records_replayed > 0

    def test_recovered_store_keeps_journaling(self, tmp_path):
        store, wal = make_store(tmp_path)
        store.insert(1, 0b1)
        store.checkpoint(tmp_path / "snap.json")
        store.insert(2, 0b10)
        recovered = DistributedUniversalStore.recover(
            tmp_path / "snap.json", tmp_path / "wal.log"
        )
        recovered.insert(3, 0b100)
        assert [r.op for r in recovered.wal.records()] == ["insert", "insert"]

    def test_mismatched_wal_basis_rejected(self, tmp_path):
        store, wal = make_store(tmp_path)
        store.insert(1, 0b1)
        store.checkpoint(tmp_path / "snap.json")
        store.insert(2, 0b10)
        wal.reset(basis_seq=99)  # checkpoint the snapshot does not know
        with pytest.raises(WALFormatError):
            DistributedUniversalStore.recover(
                tmp_path / "snap.json", tmp_path / "wal.log"
            )


class TestStoreSnapshot:
    def test_roundtrip_preserves_exact_pids(self, tmp_path):
        store, _wal = make_store(tmp_path, b=4)
        for eid in range(50):
            store.insert(eid, 0b11 if eid % 2 else 0b1100)
        for eid in range(0, 50, 7):
            store.delete(eid)
        save_store(store, tmp_path / "snap.json")
        restored, wal_seq = load_store(tmp_path / "snap.json")
        assert restored.catalog.partition_ids() == store.catalog.partition_ids()
        assert restored.catalog.next_partition_id == store.catalog.next_partition_id
        assert restored.check_placement() == []

    def test_corrupted_store_snapshot_rejected(self, tmp_path):
        store, _wal = make_store(tmp_path)
        store.insert(1, 0b1)
        path = tmp_path / "snap.json"
        save_store(store, path)
        text = path.read_text()
        path.write_text(text.replace('"split_count": 0', '"split_count": 7'))
        with pytest.raises(SnapshotFormatError):
            load_store(path)

    def test_baseline_partitioner_not_persistable(self, tmp_path):
        from repro.baselines.hash_partitioner import HashPartitioner

        store = DistributedUniversalStore(2, HashPartitioner(num_partitions=4))
        with pytest.raises(SnapshotFormatError):
            save_store(store, tmp_path / "snap.json")
