"""End-to-end observability: spans, metrics, and surfaces agree.

The acceptance bar of the observability layer:

* a single insert that causes a split leaves a complete nested span
  tree (insert -> split -> restricted rate / place);
* ``python -m repro query-path`` (legacy dataclass counters) and
  ``python -m repro obs`` (registry) report identical numbers;
* one instrumented run covers insert, query, maintenance, WAL, and
  ingest metric families, and both exposition formats are valid.
"""

import json

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.ingest.pipeline import IngestPipeline, IngestRequest
from repro.maintenance.merger import merge_small_partitions
from repro.obs.shims import QUERY_PATH_METRICS
from repro.query.cache import QueryResultCache
from repro.query.query import AttributeQuery
from repro.storage.wal import WriteAheadLog
from repro.table.partitioned import CinderellaTable
from repro.txn.ops import atomic_merge


@pytest.fixture(autouse=True)
def _always_disable():
    yield
    obs.disable()


class TestSplitTrace:
    def test_insert_causing_split_leaves_full_span_tree(self):
        """A single insert that splits shows the full nested story.

        The masks are arranged so the fifth insert overflows the one
        partition everything rated into, and — crucially — so the
        triggering entity is *not* picked as a split starter (its mask
        sits between the two extremes), which means it re-inserts into
        the split targets with full stage spans.
        """
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=4, weight=0.9)
        )
        state = obs.enable(slow_op_threshold_s=None)
        outcome = None
        for eid, mask in enumerate((0b0001, 0b1111, 0b0011, 0b0011, 0b0011)):
            outcome = partitioner.insert(eid, mask)
        obs.disable()
        assert outcome.splits > 0, "the last insert must have split"

        trace = None
        for root in reversed(state.tracer.finished):
            if root.name == "partitioner.insert" and root.attributes.get(
                "splits"
            ):
                trace = root
                break
        assert trace is not None, "the splitting insert left no trace"
        assert trace.attributes["eid"] == outcome.entity_id
        assert trace.attributes["partition_id"] == outcome.partition_id
        assert trace.attributes["splits"] == outcome.splits

        names = [span.name for span in trace.walk()]
        assert names[0] == "partitioner.insert"
        assert "partitioner.split" in names, "split must nest under insert"
        split = next(
            span for span in trace.children if span.name == "partitioner.split"
        )
        assert split.attributes["source_pid"] is not None
        stage_names = {span.name for span in split.walk()}
        # the triggering entity re-inserts with full stage spans: the
        # restricted rating over the two split targets, then placement
        assert "partitioner.rate" in stage_names
        assert "partitioner.place" in stage_names
        rate = next(
            span for span in split.walk() if span.name == "partitioner.rate"
        )
        assert rate.attributes.get("restricted") is True

    def test_plain_insert_records_one_span_with_stage_attributes(self):
        """The non-split fast path traces as a single span — stage data
        lands in attributes, not child spans (overhead budget)."""
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=100.0)
        )
        state = obs.enable(slow_op_threshold_s=None)
        partitioner.insert(1, 0b11)
        partitioner.insert(2, 0b11)
        obs.disable()
        root = state.tracer.find_trace("partitioner.insert")
        assert root.children == ()
        assert root.attributes["ratings"] >= 1
        assert "partition_id" in root.attributes

    def test_insert_latency_histogram_is_span_timed(self):
        partitioner = CinderellaPartitioner()
        state = obs.enable(slow_op_threshold_s=None)
        for eid in range(10):
            partitioner.insert(eid, 0b1 << (eid % 3))
        obs.disable()
        child = state.registry.get("repro_insert_latency_seconds")._unlabeled()
        assert child.count == 10
        insert_aggregate = state.tracer.aggregates["partitioner.insert"]
        assert child.sum == pytest.approx(insert_aggregate[1])

    def test_metrics_only_mode_still_times_inserts(self):
        partitioner = CinderellaPartitioner()
        state = obs.enable(trace=False)
        partitioner.insert(1, 0b11)
        obs.disable()
        child = state.registry.get("repro_insert_latency_seconds")._unlabeled()
        assert child.count == 1
        assert child.sum > 0.0


def _run_query_workload(table):
    attributes = ["name", "resolution", "aperture", "storage", "rotation"]
    for eid in range(60):
        row = {
            "name": f"e{eid}",
            attributes[1 + eid % 4]: eid,
        }
        table.insert(row, entity_id=eid)
    queries = [
        AttributeQuery(("name",)),
        AttributeQuery(("resolution",)),
        AttributeQuery(("storage",)),
    ]
    for _round in range(3):
        for query in queries:
            table.execute(query)


class TestCountersAgreement:
    def test_query_path_counters_match_registry(self):
        """``repro query-path`` reads the dataclass, ``repro obs`` reads
        the registry; the deferred mirror must make them identical."""
        table = CinderellaTable(
            CinderellaConfig(max_partition_size=20.0, weight=0.4,
                             use_synopsis_index=True),
            result_cache=QueryResultCache(),
        )
        state = obs.enable()
        _run_query_workload(table)
        obs.disable()  # flushes the mirror

        reported = table.query_counters.as_dict()
        assert reported["queries_total"] == 9
        assert reported["cache_hits"] > 0
        for field, (metric, _kind) in QUERY_PATH_METRICS.items():
            registry_value = state.registry.get_value(metric)
            if reported[field] == 0:
                assert registry_value in (None, 0.0), metric
            else:
                assert registry_value == reported[field], metric

    def test_flush_mirrors_makes_live_reads_current(self):
        table = CinderellaTable(
            CinderellaConfig(max_partition_size=20.0),
            result_cache=QueryResultCache(),
        )
        obs.enable()
        _run_query_workload(table)
        assert obs.registry().get_value("repro_query_queries_total") is None
        obs.flush_mirrors()
        assert obs.registry().get_value("repro_query_queries_total") == 9
        obs.disable()

    def test_mirror_aggregates_multiple_tables(self):
        state = obs.enable()
        for _ in range(2):
            table = CinderellaTable(
                CinderellaConfig(max_partition_size=20.0),
                result_cache=QueryResultCache(),
            )
            _run_query_workload(table)
        obs.disable()
        assert state.registry.get_value("repro_query_queries_total") == 18


class TestSubsystemCoverage:
    def test_one_run_covers_all_metric_families(self, tmp_path):
        """Insert, query, maintenance, WAL, and ingest families all land
        in one instrumented run — the exposition covers the system."""
        state = obs.enable(slow_op_threshold_s=None)

        table = CinderellaTable(
            CinderellaConfig(max_partition_size=10.0, weight=0.4),
            result_cache=QueryResultCache(),
        )
        _run_query_workload(table)
        atomic_merge(table.partitioner, min_fill=0.9)

        wal = WriteAheadLog(tmp_path / "test.wal")
        wal.append("noop", {}, sync=True)
        wal.compact()
        wal.close()

        pipeline = IngestPipeline(
            CinderellaPartitioner(CinderellaConfig(max_partition_size=50.0))
        )
        pipeline.ingest(IngestRequest("insert", 1, 0b11))
        pipeline.ingest(IngestRequest("insert", 2, 0))  # rejected

        obs.disable()
        families = {family.name for family in state.registry.families()}
        for expected in (
            "repro_insert_latency_seconds",          # insert
            "repro_query_latency_seconds",           # query
            "repro_query_cache_hits_total",          # cache
            "repro_txn_ops_total",                   # maintenance txn
            "repro_wal_fsyncs_total",                # WAL
            "repro_wal_fsync_seconds",
            "repro_ingest_accepted_total",           # ingest
            "repro_ingest_quarantined_total",
        ):
            assert expected in families, f"{expected} missing from {families}"
        # ingest admission failures also emit events
        assert state.events.of_kind("ingest.quarantined")

    def test_maintenance_merge_is_traced_and_counted(self):
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10.0)
        )
        for eid in range(8):
            partitioner.insert(eid, 0b1 << (eid % 4))
        state = obs.enable(slow_op_threshold_s=None)
        report = merge_small_partitions(partitioner, min_fill=0.9)
        obs.disable()
        assert state.registry.get_value(
            "repro_maintenance_merge_passes_total"
        ) == 1
        assert state.registry.get_value(
            "repro_maintenance_partitions_merged_total"
        ) == report.merge_count
        assert state.tracer.find_trace("maintenance.merge") is not None


class TestCliSurface:
    def _run_cli(self, capsys, *argv):
        assert cli_main(["obs", "--entities", "200", *argv]) == 0
        return capsys.readouterr().out

    def test_prometheus_output_is_valid_and_covering(self, capsys):
        out = self._run_cli(capsys, "--format", "prometheus")
        for line in out.strip().splitlines():
            assert line.startswith("#") or " " in line
        for family in (
            "repro_insert_latency_seconds_count",
            "repro_query_latency_seconds_count",
            "repro_txn_ops_total",
            "repro_wal_fsyncs_total",
            "repro_ingest_accepted_total",
            "repro_dist_node_crashes_total",
        ):
            assert family in out

    def test_json_output_parses_and_has_digests(self, capsys):
        out = self._run_cli(capsys, "--format", "json")
        document = json.loads(out)
        names = {metric["name"] for metric in document["metrics"]}
        assert "repro_insert_latency_seconds" in names
        assert "repro_query_cache_hits_total" in names
        span_names = {entry["name"] for entry in document["top_spans"]}
        assert "partitioner.insert" in span_names
        assert any(
            event["kind"].startswith("fault.") for event in document["events"]
        )

    def test_summary_output_renders(self, capsys):
        out = self._run_cli(capsys)
        assert "partitioner.insert" in out
