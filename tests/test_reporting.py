"""Tests for the ASCII reporting helpers."""

import pytest

from repro.reporting.tables import format_kv_block, format_series, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["name", "time"],
            [["standard", 24.23], ["cinderella", 26.38]],
            title="Table I",
        )
        lines = text.splitlines()
        assert lines[0] == "Table I"
        assert "name" in lines[1] and "time" in lines[1]
        assert "-" in lines[2]
        assert "24.230" in text and "26.380" in text

    def test_column_width_adapts(self):
        text = format_table(["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text and "1.23" not in text

    def test_non_float_cells_via_str(self):
        text = format_table(["v"], [[42], [None]])
        assert "42" in text and "None" in text


class TestFormatSeries:
    def test_points_rendered(self):
        text = format_series("B=500", [(0.1, 12.0), (0.5, 48.0)], value_unit="ms")
        assert text.startswith("B=500:")
        assert "(0.10, 12.000ms)" in text


class TestFormatKvBlock:
    def test_alignment_and_floats(self):
        text = format_kv_block("Summary", [("partitions", 63), ("efficiency", 0.75)])
        lines = text.splitlines()
        assert lines[0] == "Summary"
        assert any("partitions" in line and "63" in line for line in lines)
        assert any("0.75" in line for line in lines)
