"""Edge-case tests across subsystem boundaries."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.sizes import ByteSizeModel
from repro.sql.executor import execute
from repro.storage.snapshot import load_table, save_table
from repro.table.partitioned import CinderellaTable


def build_indexed_table() -> CinderellaTable:
    table = CinderellaTable(
        CinderellaConfig(max_partition_size=4, weight=0.4, use_synopsis_index=True)
    )
    for i in range(12):
        table.insert({"a": i, "b": i} if i % 2 else {"c": i}, entity_id=i)
    return table


class TestSnapshotWithIndex:
    def test_index_rebuilt_on_restore(self, tmp_path):
        table = build_indexed_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)
        assert restored.catalog.index is not None
        assert restored.check_consistency() == []
        # the restored index must route inserts like the original
        outcome = restored.insert({"a": 99, "b": 99})
        partition = restored.catalog.get(outcome.partition_id)
        assert partition.mask & restored.dictionary.encode_known(["a"])

    def test_restored_table_splits_correctly(self, tmp_path):
        table = build_indexed_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)
        for i in range(100, 130):
            restored.insert({"a": i, "b": i}, entity_id=i)
        assert restored.partitioner.split_count > 0
        assert restored.check_consistency() == []


class TestByteSizeModelEndToEnd:
    def test_capacity_in_bytes(self):
        table = CinderellaTable(
            CinderellaConfig(
                max_partition_size=300.0, weight=0.4, size_model=ByteSizeModel()
            )
        )
        for i in range(20):
            table.insert({"payload": "x" * 50, "index": i})
        assert table.check_consistency() == []
        for partition in table.catalog:
            if len(partition) > 1:
                assert partition.total_size <= 300.0

    def test_update_changing_byte_size(self):
        table = CinderellaTable(
            CinderellaConfig(
                max_partition_size=500.0, weight=0.4, size_model=ByteSizeModel()
            )
        )
        eid = table.insert({"payload": "small"}).entity_id
        table.insert({"payload": "other"})
        before = table.catalog.get(table.catalog.partition_of(eid)).total_size
        table.update(eid, {"payload": "x" * 100})
        after = table.catalog.get(table.catalog.partition_of(eid)).total_size
        assert after > before
        assert table.check_consistency() == []


class TestSqlEdges:
    @pytest.fixture()
    def table(self):
        table = CinderellaTable(CinderellaConfig(max_partition_size=4, weight=0.4))
        table.insert({"a": 1, "b": "x"})
        table.insert({"a": 2})
        return table

    def test_limit_zero(self, table):
        assert execute("SELECT a FROM t LIMIT 0", table).rows == []

    def test_limit_beyond_result(self, table):
        assert len(execute("SELECT a FROM t LIMIT 99", table).rows) == 2

    def test_order_by_unselected_column_is_allowed(self, table):
        rows = execute("SELECT a FROM t ORDER BY b DESC", table).rows
        assert len(rows) == 2
        assert all(set(row) == {"a"} for row in rows)

    def test_select_never_seen_column_yields_nulls(self, table):
        rows = execute("SELECT ghost FROM t", table).rows
        assert rows == [{"ghost": None}, {"ghost": None}]

    def test_where_true_boolean_literal(self, table):
        table.insert({"flag": True})
        rows = execute("SELECT flag FROM t WHERE flag = TRUE", table).rows
        assert rows == [{"flag": True}]

    def test_empty_table(self):
        table = CinderellaTable()
        result = execute("SELECT a FROM t WHERE a = 1", table)
        assert result.rows == []
        assert result.stats.partitions_total == 0

    def test_sql_against_universal_table(self):
        from repro.table.universal import UniversalTable

        table = UniversalTable()
        table.insert({"a": 1})
        table.insert({"b": 2})
        result = execute("SELECT a FROM t WHERE a IS NOT NULL", table)
        assert result.rows == [{"a": 1}]
        assert result.pruned_pids == ()


class TestDictionaryGrowthAcrossLayers:
    def test_new_attributes_mid_stream(self):
        """Attributes appearing after thousands of inserts still work."""
        table = CinderellaTable(CinderellaConfig(max_partition_size=50, weight=0.3))
        for i in range(100):
            table.insert({"common": i})
        table.insert({"common": 1, "brand_new_attribute": "late"})
        result = execute(
            "SELECT brand_new_attribute FROM t "
            "WHERE brand_new_attribute IS NOT NULL",
            table,
        )
        assert result.rows == [{"brand_new_attribute": "late"}]
        assert result.stats.entities_read < 101  # pruning still exact
