"""Targeted tests for Algorithm 1's split machinery edge paths.

The split's recursive restricted insert (line 32) has two rare but
specified behaviours: it can *cascade* (a new partition fills up and
splits again during the drain) and it can open a *fresh partition* when
an entity rates negatively against both split results.  These paths need
engineered inputs; random workloads only occasionally reach them.
"""


from repro.core.config import CinderellaConfig
from repro.core.outcomes import ModificationOutcome
from repro.core.partitioner import CinderellaPartitioner
from repro.core.sizes import AttributeCountSizeModel


class TestSplitCascade:
    def test_drain_overflow_cascades(self):
        """A tiny starter leaves one split child so small that the drained
        big entities overflow the other child: the split must cascade."""
        partitioner = CinderellaPartitioner(
            CinderellaConfig(
                max_partition_size=10,
                weight=1.0,  # heterogeneity ignored: everything co-locates
                size_model=AttributeCountSizeModel(),
            )
        )
        tiny = 0b0001          # size 1, shares bit 0 with the bigs
        big = 0b0111           # size 3
        partitioner.insert(0, tiny)
        partitioner.insert(1, big)
        partitioner.insert(2, big)
        partitioner.insert(3, big)   # partition now at size 10 = B
        assert len(partitioner.catalog) == 1
        # starters are (tiny, a big): DIFF(tiny, big) = 2 beats DIFF(big, big)
        outcome = partitioner.insert(4, big)  # 10 + 3 > 10: split
        # the bigs (3 + 3 drained + 3 trigger = 12 > 10) overflow the big
        # child: a cascade split must have fired
        assert outcome.splits >= 2
        assert partitioner.check_invariants() == []
        assert partitioner.catalog.entity_count == 5
        # every move in the cascade is replayable in order
        locations: dict[int, int] = {}
        for move in outcome.moves:
            if move.from_pid is None:
                assert move.eid not in locations or True
            assert locations.get(move.eid) == move.from_pid or (
                move.from_pid is not None and move.eid not in locations
            )
            locations[move.eid] = move.to_pid

    def test_cascade_reports_all_created_and_dropped_partitions(self):
        partitioner = CinderellaPartitioner(
            CinderellaConfig(
                max_partition_size=10,
                weight=1.0,
                size_model=AttributeCountSizeModel(),
            )
        )
        for eid, mask in enumerate((0b0001, 0b0111, 0b0111, 0b0111)):
            partitioner.insert(eid, mask)
        outcome = partitioner.insert(4, 0b0111)
        live_pids = set(partitioner.catalog.partition_ids())
        assert set(outcome.created_partitions) - set(outcome.dropped_partitions) <= (
            live_pids
        )
        for pid in outcome.dropped_partitions:
            assert pid not in live_pids


class TestRestrictedInsertOpensNewPartition:
    def test_drained_entity_rejecting_both_children(self):
        """White-box: a restricted insert (the drain path of line 32) whose
        entity rates negatively against both split results must open a
        fresh partition, which joins the live restriction list."""
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10, weight=0.3)
        )
        pid_a = partitioner.insert(1, 0b0000_0011).partition_id
        pid_b = partitioner.insert(2, 0b0000_1100).partition_id
        assert pid_a != pid_b
        targets = [partitioner.catalog.get(pid_a), partitioner.catalog.get(pid_b)]
        outcome = ModificationOutcome(entity_id=9)
        final_pid = partitioner._insert(
            9, 0b1111_0000, 1.0, targets, None, outcome
        )
        assert final_pid not in (pid_a, pid_b)
        assert outcome.created_partitions == [final_pid]
        # the fresh partition joined the restriction list (Algorithm 1's
        # drain would keep routing entities to it)
        assert any(p.pid == final_pid for p in targets)
        assert partitioner.check_invariants() == []

    def test_restricted_insert_prefers_best_of_targets(self):
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10, weight=0.5)
        )
        pid_a = partitioner.insert(1, 0b0011).partition_id
        pid_b = partitioner.insert(2, 0b1100).partition_id
        targets = [partitioner.catalog.get(pid_a), partitioner.catalog.get(pid_b)]
        outcome = ModificationOutcome(entity_id=9)
        final_pid = partitioner._insert(9, 0b1100, 1.0, targets, None, outcome)
        assert final_pid == pid_b


class TestStarterDrivenSplitSeeding:
    def test_triggering_entity_can_seed_a_split(self):
        """Lines 15-24 run before the capacity check, so the incoming
        entity may replace a starter and seed one of the new partitions."""
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=2, weight=0.9)
        )
        partitioner.insert(1, 0b0011)
        partitioner.insert(2, 0b0111)  # starters now (1, 2), DIFF = 1
        # the trigger is maximally different from entity 1: it becomes a
        # starter and must seed one of the split partitions directly
        outcome = partitioner.insert(3, 0b1100)
        assert outcome.splits == 1
        seed_moves = [m for m in outcome.moves if m.eid == 3]
        assert len(seed_moves) == 1
        assert seed_moves[0].from_pid is None
        home = partitioner.catalog.get(outcome.partition_id)
        assert home.starters.is_starter(3) or len(home) == 1

    def test_split_separates_the_two_starter_schemas(self):
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=2, weight=0.9)
        )
        partitioner.insert(1, 0b0011)
        partitioner.insert(2, 0b0111)
        partitioner.insert(3, 0b1100)
        pid_1 = partitioner.catalog.partition_of(1)
        pid_3 = partitioner.catalog.partition_of(3)
        assert pid_1 != pid_3
