"""Cluster chaos: live serving nodes die and rejoin under mixed traffic.

The acceptance scenario of the distributed serving tier: concurrent
clients drive interleaved inserts, updates, deletes, queries, and SQL
through the router while a conductor kills a serving node mid-traffic
(RST on the wire, queued writes dropped) and later restarts it on the
same port with the same WAL.  Throughout, clients may observe only
*typed* retryable (``overloaded``, ``node_unavailable``) or partial
(``degraded``) statuses — never a protocol error, a hang, or a silent
wrong answer — and after the node rejoins (WAL replay + router
catch-up) the cluster must converge: every write that was ever
acknowledged is served, every node's catalog passes its invariant
check, and a full query round is complete again.

Also here: the WAL durability test (a crashed node's acked writes
survive into its next life) and the graceful-drain regression tests
(a stalled client cannot hold shutdown past the drain deadline).
"""

import socket
import threading
import time

import pytest

from repro.core.config import CinderellaConfig
from repro.router import ClusterHarness, RouterConfig
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.client import ServerClient
from repro.server.protocol import encode_request

from tests.conftest import WORKLOAD_SEED

#: statuses a chaos client may legitimately observe mid-fault
ACCEPTABLE_STATUSES = frozenset({
    "ok", "applied", "overloaded", "node_unavailable", "degraded",
})


def wait_until(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class ChaosWorker(threading.Thread):
    """One router connection driving a seeded mixed op stream.

    Every insert carries a unique ``uid`` attribute — rows do not carry
    entity ids, so the uids are how the final convergence check proves
    zero acknowledged writes were lost.
    """

    def __init__(self, index: int, address, ops: int):
        super().__init__(name=f"chaos-client-{index}")
        self.index = index
        self.address = address
        self.ops = ops
        #: uid -> eid of acked-and-not-deleted inserts
        self.live: dict[str, int] = {}
        self.applied = 0
        self.retried_away = 0
        self.steps = 0  # read by the conductor to pace the kills
        self.failures: list[str] = []

    def _writable(self, response, what: str) -> bool:
        if response.status == "applied":
            self.applied += 1
            return True
        if response.retryable:
            self.retried_away += 1
            return False
        self.failures.append(f"{what} -> {response.status}: {response.error}")
        return False

    def run(self) -> None:
        import random

        rng = random.Random(WORKLOAD_SEED + self.index)
        base = self.index * 1_000_000  # disjoint eid spaces per worker
        try:
            with ServerClient(*self.address, check=False) as client:
                for step in range(self.ops):
                    self.steps = step
                    choice = rng.random()
                    if choice < 0.60 or not self.live:
                        uid = f"w{self.index}-{step}"
                        eid = base + step
                        response = client.retrying(
                            "insert",
                            attributes={
                                "uid": uid,
                                "common": self.index,
                                f"attr{rng.randrange(4)}": step,
                            },
                            eid=eid,
                            attempts=12, base_delay_s=0.005, budget_s=15.0,
                        )
                        if self._writable(response, f"insert {uid}"):
                            self.live[uid] = eid
                    elif choice < 0.72:
                        uid = rng.choice(list(self.live))
                        response = client.retrying(
                            "update", eid=self.live[uid],
                            attributes={"uid": uid, "renamed": step},
                            attempts=12, base_delay_s=0.005, budget_s=15.0,
                        )
                        self._writable(response, f"update {uid}")
                    elif choice < 0.82:
                        uid = rng.choice(list(self.live))
                        response = client.retrying(
                            "delete", eid=self.live[uid],
                            attempts=12, base_delay_s=0.005, budget_s=15.0,
                        )
                        if self._writable(response, f"delete {uid}"):
                            del self.live[uid]
                    elif choice < 0.95:
                        response = client.request(
                            "query", attributes=["uid"], mode="any"
                        )
                        if response.status not in ACCEPTABLE_STATUSES:
                            self.failures.append(
                                f"query -> {response.status}: {response.error}"
                            )
                    else:
                        response = client.request(
                            "sql",
                            sql=f"SELECT uid FROM universalTable "
                                f"WHERE common = {self.index}",
                        )
                        if response.status not in ACCEPTABLE_STATUSES:
                            self.failures.append(
                                f"sql -> {response.status}: {response.error}"
                            )
        except Exception as err:  # surfaced by the main thread
            self.failures.append(f"{type(err).__name__}: {err}")


def run_cluster_chaos(tmp_path, workers: int, ops: int, victims) -> None:
    harness = ClusterHarness(
        tmp_path,
        n_nodes=3,
        replication_factor=2,
        router_config=RouterConfig(
            upstream_timeout_s=1.0, eject_base_s=0.1, eject_max_s=1.0,
        ),
    )
    with harness as cluster:
        pool = [
            ChaosWorker(index, cluster.router_address, ops)
            for index in range(workers)
        ]
        for worker in pool:
            worker.start()

        # the conductor: kill and restart live nodes mid-traffic.  The
        # kills are paced by workload *progress*, not wall-clock sleeps
        # — a fast server could finish the whole workload inside a fixed
        # sleep, leaving no traffic to trip the breaker on
        def progress() -> int:
            return sum(worker.steps for worker in pool)

        stride = max(1, (workers * ops) // (2 * len(victims) + 1))
        for number, victim in enumerate(victims):
            wait_until(
                lambda: progress() >= (2 * number + 1) * stride,
                timeout_s=120,
            )
            cluster.kill_node(victim)
            mark = progress()
            # a stride of traffic against the dead node: failures must
            # actually flow for the breaker to eject and fail over
            wait_until(lambda: progress() >= mark + stride, timeout_s=120)
            cluster.restart_node(victim)
        for worker in pool:
            worker.join(timeout=180)
            assert not worker.is_alive(), f"{worker.name} hung"
        failures = [f for worker in pool for f in worker.failures]
        assert failures == [], failures[:10]

        expected = {uid for worker in pool for uid in worker.live}
        router = cluster.router

        def converged():
            with cluster.client(check=False) as client:
                client.query(["uid"])  # traffic drives probe + catch-up
            return (
                not any(router._catchup[name] for name in router._catchup)
            )

        assert wait_until(converged), "catch-up buffers never drained"

        # ---- zero lost acknowledged writes ---------------------------
        with cluster.client() as client:
            response = client.query_response(["uid"])
            assert response.ok, response.status  # complete, not degraded
            served = [row["uid"] for row in response.get("rows")]
        assert sorted(served) == sorted(expected)  # nothing lost, nothing dup
        assert len(served) == len(set(served))

        # ---- per-node catalog invariants -----------------------------
        for name, thread in cluster.nodes.items():
            problems = thread.server.table.check_consistency()
            assert problems == [], f"{name}: {problems}"

        # ---- the fault path genuinely fired --------------------------
        counters = router.counters
        assert counters.node_ejections >= 1, "breaker never tripped"
        assert counters.node_restores >= 1, "breaker never restored"
        assert counters.failovers >= 1, "no failover happened"
        splits = sum(
            thread.server.table.partitioner.split_count
            for thread in cluster.nodes.values()
        )
        assert splits > 0, "chaos traffic never split a partition"
        replayed = sum(
            thread.server.counters.wal_records_replayed
            for thread in cluster.nodes.values()
        )
        assert replayed > 0, "restart never replayed a WAL"


class TestClusterChaos:
    def test_kill_and_rejoin_one_node_under_traffic(self, tmp_path):
        run_cluster_chaos(tmp_path, workers=4, ops=60, victims=["node1"])

    @pytest.mark.slow
    def test_soak_two_kill_cycles_under_heavier_traffic(self, tmp_path):
        run_cluster_chaos(
            tmp_path, workers=8, ops=150, victims=["node1", "node2"],
        )


class TestWalDurability:
    def test_acked_writes_survive_a_crash_via_wal_replay(self, tmp_path):
        """rf=1, so after the crash only the WAL can restore the rows."""
        with ClusterHarness(tmp_path, n_nodes=1, replication_factor=1) as h:
            with h.client() as client:
                for i in range(25):
                    client.insert({"uid": f"u{i}", "a": i}, eid=i)
            h.kill_node("node0")
            h.restart_node("node0")

            def recovered():
                with h.client(check=False) as client:
                    response = client.request("query", attributes=["uid"])
                    return response.ok and response.get("row_count") == 25

            assert wait_until(recovered)
            node = h.nodes["node0"].server
            assert node.counters.wal_records_replayed == 25
            assert node.table.check_consistency() == []

    def test_unacked_writes_are_not_resurrected(self, tmp_path):
        """The WAL records exactly the acked writes: a crash must not
        invent writes the client never got an ``applied`` for."""
        with ClusterHarness(tmp_path, n_nodes=1, replication_factor=1) as h:
            acked = set()
            with h.client(check=False) as client:
                for i in range(10):
                    if client.insert({"uid": f"u{i}"}, eid=i).ok:
                        acked.add(f"u{i}")
            h.kill_node("node0")
            h.restart_node("node0")

            def recovered():
                with h.client(check=False) as client:
                    response = client.request("query", attributes=["uid"])
                    return response.ok
            assert wait_until(recovered)
            with h.client() as client:
                served = {r["uid"] for r in client.query(["uid"])}
            assert served == acked


def _stall_connection(address, rows: int):
    """Fill a server's send buffer: pipeline reads, never read replies."""
    sock = socket.create_connection(address, timeout=30)
    payload = b"".join(
        encode_request("query", request_id=i + 1, attributes=["blob"])
        for i in range(rows)
    )
    sock.sendall(payload)
    return sock  # caller keeps it open — and never reads


class TestBoundedDrain:
    def test_stalled_client_cannot_hang_server_shutdown(self):
        config = ServerConfig(maintenance_interval_s=0, drain_deadline_s=0.5)
        server = CinderellaServer(config=config)
        harness = ServerThread(server=server).start()
        with ServerClient(*harness.address) as client:
            blob = "x" * 2_000
            for i in range(200):
                client.insert({"blob": blob, "i": i}, eid=i)
        stalled = _stall_connection(harness.address, rows=400)
        try:
            time.sleep(0.3)  # let the writer block on the full socket
            started = time.monotonic()
            harness.stop()
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"drain took {elapsed:.1f}s"
            assert server.counters.connections_force_closed >= 1
        finally:
            stalled.close()

    def test_stalled_client_cannot_hang_router_shutdown(self, tmp_path):
        harness = ClusterHarness(
            tmp_path, n_nodes=1, replication_factor=1,
            router_config=RouterConfig(drain_deadline_s=0.5),
        )
        cluster = harness.start()
        try:
            with cluster.client() as client:
                blob = "x" * 2_000
                for i in range(200):
                    client.insert({"blob": blob, "i": i}, eid=i)
            stalled = _stall_connection(cluster.router_address, rows=400)
            try:
                time.sleep(0.3)
                started = time.monotonic()
                cluster.router_thread.stop()
                cluster.router_thread = None
                elapsed = time.monotonic() - started
                assert elapsed < 5.0, f"router drain took {elapsed:.1f}s"
            finally:
                stalled.close()
        finally:
            cluster.stop()
