"""Tests for the hidden-schema vertical partitioning comparator."""

import pytest

from repro.baselines.vertical import (
    HiddenSchemaPartitioner,
    attribute_jaccard,
    horizontal_cell_efficiency,
    masks_to_matrix,
)
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner


class TestMatrixHelpers:
    def test_masks_to_matrix(self):
        matrix = masks_to_matrix([0b101, 0b010], 3)
        assert matrix.tolist() == [[True, False, True], [False, True, False]]

    def test_attribute_jaccard_values(self):
        # a and b always co-occur; c never appears with them
        matrix = masks_to_matrix([0b011, 0b011, 0b100], 3)
        jaccard = attribute_jaccard(matrix)
        assert jaccard[0, 1] == pytest.approx(1.0)
        assert jaccard[0, 2] == pytest.approx(0.0)
        assert jaccard[0, 0] == 1.0

    def test_partial_overlap(self):
        matrix = masks_to_matrix([0b01, 0b11, 0b10], 2)
        jaccard = attribute_jaccard(matrix)
        assert jaccard[0, 1] == pytest.approx(1 / 3)

    def test_empty_attribute(self):
        matrix = masks_to_matrix([0b01], 2)
        jaccard = attribute_jaccard(matrix)
        assert jaccard[0, 1] == 0.0
        assert jaccard[1, 1] == 1.0


def two_family_masks(n: int = 60) -> list[int]:
    """Attributes 0-2 co-occur; attributes 3-5 co-occur; never mixed."""
    return [0b000111 if i % 2 else 0b111000 for i in range(n)]


class TestHiddenSchemaPartitioner:
    def test_finds_the_two_hidden_schemas(self):
        partitioner = HiddenSchemaPartitioner(k_neighbors=2)
        fragments = partitioner.fit(two_family_masks(), 6)
        attribute_sets = sorted(
            tuple(sorted(f.attribute_ids)) for f in fragments
        )
        assert attribute_sets == [(0, 1, 2), (3, 4, 5)]

    def test_min_jaccard_prevents_chaining(self):
        # one noisy entity carrying attributes of both families
        masks = two_family_masks() + [0b111111]
        strict = HiddenSchemaPartitioner(k_neighbors=2, min_jaccard=0.2)
        fragments = strict.fit(masks, 6)
        assert len(fragments) == 2

    def test_zero_threshold_chains_everything(self):
        masks = two_family_masks() + [0b111111]
        loose = HiddenSchemaPartitioner(k_neighbors=5, min_jaccard=0.0)
        fragments = loose.fit(masks, 6)
        assert len(fragments) == 1

    def test_fit_twice_rejected(self):
        partitioner = HiddenSchemaPartitioner()
        partitioner.fit(two_family_masks(), 6)
        with pytest.raises(RuntimeError):
            partitioner.fit(two_family_masks(), 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            HiddenSchemaPartitioner(k_neighbors=0)
        with pytest.raises(ValueError):
            HiddenSchemaPartitioner(min_jaccard=2.0)

    def test_accounting_requires_fit(self):
        with pytest.raises(RuntimeError):
            HiddenSchemaPartitioner().fragment_volumes([0b1])


class TestCellEfficiency:
    def test_perfect_vertical_layout(self):
        masks = two_family_masks()
        partitioner = HiddenSchemaPartitioner(k_neighbors=2)
        partitioner.fit(masks, 6)
        # query references all of family 0's attributes: the fragment read
        # contains exactly the relevant cells
        assert partitioner.cell_efficiency(masks, [0b000111]) == pytest.approx(1.0)

    def test_partial_query_reads_whole_fragment(self):
        masks = two_family_masks()
        partitioner = HiddenSchemaPartitioner(k_neighbors=2)
        partitioner.fit(masks, 6)
        # querying one of the three attributes still reads the fragment
        assert partitioner.cell_efficiency(masks, [0b000001]) == pytest.approx(
            1 / 3
        )

    def test_fragment_volumes(self):
        masks = two_family_masks(10)
        partitioner = HiddenSchemaPartitioner(k_neighbors=2)
        partitioner.fit(masks, 6)
        assert sorted(partitioner.fragment_volumes(masks)) == [15.0, 15.0]

    def test_horizontal_counterpart_on_clean_data(self):
        masks = two_family_masks()
        cinderella = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=50, weight=0.3)
        )
        for eid, mask in enumerate(masks):
            cinderella.insert(eid, mask)
        # horizontal partitions are signature-pure here: single-attribute
        # queries read whole 3-attribute-wide rows -> 1/3 cell efficiency
        value = horizontal_cell_efficiency(cinderella.catalog, [0b000001])
        assert value == pytest.approx(1 / 3)
        # full-family queries are perfect
        assert horizontal_cell_efficiency(
            cinderella.catalog, [0b000111]
        ) == pytest.approx(1.0)

    def test_vacuous_workload(self):
        masks = two_family_masks()
        partitioner = HiddenSchemaPartitioner(k_neighbors=2)
        partitioner.fit(masks, 6)
        assert partitioner.cell_efficiency(masks, [1 << 40]) == 1.0
