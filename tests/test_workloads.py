"""Tests for the DBpedia generator and the synthetic query workload."""

import pytest

from repro.workloads.dbpedia import generate_dbpedia_persons, validate_distribution
from repro.workloads.querygen import (
    build_query_workload,
    representative_queries,
    top_frequent_attributes,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dbpedia_persons(n_entities=8000, seed=42)


class TestDBpediaGenerator:
    def test_size_and_ids(self, dataset):
        assert len(dataset) == 8000
        assert [e.entity_id for e in dataset.entities[:3]] == [0, 1, 2]

    def test_matches_figure4_distribution(self, dataset):
        assert validate_distribution(dataset) == []

    def test_two_near_universal_attributes(self, dataset):
        frequencies = sorted(
            dataset.attribute_frequencies().values(), reverse=True
        )
        assert frequencies[0] >= 0.9 and frequencies[1] >= 0.9

    def test_long_tail(self, dataset):
        frequencies = dataset.attribute_frequencies().values()
        rare = sum(1 for f in frequencies if f < 0.10)
        assert rare >= 0.78 * len(dataset.attribute_names)

    def test_every_entity_has_an_attribute(self, dataset):
        assert all(entity.attributes for entity in dataset.entities)

    def test_sparseness_near_paper_value(self, dataset):
        assert 0.85 <= dataset.sparseness() <= 0.97

    def test_deterministic(self):
        a = generate_dbpedia_persons(500, seed=3)
        b = generate_dbpedia_persons(500, seed=3)
        assert [e.attributes for e in a.entities] == [
            e.attributes for e in b.entities
        ]

    def test_different_seeds_differ(self):
        a = generate_dbpedia_persons(500, seed=3)
        b = generate_dbpedia_persons(500, seed=4)
        assert [e.attributes for e in a.entities] != [
            e.attributes for e in b.entities
        ]

    def test_dictionary_contains_all_attributes(self, dataset):
        d = dataset.dictionary()
        assert len(d) == len(dataset.attribute_names)

    def test_validation_guards(self):
        with pytest.raises(ValueError):
            generate_dbpedia_persons(10, n_attributes=5)
        with pytest.raises(ValueError):
            generate_dbpedia_persons(10, n_types=1)

    def test_entity_types_recorded(self, dataset):
        assert len(dataset.entity_types) == len(dataset)
        assert all(0 <= t < 20 for t in dataset.entity_types)


class TestQueryWorkload:
    @pytest.fixture(scope="class")
    def workload(self, dataset):
        d = dataset.dictionary()
        masks = [e.synopsis_mask(d) for e in dataset.entities]
        return d, masks, build_query_workload(masks, d, max_triples=50)

    def test_contains_singles_for_every_attribute(self, dataset, workload):
        _d, _masks, specs = workload
        singles = {s.query.attributes[0] for s in specs if s.arity == 1}
        assert singles == set(dataset.attribute_names)

    def test_pairs_and_triples_use_top20(self, workload):
        d, masks, specs = workload
        top = set(top_frequent_attributes(masks, d, 20))
        for spec in specs:
            if spec.arity > 1:
                assert set(spec.query.attributes) <= top

    def test_selectivity_is_true_match_fraction(self, workload):
        d, masks, specs = workload
        for spec in specs[:40]:
            qmask = spec.query.synopsis_mask(d)
            expected = sum(1 for m in masks if m & qmask) / len(masks)
            assert spec.selectivity == pytest.approx(expected)

    def test_selectivity_monotone_in_attributes(self, workload):
        """OR semantics: adding attributes can only widen the result."""
        d, masks, specs = workload
        by_attrs = {s.query.attributes: s.selectivity for s in specs}
        for attrs, selectivity in by_attrs.items():
            if len(attrs) == 2:
                for single in attrs:
                    assert selectivity >= by_attrs[(single,)] - 1e-12

    def test_top_frequent_ranking(self, workload):
        d, masks, _specs = workload
        top = top_frequent_attributes(masks, d, 5)
        counts = []
        for name in top:
            bit = 1 << d.id_of(name)
            counts.append(sum(1 for m in masks if m & bit))
        assert counts == sorted(counts, reverse=True)


class TestRepresentativeQueries:
    def test_at_most_three_per_bucket(self, dataset):
        d = dataset.dictionary()
        masks = [e.synopsis_mask(d) for e in dataset.entities]
        specs = build_query_workload(masks, d, max_triples=50)
        reps = representative_queries(specs, bucket_width=0.05, per_bucket=3)
        buckets: dict[int, int] = {}
        for spec in reps:
            key = int(spec.selectivity / 0.05)
            buckets[key] = buckets.get(key, 0) + 1
        assert all(count <= 3 for count in buckets.values())

    def test_sorted_by_selectivity(self, dataset):
        d = dataset.dictionary()
        masks = [e.synopsis_mask(d) for e in dataset.entities]
        specs = build_query_workload(masks, d, max_triples=50)
        reps = representative_queries(specs)
        selectivities = [s.selectivity for s in reps]
        assert selectivities == sorted(selectivities)

    def test_covers_high_and_low_selectivity(self, dataset):
        d = dataset.dictionary()
        masks = [e.synopsis_mask(d) for e in dataset.entities]
        reps = representative_queries(build_query_workload(masks, d, max_triples=50))
        assert reps[0].selectivity < 0.1
        assert reps[-1].selectivity > 0.8

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            representative_queries([], bucket_width=0)

    def test_deterministic(self, dataset):
        d = dataset.dictionary()
        masks = [e.synopsis_mask(d) for e in dataset.entities]
        a = representative_queries(build_query_workload(masks, d, max_triples=50))
        b = representative_queries(build_query_workload(masks, d, max_triples=50))
        assert [s.query.attributes for s in a] == [s.query.attributes for s in b]
