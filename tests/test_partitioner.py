"""Tests for the Cinderella partitioner (Algorithm 1 and Section III)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.core.sizes import AttributeCountSizeModel

masks = st.integers(min_value=0, max_value=2**24 - 1)


def make(max_size=10.0, weight=0.5, **kwargs) -> CinderellaPartitioner:
    return CinderellaPartitioner(
        CinderellaConfig(max_partition_size=max_size, weight=weight, **kwargs)
    )


class TestBasicInsert:
    """The Figure 2 scenarios."""

    def test_first_entity_opens_a_partition(self):
        p = make()
        outcome = p.insert(1, 0b111)
        assert outcome.created_partitions == [outcome.partition_id]
        assert len(p.catalog) == 1
        # the entity becomes split starter A (Algorithm 1, line 12)
        assert p.catalog.get(outcome.partition_id).starters.eid_a == 1

    def test_similar_entity_joins_existing_partition(self):
        p = make()
        pid = p.insert(1, 0b0111).partition_id
        outcome = p.insert(2, 0b0111)
        assert outcome.partition_id == pid
        assert outcome.created_partitions == []
        assert len(p.catalog) == 1

    def test_dissimilar_entity_opens_new_partition(self):
        """Negative best rating ⇒ CREATENEWPARTITION (lines 9-13)."""
        p = make()
        pid_camera = p.insert(1, 0b0000_1111).partition_id
        outcome = p.insert(2, 0b1111_0000)
        assert outcome.partition_id != pid_camera
        assert outcome.created_partitions == [outcome.partition_id]

    def test_entity_joins_best_rated_partition(self):
        p = make(weight=0.5)
        pid_a = p.insert(1, 0b00111).partition_id
        pid_b = p.insert(2, 0b11000).partition_id
        # 2/3 overlap with A's synopsis, none with B
        outcome = p.insert(3, 0b00110)
        assert outcome.partition_id == pid_a
        assert pid_a != pid_b

    def test_duplicate_insert_rejected(self):
        p = make()
        p.insert(1, 0b1)
        with pytest.raises(ValueError):
            p.insert(1, 0b1)

    def test_empty_mask_entities_group_together(self):
        p = make()
        pid = p.insert(1, 0).partition_id
        assert p.insert(2, 0).partition_id == pid
        # and attribute-bearing entities do not join them
        assert p.insert(3, 0b1).partition_id != pid

    def test_load_bulk_inserts(self):
        p = make()
        outcomes = p.load([(1, 0b11), (2, 0b11), (3, 0b11)])
        assert len(outcomes) == 3
        assert p.catalog.entity_count == 3


class TestSplit:
    def test_split_triggers_at_capacity(self):
        p = make(max_size=3)
        for eid in range(3):
            p.insert(eid, 0b11)
        assert p.split_count == 0
        outcome = p.insert(3, 0b11)
        assert outcome.splits == 1
        assert p.split_count == 1
        # the overfull partition is gone, replaced by (at least) two new ones
        assert len(outcome.created_partitions) >= 2
        assert len(outcome.dropped_partitions) == 1
        assert p.catalog.entity_count == 4

    def test_split_separates_starter_families(self):
        """Entities with two distinct schemas end up in distinct partitions."""
        p = make(max_size=4, weight=0.9)  # high weight: everything piles up
        family_a = 0b0000_0011
        family_b = 0b1100_0000
        p.insert(0, family_a)
        p.insert(1, family_a)
        p.insert(2, family_b)  # w=0.9 tolerates this heterogeneity
        p.insert(3, family_b)
        if len(p.catalog) == 1:
            p.insert(4, family_a)  # forces the split
            assert p.split_count >= 1
            by_family = {}
            for partition in p.catalog:
                for eid, mask, _size in partition.members():
                    by_family.setdefault(mask, set()).add(partition.pid)
            # each family now lives apart from the other
            assert by_family[family_a].isdisjoint(by_family[family_b])

    def test_split_respects_capacity_afterwards(self):
        p = make(max_size=5)
        for eid in range(50):
            p.insert(eid, 0b1111)
        assert p.check_invariants() == []
        for partition in p.catalog:
            assert partition.total_size <= 5

    def test_triggering_entity_is_placed_exactly_once(self):
        p = make(max_size=2)
        for eid in range(20):
            outcome = p.insert(eid, 0b11)
            placements = [m for m in outcome.moves if m.eid == eid]
            assert placements, "triggering entity must be physically placed"
            assert placements[0].from_pid is None
            assert p.catalog.partition_of(eid) == outcome.partition_id

    def test_moves_are_replayable(self):
        """The move list must describe a consistent physical relocation
        sequence: every move's source is where the entity currently is."""
        p = make(max_size=3)
        locations: dict[int, int] = {}
        for eid in range(40):
            outcome = p.insert(eid, 0b1 << (eid % 3))
            for move in outcome.moves:
                assert locations.get(move.eid) == move.from_pid
                locations[move.eid] = move.to_pid
            for pid in outcome.dropped_partitions:
                assert pid not in locations.values()
        assert locations == {
            eid: p.catalog.partition_of(eid) for eid in range(40)
        }


class TestDelete:
    def test_delete_keeps_partitioning(self):
        p = make()
        p.insert(1, 0b11)
        p.insert(2, 0b11)
        outcome = p.delete(1)
        assert outcome.partition_id is None
        assert outcome.dropped_partitions == []
        assert len(p.catalog) == 1

    def test_delete_drops_empty_partition(self):
        p = make()
        pid = p.insert(1, 0b11).partition_id
        outcome = p.delete(1)
        assert outcome.dropped_partitions == [pid]
        assert len(p.catalog) == 0

    def test_delete_unknown_raises(self):
        with pytest.raises(KeyError):
            make().delete(404)


class TestUpdate:
    def test_unchanged_entity_stays_in_place(self):
        p = make()
        pid = p.insert(1, 0b111).partition_id
        p.insert(2, 0b111)
        outcome = p.update(1, 0b111)
        assert outcome.in_place
        assert outcome.partition_id == pid
        assert outcome.moves == []

    def test_changed_entity_moves_to_better_partition(self):
        p = make()
        pid_a = p.insert(1, 0b000111).partition_id
        pid_b = p.insert(2, 0b111000).partition_id
        p.insert(3, 0b000111)  # entity 3 sits with family A
        outcome = p.update(3, 0b111000)
        assert not outcome.in_place
        assert outcome.partition_id == pid_b
        assert outcome.moves[0].from_pid == pid_a

    def test_update_to_unique_schema_opens_partition(self):
        p = make()
        p.insert(1, 0b11)
        p.insert(2, 0b11)
        outcome = p.update(2, 0b11 << 20)
        assert outcome.created_partitions == [outcome.partition_id]

    def test_update_emptying_source_drops_it(self):
        p = make()
        pid_a = p.insert(1, 0b11).partition_id
        p.insert(2, 0b11 << 10)
        outcome = p.update(1, 0b11 << 10)
        assert pid_a in outcome.dropped_partitions

    def test_update_synopsis_reflected_in_catalog(self):
        p = make()
        pid = p.insert(1, 0b01).partition_id
        p.update(1, 0b10)
        assert p.catalog.get(p.catalog.partition_of(1)).mask == 0b10


class TestSizeModels:
    def test_attribute_count_capacity(self):
        p = CinderellaPartitioner(
            CinderellaConfig(
                max_partition_size=6,
                weight=0.5,
                size_model=AttributeCountSizeModel(),
            )
        )
        p.insert(1, 0b111)  # size 3
        p.insert(2, 0b111)  # size 3 -> partition at capacity 6
        outcome = p.insert(3, 0b111)  # would be 9 > 6: split
        assert outcome.splits == 1

    def test_single_oversized_entity_allowed(self):
        p = CinderellaPartitioner(
            CinderellaConfig(
                max_partition_size=2,
                weight=0.5,
                size_model=AttributeCountSizeModel(),
            )
        )
        outcome = p.insert(1, 0b11111)  # size 5 > B, alone in its partition
        assert len(p.catalog.get(outcome.partition_id)) == 1
        assert p.check_invariants() == []


class TestAblations:
    def test_first_fit_selection_differs_from_best_fit(self):
        best = make(weight=0.5)
        first = make(weight=0.5, selection="first")
        # one loose partition then a perfect one; first-fit settles early
        for p in (best, first):
            p.insert(1, 0b0011)
            p.insert(2, 0b1111)
        # entity matching partition 2 exactly
        assert best.insert(3, 0b1111).partition_id == best.catalog.partition_of(2)
        # first-fit just needs *a* non-negative rating; either answer is
        # legal, but the scan must have stopped early:
        first.insert(3, 0b1111)
        assert first.ratings_computed <= best.ratings_computed

    def test_exact_starters_config_accepted(self):
        p = make(exact_starters=True)
        for eid in range(30):
            p.insert(eid, 0b1 << (eid % 4))
        assert p.check_invariants() == []


class TestInvariantsUnderRandomWorkloads:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "insert", "delete", "update"]),
                st.integers(0, 25),
                masks,
            ),
            max_size=80,
        ),
        st.floats(0.0, 1.0),
        st.integers(1, 8),
    )
    def test_catalog_always_consistent(self, ops, weight, capacity):
        p = make(max_size=capacity, weight=weight)
        live: set[int] = set()
        for kind, eid, mask in ops:
            if kind == "insert" and eid not in live:
                p.insert(eid, mask)
                live.add(eid)
            elif kind == "delete" and eid in live:
                p.delete(eid)
                live.discard(eid)
            elif kind == "update" and eid in live:
                p.update(eid, mask)
        assert p.check_invariants() == []
        assert p.catalog.entity_count == len(live)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(masks, min_size=1, max_size=60), st.floats(0.0, 1.0))
    def test_every_entity_in_exactly_one_partition(self, entity_masks, weight):
        p = make(max_size=7, weight=weight)
        for eid, mask in enumerate(entity_masks):
            p.insert(eid, mask)
        placed = [
            eid for partition in p.catalog for eid, _m, _s in partition.members()
        ]
        assert sorted(placed) == list(range(len(entity_masks)))
