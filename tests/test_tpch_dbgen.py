"""Tests for the TPC-H data generator."""

import pytest

from repro.workloads.tpch.dbgen import date_add, generate_tpch
from repro.workloads.tpch.schema import (
    MARKET_SEGMENTS,
    NATIONS,
    ORDER_PRIORITIES,
    REGIONS,
    SHIP_MODES,
    TABLES,
)


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale_factor=0.002, seed=7)


class TestCardinalities:
    def test_fixed_tables(self, data):
        assert len(data.table("region")) == 5
        assert len(data.table("nation")) == 25

    def test_scaled_tables(self, data):
        assert len(data.table("supplier")) == 20
        assert len(data.table("customer")) == 300
        assert len(data.table("part")) == 400
        assert len(data.table("partsupp")) == 1600
        assert len(data.table("orders")) == 3000

    def test_lineitem_one_to_seven_per_order(self, data):
        n_orders = len(data.table("orders"))
        n_lines = len(data.table("lineitem"))
        assert n_orders <= n_lines <= 7 * n_orders

    def test_scale_factor_scales(self):
        small = generate_tpch(scale_factor=0.001, seed=1)
        assert len(small.table("supplier")) == 10
        assert len(small.table("orders")) == 1500

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            generate_tpch(scale_factor=0)

    def test_unknown_table(self, data):
        with pytest.raises(KeyError):
            data.table("warehouse")


class TestSchemaConformance:
    def test_every_row_has_exactly_the_schema_columns(self, data):
        for schema in TABLES:
            for row in data.table(schema.name):
                assert tuple(sorted(row)) == tuple(sorted(schema.columns))

    def test_no_null_values(self, data):
        """TPC-H columns are all NOT NULL."""
        for schema in TABLES:
            for row in data.table(schema.name):
                assert all(value is not None for value in row.values())


class TestReferentialIntegrity:
    def test_nation_region_fk(self, data):
        region_keys = {r["r_regionkey"] for r in data.table("region")}
        assert all(n["n_regionkey"] in region_keys for n in data.table("nation"))

    def test_supplier_and_customer_nation_fk(self, data):
        nation_keys = {n["n_nationkey"] for n in data.table("nation")}
        assert all(s["s_nationkey"] in nation_keys for s in data.table("supplier"))
        assert all(c["c_nationkey"] in nation_keys for c in data.table("customer"))

    def test_partsupp_fks(self, data):
        part_keys = {p["p_partkey"] for p in data.table("part")}
        supp_keys = {s["s_suppkey"] for s in data.table("supplier")}
        for ps in data.table("partsupp"):
            assert ps["ps_partkey"] in part_keys
            assert ps["ps_suppkey"] in supp_keys

    def test_lineitem_references_valid_partsupp(self, data):
        pairs = {
            (ps["ps_partkey"], ps["ps_suppkey"]) for ps in data.table("partsupp")
        }
        for line in data.table("lineitem"):
            assert (line["l_partkey"], line["l_suppkey"]) in pairs

    def test_orders_skip_custkeys_divisible_by_three(self, data):
        assert all(o["o_custkey"] % 3 != 0 for o in data.table("orders"))

    def test_lineitem_order_fk(self, data):
        order_keys = {o["o_orderkey"] for o in data.table("orders")}
        assert all(
            line["l_orderkey"] in order_keys for line in data.table("lineitem")
        )


class TestValueDomains:
    def test_region_and_nation_names(self, data):
        assert {r["r_name"] for r in data.table("region")} == set(REGIONS)
        assert {n["n_name"] for n in data.table("nation")} == {
            name for name, _region in NATIONS
        }

    def test_categorical_columns(self, data):
        assert {c["c_mktsegment"] for c in data.table("customer")} <= set(
            MARKET_SEGMENTS
        )
        assert {o["o_orderpriority"] for o in data.table("orders")} <= set(
            ORDER_PRIORITIES
        )
        assert {l["l_shipmode"] for l in data.table("lineitem")} <= set(SHIP_MODES)

    def test_lineitem_numeric_ranges(self, data):
        for line in data.table("lineitem"):
            assert 1 <= line["l_quantity"] <= 50
            assert 0.0 <= line["l_discount"] <= 0.10
            assert 0.0 <= line["l_tax"] <= 0.08

    def test_lineitem_date_ordering(self, data):
        for line in data.table("lineitem"):
            assert line["l_shipdate"] < line["l_receiptdate"]

    def test_phone_country_codes_encode_nation(self, data):
        for c in data.table("customer"):
            assert int(c["c_phone"][:2]) == 10 + c["c_nationkey"]

    def test_brands_reference_manufacturers(self, data):
        for p in data.table("part"):
            mfgr = int(p["p_mfgr"].split("#")[1])
            brand = int(p["p_brand"].split("#")[1])
            assert brand // 10 == mfgr


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_tpch(scale_factor=0.001, seed=5)
        b = generate_tpch(scale_factor=0.001, seed=5)
        assert a.table("lineitem") == b.table("lineitem")

    def test_different_seed_different_data(self):
        a = generate_tpch(scale_factor=0.001, seed=5)
        b = generate_tpch(scale_factor=0.001, seed=6)
        assert a.table("lineitem") != b.table("lineitem")


class TestDateHelper:
    def test_date_add(self):
        assert date_add("1994-01-01", 90) == "1994-04-01"
        assert date_add("1994-01-01", -1) == "1993-12-31"
