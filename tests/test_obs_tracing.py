"""Unit battery for tracing, events, export, and the runtime switch.

Covers span nesting, exception-safe close, the bounded digests
(finished ring, aggregates, slow ops), the event ring's wraparound
accounting, JSONL export, and the zero-cost-when-disabled contract of
the module-level helpers.
"""

import pytest

from repro import obs
from repro.metrics.timing import Timer
from repro.obs.events import EventLog
from repro.obs.tracing import NOOP_SPAN, Tracer


@pytest.fixture(autouse=True)
def _always_disable():
    """No test leaves the process-wide switch on."""
    yield
    obs.disable()


class TestSpanNesting:
    def test_children_attach_to_the_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child_a") as child_a:
                with tracer.span("leaf"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [child.name for child in root.children] == ["child_a", "child_b"]
        assert [leaf.name for leaf in child_a.children] == ["leaf"]
        assert [span.name for span in root.walk()] == [
            "root", "child_a", "leaf", "child_b",
        ]

    def test_only_roots_land_in_the_finished_ring(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.finished] == ["root"]

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert 0.0 <= child.duration_s <= root.duration_s

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("op", eid=7) as span:
            span.set("outcome", "ok")
        assert span.attributes == {"eid": 7, "outcome": "ok"}

    def test_current_span_follows_the_stack(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("root") as root:
            assert tracer.current_span() is root
        assert tracer.current_span() is None


class TestExceptionSafety:
    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fails") as span:
                raise ValueError("boom")
        assert span.error == "ValueError: boom"
        assert span.ended_s >= span.started_s
        assert tracer.current_span() is None
        assert "error" in span.to_dict()

    def test_stack_unwinds_past_leaked_children(self):
        """A frame that crashed without closing its child spans must not
        corrupt the stack for the next operation."""
        tracer = Tracer()
        root = tracer.span("root")
        root.__enter__()
        leaked = tracer.span("leaked")
        leaked.__enter__()
        # root closes while its child is still open (crashed frame)
        root.__exit__(None, None, None)
        assert tracer.current_span() is None
        with tracer.span("next_op"):
            assert tracer.current_span().name == "next_op"


class TestDigests:
    def test_finished_ring_wraps_and_counts_drops(self):
        tracer = Tracer(max_finished=2)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert [span.name for span in tracer.finished] == ["op3", "op4"]
        assert tracer.roots_finished == 5
        assert tracer.traces_dropped == 3

    def test_aggregates_and_top_spans(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("frequent"):
                pass
        with tracer.span("rare"):
            pass
        ranked = dict(
            (name, count) for name, count, _total in tracer.top_spans()
        )
        assert ranked == {"frequent": 3, "rare": 1}

    def test_slow_ops_capture_threshold_crossers(self):
        tracer = Tracer(slow_threshold_s=0.0)  # everything is slow
        with tracer.span("crawl", eid=1):
            pass
        assert tracer.slow_ops_seen == 1
        entry = tracer.slow_ops[0]
        assert entry["name"] == "crawl"
        assert entry["attributes"] == {"eid": 1}

    def test_no_threshold_means_no_slow_ops(self):
        tracer = Tracer(slow_threshold_s=None)
        with tracer.span("op"):
            pass
        assert tracer.slow_ops_seen == 0

    def test_recent_traces_and_find_trace(self):
        tracer = Tracer()
        for index in range(3):
            with tracer.span(f"op{index}"):
                pass
        assert [s.name for s in tracer.recent_traces(2)] == ["op1", "op2"]
        assert tracer.find_trace("op0").name == "op0"
        assert tracer.find_trace("nope") is None


class TestEventLog:
    def test_wraparound_keeps_newest_and_counts_dropped(self):
        log = EventLog(capacity=3)
        for index in range(7):
            log.emit("tick", i=index)
        assert [event.fields["i"] for event in log.events()] == [4, 5, 6]
        assert log.emitted == 7
        assert log.dropped == 4
        assert len(log) == 3

    def test_no_drops_below_capacity(self):
        log = EventLog(capacity=8)
        log.emit("tick")
        assert log.dropped == 0

    def test_kind_can_collide_with_a_payload_field(self):
        log = EventLog()
        event = log.emit("txn.rollback", kind="merge")
        assert event.kind == "txn.rollback"
        assert event.fields == {"kind": "merge"}

    def test_of_kind_exact_and_prefix(self):
        log = EventLog()
        log.emit("fault.crash", node=1)
        log.emit("fault.recover", node=1)
        log.emit("ingest.rejected")
        assert len(log.of_kind("fault.crash")) == 1
        assert len(log.of_kind("fault.")) == 2


class TestJsonlExport:
    def test_roots_export_as_nested_documents(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        obs.enable(trace_jsonl_path=path)
        with obs.span("root", eid=1):
            with obs.span("child"):
                pass
        with obs.span("another"):
            pass
        obs.disable()
        documents = obs.read_jsonl_traces(path)
        assert [doc["name"] for doc in documents] == ["root", "another"]
        assert documents[0]["attributes"] == {"eid": 1}
        assert [c["name"] for c in documents[0]["children"]] == ["child"]


class TestRuntimeSwitch:
    def test_disabled_helpers_are_noops(self):
        assert not obs.is_enabled()
        assert obs.span("anything") is NOOP_SPAN
        with obs.span("anything") as span:
            span.set("ignored", 1)
        assert not span.is_recording
        # none of these may raise or allocate state while disabled
        obs.inc("nope_total")
        obs.observe("nope_seconds", 0.1)
        obs.gauge_set("nope", 1)
        obs.event("nope.kind")
        assert obs.state() is None
        assert obs.registry() is None

    def test_enable_records_and_disable_freezes(self):
        state = obs.enable(slow_op_threshold_s=None)
        obs.inc("ops_total", help_text="ops")
        obs.observe("lat_seconds", 0.2)
        obs.gauge_set("depth", 4)
        obs.event("thing.happened", detail=1)
        with obs.span("op"):
            pass
        returned = obs.disable()
        assert returned is state
        assert state.registry.get_value("ops_total") == 1
        assert state.registry.get("lat_seconds")._unlabeled().count == 1
        assert state.registry.get_value("depth") == 4
        assert state.events.of_kind("thing.happened")[0].fields == {"detail": 1}
        assert state.tracer.roots_finished == 1
        # and the switch is really off again
        assert obs.span("op") is NOOP_SPAN

    def test_labeled_helpers_create_labeled_families(self):
        obs.enable()
        obs.inc("txn_total", kind="merge", outcome="ok")
        obs.inc("txn_total", kind="merge", outcome="ok")
        state = obs.disable()
        assert state.registry.get_value(
            "txn_total", kind="merge", outcome="ok"
        ) == 2

    def test_metrics_only_mode_has_no_tracer(self):
        obs.enable(trace=False)
        assert obs.span("op") is NOOP_SPAN
        obs.inc("ops_total")
        state = obs.disable()
        assert state.tracer is None
        assert state.registry.get_value("ops_total") == 1

    def test_bound_span_histogram_observes_span_durations(self):
        obs.bind_span_histogram(
            "obs_test.bound_op", "obs_test_bound_seconds", "bound"
        )
        try:
            obs.enable()
            for _ in range(3):
                with obs.span("obs_test.bound_op"):
                    pass
            state = obs.disable()
            child = state.registry.get("obs_test_bound_seconds")._unlabeled()
            assert child.count == 3
            assert child.sum == pytest.approx(
                state.tracer.aggregates["obs_test.bound_op"][1]
            )
        finally:
            from repro.obs import runtime

            runtime._SPAN_HISTOGRAMS.pop("obs_test.bound_op", None)

    def test_timer_routes_through_registry(self):
        obs.enable()
        with Timer(metric="timer_seconds", help_text="timed") as timer:
            pass
        state = obs.disable()
        child = state.registry.get("timer_seconds")._unlabeled()
        assert child.count == 1
        assert child.sum == pytest.approx(timer.elapsed_s)

    def test_timer_without_metric_stays_registry_free(self):
        obs.enable()
        with Timer():
            pass
        state = obs.disable()
        # span-bound histogram families materialize at enable(); the
        # metric-less Timer itself must not create anything
        assert all(
            "timer" not in family.name
            for family in state.registry.families()
        )
