"""Tests of the public API surface and cross-module contracts."""

import importlib
import inspect

import pytest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.catalog",
            "repro.storage",
            "repro.table",
            "repro.query",
            "repro.cost",
            "repro.engine",
            "repro.workloads",
            "repro.workloads.tpch",
            "repro.baselines",
            "repro.metrics",
            "repro.reporting",
            "repro.maintenance",
            "repro.tuning",
            "repro.adapt",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__, f"{name} lacks a docstring"


class TestCrossModuleContracts:
    def test_table_uses_partitioner_config(self):
        from repro import CinderellaConfig, CinderellaTable

        config = CinderellaConfig(max_partition_size=7, weight=0.4)
        table = CinderellaTable(config)
        assert table.config is config
        assert table.partitioner.config is config

    def test_execution_result_plan_round_trips_to_catalog(self):
        from repro import AttributeQuery, CinderellaConfig, CinderellaTable

        table = CinderellaTable(CinderellaConfig(max_partition_size=5, weight=0.4))
        table.insert({"a": 1})
        table.insert({"b": 2})
        result = table.execute(AttributeQuery(("a",)))
        assert result.plan is not None
        for pid in result.plan.branch_pids:
            assert pid in table.catalog

    def test_size_model_consistency_between_rating_and_capacity(self):
        """The same SIZE() feeds ratings, capacity, and efficiency."""
        from repro import (
            AttributeCountSizeModel,
            CinderellaConfig,
            CinderellaPartitioner,
        )

        config = CinderellaConfig(
            max_partition_size=100, weight=0.4, size_model=AttributeCountSizeModel()
        )
        p = CinderellaPartitioner(config)
        p.insert(1, 0b111)
        partition = p.catalog.get(p.catalog.partition_of(1))
        assert partition.total_size == 3.0  # |e| under the attribute model

    def test_workload_entities_flow_into_tables(self):
        from repro import CinderellaTable
        from repro.workloads import generate_dbpedia_persons

        dataset = generate_dbpedia_persons(50, seed=1)
        table = CinderellaTable()
        for entity in dataset.entities:
            table.insert(entity.attributes, entity_id=entity.entity_id)
        assert len(table) == 50
        assert table.check_consistency() == []
