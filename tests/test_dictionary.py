"""Tests for the attribute dictionary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.dictionary import AttributeDictionary, UnknownAttributeError

attr_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


class TestIntern:
    def test_assigns_sequential_ids(self):
        d = AttributeDictionary()
        assert d.intern("name") == 0
        assert d.intern("weight") == 1
        assert d.intern("screen") == 2

    def test_is_idempotent(self):
        d = AttributeDictionary()
        assert d.intern("name") == d.intern("name") == 0
        assert len(d) == 1

    def test_rejects_empty_name(self):
        d = AttributeDictionary()
        with pytest.raises(ValueError):
            d.intern("")

    def test_rejects_non_string(self):
        d = AttributeDictionary()
        with pytest.raises(ValueError):
            d.intern(42)

    def test_constructor_seeds_names(self):
        d = AttributeDictionary(["a", "b", "c"])
        assert d.id_of("b") == 1
        assert len(d) == 3


class TestLookup:
    def test_id_of_known(self):
        d = AttributeDictionary(["x"])
        assert d.id_of("x") == 0

    def test_id_of_unknown_raises(self):
        d = AttributeDictionary()
        with pytest.raises(UnknownAttributeError):
            d.id_of("missing")

    def test_name_of(self):
        d = AttributeDictionary(["x", "y"])
        assert d.name_of(1) == "y"

    def test_name_of_out_of_range_raises(self):
        d = AttributeDictionary(["x"])
        with pytest.raises(UnknownAttributeError):
            d.name_of(5)

    def test_contains(self):
        d = AttributeDictionary(["x"])
        assert "x" in d
        assert "y" not in d

    def test_iter_in_bit_order(self):
        d = AttributeDictionary(["b", "a", "c"])
        assert list(d) == ["b", "a", "c"]
        assert d.names() == ("b", "a", "c")


class TestEncodeDecode:
    def test_encode_sets_bits(self):
        d = AttributeDictionary(["a", "b", "c"])
        assert d.encode(["a", "c"]) == 0b101

    def test_encode_interns_new(self):
        d = AttributeDictionary()
        mask = d.encode(["p", "q"])
        assert mask == 0b11
        assert len(d) == 2

    def test_encode_known_ignores_unknown(self):
        d = AttributeDictionary(["a"])
        assert d.encode_known(["a", "nope"]) == 0b1
        assert len(d) == 1

    def test_decode_roundtrip(self):
        d = AttributeDictionary(["a", "b", "c", "d"])
        assert d.decode(d.encode(["d", "a"])) == ("a", "d")

    def test_decode_zero(self):
        d = AttributeDictionary(["a"])
        assert d.decode(0) == ()

    def test_decode_negative_raises(self):
        d = AttributeDictionary()
        with pytest.raises(ValueError):
            d.decode(-1)

    def test_universe_mask(self):
        d = AttributeDictionary(["a", "b", "c"])
        assert d.universe_mask() == 0b111

    @given(st.lists(attr_names, max_size=20))
    def test_roundtrip_property(self, names):
        d = AttributeDictionary()
        mask = d.encode(names)
        assert set(d.decode(mask)) == set(names)
        assert mask.bit_count() == len(set(names))
