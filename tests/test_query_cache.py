"""Unit tests: partition content versions and the query result cache."""

import pytest

from repro.catalog.catalog import PartitionCatalog, PartitionNotFoundError
from repro.core.config import CinderellaConfig
from repro.metrics.telemetry import QueryPathCounters
from repro.query.cache import QueryResultCache, verify_cache_coherence
from repro.query.executor import execute_union_all
from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan
from repro.table.partitioned import CinderellaTable


def fast_table(max_partition_size=4.0, weight=0.3, cache=None):
    """A table with the whole fast path on: index + result cache."""
    return CinderellaTable(
        CinderellaConfig(
            max_partition_size=max_partition_size,
            weight=weight,
            use_synopsis_index=True,
        ),
        result_cache=cache if cache is not None else QueryResultCache(),
    )


class TestPartitionVersions:
    def test_every_mutation_bumps(self):
        catalog = PartitionCatalog()
        partition = catalog.create_partition()
        v0 = catalog.version_of(partition.pid)
        catalog.add_entity(partition.pid, 1, 0b1, 1.0)
        v1 = catalog.version_of(partition.pid)
        assert v1 > v0
        catalog.update_entity(1, 0b11, 1.0)
        v2 = catalog.version_of(partition.pid)
        assert v2 > v1
        catalog.add_entity(partition.pid, 2, 0b1, 1.0)
        catalog.remove_entity(1)
        v3 = catalog.version_of(partition.pid)
        assert v3 > v2

    def test_clock_is_global_and_monotonic(self):
        catalog = PartitionCatalog()
        a = catalog.create_partition()
        b = catalog.create_partition()
        catalog.add_entity(a.pid, 1, 0b1, 1.0)
        catalog.add_entity(b.pid, 2, 0b1, 1.0)
        # the two partitions never share a version value
        assert catalog.version_of(a.pid) != catalog.version_of(b.pid)
        assert catalog.version_clock >= max(
            catalog.version_of(a.pid), catalog.version_of(b.pid)
        )

    def test_drop_forgets_version(self):
        catalog = PartitionCatalog()
        partition = catalog.create_partition()
        catalog.drop_partition(partition.pid)
        with pytest.raises(PartitionNotFoundError):
            catalog.version_of(partition.pid)

    def test_version_of_unknown_pid_raises(self):
        with pytest.raises(PartitionNotFoundError):
            PartitionCatalog().version_of(99)

    def test_rollback_keeps_clock_monotonic(self):
        """Undo must advance versions, not restore them — otherwise an
        entry cached mid-transaction could validate again after rollback."""
        catalog = PartitionCatalog()
        partition = catalog.create_partition()
        catalog.add_entity(partition.pid, 1, 0b1, 1.0)
        version_before = catalog.version_of(partition.pid)
        clock_before = catalog.version_clock
        txn = catalog.begin_transaction()
        catalog.add_entity(partition.pid, 2, 0b10, 1.0)
        mid_version = catalog.version_of(partition.pid)
        txn.rollback()
        after = catalog.version_of(partition.pid)
        assert after > mid_version > version_before
        assert catalog.version_clock > clock_before
        assert catalog.check_invariants() == []

    def test_rollback_recreated_pid_gets_fresh_version(self):
        """A pid dropped and re-created through undo must not present a
        version any cache entry could have been stored under."""
        catalog = PartitionCatalog()
        partition = catalog.create_partition()
        catalog.add_entity(partition.pid, 1, 0b1, 1.0)
        seen = {catalog.version_of(partition.pid)}
        txn = catalog.begin_transaction()
        catalog.remove_entity(1)
        catalog.drop_partition(partition.pid)
        txn.rollback()
        assert catalog.version_of(partition.pid) not in seen
        assert catalog.check_invariants() == []

    def test_adopt_version_clock_restamps_everything(self):
        old = PartitionCatalog()
        p_old = old.create_partition()
        old.add_entity(p_old.pid, 1, 0b1, 1.0)
        rebuilt = PartitionCatalog()
        p_new = rebuilt.create_partition()  # same pid 0 as in `old`
        assert p_new.pid == p_old.pid
        rebuilt.adopt_version_clock(old.version_clock)
        assert rebuilt.version_of(p_new.pid) > old.version_of(p_old.pid)
        assert rebuilt.version_clock >= old.version_clock

    def test_version_invariants_detect_corruption(self):
        catalog = PartitionCatalog()
        partition = catalog.create_partition()
        catalog._versions[partition.pid] = catalog.version_clock + 10
        assert any("version clock" in p for p in catalog.check_invariants())
        del catalog._versions[partition.pid]
        assert any("version map" in p for p in catalog.check_invariants())


class TestQueryResultCache:
    def test_roundtrip_and_stale_drop(self):
        cache = QueryResultCache()
        query = AttributeQuery(("a",))
        cache.store(query, pid=0, version=3, rows=[{"a": 1}, {"a": 2}])
        assert cache.lookup(query, 0, 3) == [{"a": 1}, {"a": 2}]
        assert cache.lookup(query, 0, 4) is None  # partition mutated
        assert len(cache) == 0  # the stale entry was dropped on sight

    def test_served_rows_are_copies(self):
        cache = QueryResultCache()
        query = AttributeQuery(("a",))
        source = [{"a": 1}]
        cache.store(query, 0, 1, source)
        source[0]["a"] = 99  # caller mutates its list after storing
        served = cache.lookup(query, 0, 1)
        assert served == [{"a": 1}]
        served[0]["a"] = -1  # and mutates what it was served
        assert cache.lookup(query, 0, 1) == [{"a": 1}]

    def test_distinct_queries_never_collide(self):
        cache = QueryResultCache()
        # same known attribute, but different projection / mode: the key
        # is the query identity, not its synopsis mask
        q_plain = AttributeQuery(("a",))
        q_ghost = AttributeQuery(("a", "ghost"))
        q_all = AttributeQuery(("a",), mode="all")
        cache.store(q_plain, 0, 1, [{"a": 1}])
        cache.store(q_ghost, 0, 1, [{"a": 1, "ghost": None}])
        cache.store(q_all, 0, 1, [{"a": 1}])
        assert cache.lookup(q_plain, 0, 1) == [{"a": 1}]
        assert cache.lookup(q_ghost, 0, 1) == [{"a": 1, "ghost": None}]
        assert len(cache) == 3

    def test_lru_eviction_and_counters(self):
        counters = QueryPathCounters()
        cache = QueryResultCache(max_entries=2, counters=counters)
        query = AttributeQuery(("a",))
        cache.store(query, 0, 1, [])
        cache.store(query, 1, 1, [])
        assert cache.lookup(query, 0, 1) == []  # 0 is now most recent
        cache.store(query, 2, 1, [])  # evicts pid 1 (least recent)
        assert cache.lookup(query, 1, 1) is None
        assert cache.lookup(query, 0, 1) == []
        assert counters.cache_evictions == 1
        assert counters.cache_hits == 2
        assert counters.cache_misses == 1

    def test_invalidate_partition_and_clear(self):
        cache = QueryResultCache()
        q1, q2 = AttributeQuery(("a",)), AttributeQuery(("b",))
        cache.store(q1, 0, 1, [])
        cache.store(q2, 0, 1, [])
        cache.store(q1, 1, 1, [])
        assert cache.invalidate_partition(0) == 2
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            QueryResultCache(max_entries=0)

    def test_cache_requires_catalog(self):
        plan = UnionAllPlan(AttributeQuery(("a",)), (), ())
        with pytest.raises(ValueError):
            execute_union_all(plan, {}, None, cache=QueryResultCache())


class TestTableFastPath:
    def test_repeat_query_hits_and_skips_io(self):
        table = fast_table()
        for eid in range(6):
            table.insert({"a": eid, "b": eid * 2}, entity_id=eid)
        query = AttributeQuery(("a",))
        cold = table.execute(query)
        warm = table.execute(query)
        assert warm.rows == cold.rows
        assert cold.stats.cache_misses == cold.stats.partitions_scanned > 0
        assert warm.stats.cache_hits == cold.stats.cache_misses
        assert warm.stats.partitions_scanned == 0
        assert warm.stats.pages_read == 0
        assert warm.stats.entities_read == 0
        assert table.query_counters.rows_served_from_cache == len(cold.rows)

    @pytest.mark.parametrize("mutate", ["insert", "update", "delete"])
    def test_mutations_invalidate_exactly(self, mutate):
        table = fast_table(max_partition_size=100.0)
        for eid in range(4):
            table.insert({"a": eid}, entity_id=eid)
        query = AttributeQuery(("a",))
        table.execute(query)
        if mutate == "insert":
            table.insert({"a": 99}, entity_id=99)
        elif mutate == "update":
            table.update(0, {"a": -1})
        else:
            table.delete(0)
        result = table.execute(query)
        assert result.stats.cache_hits == 0  # the partition's version moved
        assert result.rows == table.execute_naive(query).rows
        assert verify_cache_coherence(table.result_cache, table) == []

    def test_update_of_values_only_invalidates(self):
        """Same attribute set, new value: the synopsis is unchanged but
        the cached rows are not — the version must still move."""
        table = fast_table(max_partition_size=100.0)
        table.insert({"a": 1}, entity_id=0)
        query = AttributeQuery(("a",))
        assert table.execute(query).rows == [{"a": 1}]
        table.update(0, {"a": 2})
        assert table.execute(query).rows == [{"a": 2}]

    def test_split_invalidates(self):
        table = fast_table(max_partition_size=2.0)
        table.insert({"a": 1, "b": 1}, entity_id=0)
        query = AttributeQuery(("a",))
        table.execute(query)
        # same schema keeps rating positive; capacity 2 forces a split
        table.insert({"a": 2, "b": 2}, entity_id=1)
        table.insert({"a": 3, "b": 3}, entity_id=2)
        assert table.partitioner.split_count >= 1
        result = table.execute(query)
        assert result.rows == table.execute_naive(query).rows
        assert sorted(r["a"] for r in result.rows) == [1, 2, 3]
        assert verify_cache_coherence(table.result_cache, table) == []

    def test_merge_invalidates(self):
        # two schema-compatible partitions built under a tiny limit...
        table = fast_table(max_partition_size=1.0)
        table.insert({"a": 1}, entity_id=0)
        table.insert({"a": 2}, entity_id=1)
        assert table.partition_count() == 2
        query = AttributeQuery(("a",))
        before = table.execute(query)
        # ...then merged once the limit is relaxed
        table.partitioner.config = CinderellaConfig(
            max_partition_size=10.0, weight=0.3, use_synopsis_index=True
        )
        report = table.merge_small_partitions(min_fill=0.9)
        assert report.merge_count == 1
        after = table.execute(query)
        assert after.stats.cache_hits == 0
        assert sorted(r["a"] for r in after.rows) == sorted(
            r["a"] for r in before.rows
        )
        assert verify_cache_coherence(table.result_cache, table) == []
        assert table.check_consistency() == []

    def test_reorganize_invalidates_and_rebuilds_physically(self):
        table = fast_table(max_partition_size=3.0)
        for eid in range(9):
            table.insert({f"a{eid % 3}": eid}, entity_id=eid)
        queries = [AttributeQuery((f"a{i}",)) for i in range(3)]
        before = [table.execute(q).rows for q in queries]
        clock_before = table.catalog.version_clock
        report = table.reorganize(order="size")
        assert report.partitioner is table.partitioner
        assert table.catalog.version_clock > clock_before
        assert table.check_consistency() == []
        for query, rows in zip(queries, before):
            result = table.execute(query)
            assert result.stats.cache_hits == 0  # every version re-stamped
            assert result.rows == table.execute_naive(query).rows
            assert sorted(map(str, result.rows)) == sorted(map(str, rows))
        assert verify_cache_coherence(table.result_cache, table) == []

    def test_counters_as_dict_and_rates(self):
        counters = QueryPathCounters()
        assert counters.cache_hit_rate() == 1.0
        assert counters.pruning_ratio() == 0.0
        counters.cache_hits = 3
        counters.cache_misses = 1
        counters.partitions_considered = 10
        counters.partitions_pruned = 4
        as_dict = counters.as_dict()
        assert as_dict["cache_hit_rate"] == 0.75
        assert as_dict["pruning_ratio"] == 0.4
        assert as_dict["cache_hits"] == 3

    def test_uncached_table_still_counts_queries(self):
        table = CinderellaTable(CinderellaConfig(max_partition_size=10.0))
        table.insert({"a": 1}, entity_id=0)
        table.execute(AttributeQuery(("a",)))
        assert table.query_counters.queries_total == 1
        assert table.query_counters.catalog_scan_resolutions == 1
        assert table.query_counters.index_resolutions == 0
