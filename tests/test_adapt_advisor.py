"""Tests of the online cost-based advisor (the predict/decide stages)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt.advisor import (
    AdaptationReport,
    LayoutSketch,
    advise_adaptation,
    predicted_workload_ms,
)
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.cost.model import CostModel


def replay_sketch(masks, config):
    """The live layout a mask sequence produces under a config."""
    partitioner = CinderellaPartitioner(config)
    for eid, mask in enumerate(masks):
        partitioner.insert(eid, mask)
    return LayoutSketch.from_catalog(partitioner.catalog)


def grouped_masks(groups=6, per_group=40):
    """Disjoint group masks plus one attribute shared by everyone."""
    common = 1
    masks = []
    for i in range(groups * per_group):
        group = i % groups
        masks.append(common | (0b111 << (1 + 3 * group)))
    return masks


class TestPredictedWorkloadMs:
    def test_empty_inputs_cost_nothing(self):
        model = CostModel()
        assert predicted_workload_ms(
            LayoutSketch(()), {0b1: 1.0}, model) == 0.0
        sketch = LayoutSketch(((0b1, 10, 10.0),))
        assert predicted_workload_ms(sketch, {}, model) == 0.0
        assert predicted_workload_ms(sketch, {0b1: 0.0}, model) == 0.0

    def test_pruning_prices_only_overlapping_partitions(self):
        model = CostModel()
        split = LayoutSketch(((0b01, 50, 50.0), (0b10, 50, 50.0)))
        merged = LayoutSketch(((0b11, 100, 100.0),))
        selective = {0b01: 1.0}
        # the split layout prunes the irrelevant half; the merged one
        # reads everything
        assert (predicted_workload_ms(split, selective, model)
                < predicted_workload_ms(merged, selective, model))

    def test_broad_queries_pay_per_branch(self):
        model = CostModel()
        fine = LayoutSketch(tuple((0b1, 5, 5.0) for _ in range(20)))
        coarse = LayoutSketch(tuple((0b1, 50, 50.0) for _ in range(2)))
        broad = {0b1: 1.0}
        # same rows everywhere: the fine layout pays 20 union branches
        # and 20 page ceilings, the coarse one pays 2
        assert (predicted_workload_ms(coarse, broad, model)
                < predicted_workload_ms(fine, broad, model))

    def test_weights_scale_linearly(self):
        model = CostModel()
        sketch = LayoutSketch(((0b1, 10, 10.0),))
        once = predicted_workload_ms(sketch, {0b1: 1.0}, model)
        thrice = predicted_workload_ms(sketch, {0b1: 3.0}, model)
        assert thrice == pytest.approx(3.0 * once)

    def test_scale_multiplies_sampled_entity_counts(self):
        model = CostModel()
        sampled = LayoutSketch(((0b1, 10, 10.0),), scale=10.0)
        full = LayoutSketch(((0b1, 100, 100.0),))
        profile = {0b1: 1.0}
        assert predicted_workload_ms(
            sampled, profile, model
        ) == pytest.approx(predicted_workload_ms(full, profile, model))


class TestAdviseAdaptation:
    def test_empty_profile_keeps(self):
        masks = grouped_masks()
        current = replay_sketch(
            masks, CinderellaConfig(max_partition_size=30.0, weight=0.3)
        )
        report = advise_adaptation(masks, current, {})
        assert report.best.kind == "keep"
        assert report.evaluated == 0

    def test_broad_shift_on_fine_layout_recommends_coarser(self):
        """The validated demo scenario: fine layout, broad scans."""
        masks = grouped_masks()
        config = CinderellaConfig(max_partition_size=30.0, weight=0.3)
        current = replay_sketch(masks, config)
        assert current.partition_count > 6  # finer than one-per-group
        report = advise_adaptation(
            masks, current, {1: 64.0}, current_config=config,
            horizon_queries=500.0,
        )
        best = report.best
        assert best.kind == "reorganize"
        assert best.partitions_after < current.partition_count
        assert best.predicted_win_ms > 0.0
        assert best.win_fraction > 0.0
        assert best.config is not None

    def test_selective_workload_on_matching_layout_keeps(self):
        """A per-group layout already prunes per-group queries."""
        masks = grouped_masks()
        config = CinderellaConfig(max_partition_size=300.0, weight=0.3)
        current = replay_sketch(masks, config)
        profile = {0b111 << (1 + 3 * g): 10.0 for g in range(6)}
        report = advise_adaptation(
            masks, current, profile, current_config=config,
            horizon_queries=500.0,
        )
        assert report.best.kind == "keep"

    def test_plans_ranked_by_win_and_keep_is_last(self):
        masks = grouped_masks()
        config = CinderellaConfig(max_partition_size=30.0, weight=0.3)
        current = replay_sketch(masks, config)
        report = advise_adaptation(
            masks, current, {1: 64.0}, current_config=config,
            horizon_queries=500.0,
        )
        wins = [plan.predicted_win_ms for plan in report.plans[:-1]]
        assert wins == sorted(wins, reverse=True)
        assert all(win > 0.0 for win in wins)
        assert report.plans[-1].kind == "keep"

    def test_short_horizon_suppresses_expensive_actions(self):
        """Amortized over one query, a full reorganization (which moves
        every entity and recreates every partition) cannot pay off; only
        the cheap merge candidate may still clear its cost."""
        masks = grouped_masks()
        config = CinderellaConfig(max_partition_size=30.0, weight=0.3)
        current = replay_sketch(masks, config)
        report = advise_adaptation(
            masks, current, {1: 64.0}, current_config=config,
            horizon_queries=1.0,
        )
        assert report.best.kind != "reorganize"
        assert all(plan.kind != "reorganize" for plan in report.plans)

    def test_current_config_is_skipped_as_a_candidate(self):
        masks = grouped_masks()
        total = len(masks)
        config = CinderellaConfig(
            max_partition_size=round(0.05 * total), weight=0.3
        )
        current = replay_sketch(masks, config)
        report = advise_adaptation(
            masks, current, {1: 4.0}, current_config=config,
            weights=(0.3,), size_fractions=(0.05,),
            merge_min_fill=0.0,  # no merge candidate either
        )
        assert report.evaluated == 0  # the only grid point is the no-op

    def test_report_as_dict_round_trips_to_json_types(self):
        import json

        masks = grouped_masks(groups=3, per_group=20)
        config = CinderellaConfig(max_partition_size=20.0, weight=0.3)
        current = replay_sketch(masks, config)
        report = advise_adaptation(
            masks, current, {1: 32.0}, current_config=config
        )
        assert isinstance(report, AdaptationReport)
        document = json.loads(json.dumps(report.as_dict()))
        assert document["best"]["kind"] in ("keep", "reorganize", "merge")
        assert document["evaluated"] >= 0


# strategy: entities drawn from a handful of overlapping mask families,
# profiles over single-attribute and combined probes
entity_masks_strategy = st.lists(
    st.sampled_from([0b0001, 0b0011, 0b0110, 0b1100, 0b1111, 0b1010]),
    min_size=8, max_size=120,
)
profile_strategy = st.dictionaries(
    st.sampled_from([0b0001, 0b0010, 0b0100, 0b1000, 0b0101, 0b1111]),
    st.floats(min_value=0.1, max_value=64.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=5,
)


class TestRecommendationContract:
    """The pinned property: the advisor never recommends a predicted loss."""

    @settings(max_examples=25, deadline=None)
    @given(
        entity_masks_strategy,
        profile_strategy,
        st.sampled_from([4.0, 10.0, 30.0]),
        st.sampled_from([1.0, 50.0, 2_000.0]),
    )
    def test_best_is_keep_or_a_strict_predicted_win(
        self, masks, profile, max_size, horizon
    ):
        config = CinderellaConfig(max_partition_size=max_size, weight=0.3)
        current = replay_sketch(masks, config)
        report = advise_adaptation(
            masks, current, profile, current_config=config,
            horizon_queries=horizon,
        )
        best = report.best
        if best.kind == "keep":
            assert best.predicted_win_ms == 0.0
        else:
            # a recommended plan is strictly cheaper than staying put,
            # with the physical action cost already amortized in
            assert best.predicted_win_ms > 0.0
            assert best.predicted_plan_ms < best.predicted_current_ms
            assert best.win_fraction > 0.0
        # and this holds for every ranked plan, not just the winner
        for plan in report.plans:
            if plan.kind != "keep":
                assert plan.predicted_plan_ms < plan.predicted_current_ms
