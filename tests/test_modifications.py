"""Tests for the modification-trace generator and replays."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.modifications import (
    generate_trace,
    replay,
    replay_logical,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dbpedia_persons(600, seed=12)


class TestGenerateTrace:
    def test_warmup_is_pure_inserts(self, dataset):
        trace = generate_trace(dataset, operations=50, warmup=100, seed=2)
        assert all(op.kind == "insert" for op in trace[:100])
        assert len(trace) >= 100

    def test_operation_mix_roughly_matches_shares(self, dataset):
        trace = generate_trace(
            dataset, operations=400, insert_share=0.5, update_share=0.3,
            warmup=100, seed=2,
        )
        mixed = trace[100:]
        counts = {"insert": 0, "update": 0, "delete": 0}
        for op in mixed:
            counts[op.kind] += 1
        total = sum(counts.values())
        assert counts["insert"] / total == pytest.approx(0.5, abs=0.12)
        assert counts["update"] / total == pytest.approx(0.3, abs=0.12)

    def test_trace_is_valid(self, dataset):
        """Inserts never duplicate; updates/deletes only touch live ids."""
        trace = generate_trace(dataset, operations=300, warmup=50, seed=3)
        live = set()
        for op in trace:
            if op.kind == "insert":
                assert op.entity_id not in live
                assert op.attributes
                live.add(op.entity_id)
            elif op.kind == "update":
                assert op.entity_id in live
                assert op.attributes
            else:
                assert op.entity_id in live
                live.remove(op.entity_id)

    def test_deterministic(self, dataset):
        a = generate_trace(dataset, operations=100, warmup=20, seed=9)
        b = generate_trace(dataset, operations=100, warmup=20, seed=9)
        assert a == b

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            generate_trace(dataset, operations=10, insert_share=1.5)
        with pytest.raises(ValueError):
            generate_trace(dataset, operations=10, insert_share=0.7,
                           update_share=0.7)
        with pytest.raises(ValueError):
            generate_trace(dataset, operations=10, warmup=10_000)

    def test_survives_data_exhaustion(self, dataset):
        trace = generate_trace(
            dataset, operations=3000, insert_share=0.9, update_share=0.05,
            warmup=0, seed=4,
        )
        inserts = sum(1 for op in trace if op.kind == "insert")
        assert inserts <= len(dataset.entities)


class TestReplay:
    def test_replay_against_physical_table(self, dataset):
        trace = generate_trace(dataset, operations=150, warmup=80, seed=6)
        table = CinderellaTable(CinderellaConfig(max_partition_size=40, weight=0.3))
        counts = replay(trace, table)
        assert sum(counts.values()) == len(trace)
        assert table.check_consistency() == []
        live = counts["insert"] - counts["delete"]
        assert len(table) == live

    def test_replay_logical_matches_physical_placement(self, dataset):
        trace = generate_trace(dataset, operations=150, warmup=80, seed=6)
        table = CinderellaTable(CinderellaConfig(max_partition_size=40, weight=0.3))
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=40, weight=0.3)
        )
        replay(trace, table)
        replay_logical(trace, partitioner, table.dictionary)
        def signature(catalog):
            return sorted(tuple(sorted(p.entity_ids())) for p in catalog)

        assert signature(table.catalog) == signature(partitioner.catalog)
