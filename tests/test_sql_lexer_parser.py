"""Tests for the SQL lexer and parser."""

import pytest

from repro.sql.ast import (
    And,
    Comparison,
    LikePredicate,
    Not,
    NullPredicate,
    Or,
    OrderItem,
)
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_tokenizes_a_full_statement(self):
        tokens = tokenize("SELECT a, b FROM t WHERE a = 1")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "KEYWORD", "IDENT", "COMMA", "IDENT", "KEYWORD", "IDENT",
            "KEYWORD", "IDENT", "OP", "NUMBER", "EOF",
        ]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select A from T")
        assert tokens[0].text == "SELECT"
        assert tokens[1].text == "A"  # identifiers keep their case

    def test_string_literals_with_escaped_quote(self):
        tokens = tokenize("SELECT a FROM t WHERE a = 'it''s'")
        assert tokens[-2].kind == "STRING"
        assert tokens[-2].text == "it's"

    def test_numbers(self):
        tokens = tokenize("SELECT a FROM t WHERE a > 3.5")
        assert tokens[-2] .text == "3.5"

    def test_multi_char_operators(self):
        assert [t.text for t in tokenize("a <= 1 <> >= !=")[:5]] == [
            "a", "<=", "1", "<>", ">=",
        ]

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT a FROM t WHERE a = 'oops")

    def test_unexpected_character_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT a; DROP TABLE t")


class TestParser:
    def test_simple_select(self):
        statement = parse("SELECT a, b FROM universalTable")
        assert statement.columns == ("a", "b")
        assert statement.table == "universalTable"
        assert statement.where is None

    def test_select_star(self):
        assert parse("SELECT * FROM t").columns is None

    def test_the_papers_query_form(self):
        statement = parse(
            "SELECT a1, a2 FROM universalTable "
            "WHERE a1 IS NOT NULL OR a2 IS NOT NULL"
        )
        where = statement.where
        assert isinstance(where, Or)
        assert where.left == NullPredicate("a1", negated=True)
        assert where.right == NullPredicate("a2", negated=True)

    def test_precedence_and_binds_tighter_than_or(self):
        where = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").where
        assert isinstance(where, Or)
        assert isinstance(where.right, And)

    def test_parentheses_override_precedence(self):
        where = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3").where
        assert isinstance(where, And)
        assert isinstance(where.left, Or)

    def test_not_and_comparisons(self):
        where = parse("SELECT a FROM t WHERE NOT a >= 10").where
        assert where == Not(Comparison("a", ">=", 10))

    def test_like_and_not_like(self):
        assert parse("SELECT a FROM t WHERE a LIKE 'x%'").where == LikePredicate(
            "a", "x%"
        )
        assert parse(
            "SELECT a FROM t WHERE a NOT LIKE '%y'"
        ).where == LikePredicate("a", "%y", negated=True)

    def test_literals(self):
        assert parse("SELECT a FROM t WHERE a = 'str'").where.value == "str"
        assert parse("SELECT a FROM t WHERE a = 5").where.value == 5
        assert parse("SELECT a FROM t WHERE a = 5.5").where.value == 5.5
        assert parse("SELECT a FROM t WHERE a = TRUE").where.value is True
        assert parse("SELECT a FROM t WHERE a = NULL").where.value is None
        assert parse("SELECT a FROM t WHERE a <> 1").where.op == "!="

    def test_order_by_and_limit(self):
        statement = parse(
            "SELECT a, b FROM t ORDER BY a DESC, b ASC LIMIT 10"
        )
        assert statement.order_by == (
            OrderItem("a", descending=True),
            OrderItem("b", descending=False),
        )
        assert statement.limit == 10

    def test_errors(self):
        for bad in (
            "SELECT FROM t",
            "SELECT a t",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a",
            "SELECT a FROM t WHERE a IS",
            "SELECT a FROM t LIMIT 1.5",
            "SELECT a FROM t LIMIT -1",
            "SELECT a, a FROM t",
            "SELECT a FROM t garbage",
            "SELECT a FROM t WHERE a = ",
        ):
            with pytest.raises(SqlSyntaxError):
                parse(bad)
