"""Run the doctests embedded in module and class docstrings.

Documentation examples are part of the public API contract; this test
keeps them executable.
"""

import doctest

import pytest

import repro.catalog.dictionary
import repro.core.partitioner
import repro.core.synopsis
import repro.core.workload_mode
import repro.metrics.telemetry
import repro.metrics.timing

MODULES = [
    repro.catalog.dictionary,
    repro.core.partitioner,
    repro.core.synopsis,
    repro.core.workload_mode,
    repro.metrics.telemetry,
    repro.metrics.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
