"""Tests for workload-based Cinderella (Section III)."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.workload_mode import WorkloadBasedPartitioner, WorkloadSynopsisEncoder


class TestEncoder:
    def test_encode_marks_relevant_queries(self):
        encoder = WorkloadSynopsisEncoder([0b011, 0b100, 0b110])
        assert encoder.encode(0b001) == 0b001  # only query 0
        assert encoder.encode(0b100) == 0b110  # queries 1 and 2
        assert encoder.encode(0b111) == 0b111

    def test_encode_irrelevant_entity(self):
        encoder = WorkloadSynopsisEncoder([0b1])
        assert encoder.encode(0b10) == 0

    def test_query_synopsis(self):
        encoder = WorkloadSynopsisEncoder([0b1, 0b10])
        assert encoder.query_synopsis(0) == 0b01
        assert encoder.query_synopsis(1) == 0b10
        with pytest.raises(IndexError):
            encoder.query_synopsis(2)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSynopsisEncoder([])

    def test_properties(self):
        encoder = WorkloadSynopsisEncoder([0b1, 0b10])
        assert encoder.query_count == 2
        assert encoder.query_masks == (0b1, 0b10)


class TestWorkloadBasedPartitioner:
    def workload(self):
        # queries in attribute space: q0 = {a}, q1 = {c,d}
        return [0b0011, 0b1100]

    def test_entities_cluster_by_query_relevance(self):
        p = WorkloadBasedPartitioner(
            self.workload(), CinderellaConfig(max_partition_size=10, weight=0.4)
        )
        # both relevant only to q0 — even with different attribute sets
        pid_1 = p.insert(1, 0b0001).partition_id
        pid_2 = p.insert(2, 0b0010).partition_id
        assert pid_1 == pid_2
        # relevant only to q1: separate partition
        pid_3 = p.insert(3, 0b1000).partition_id
        assert pid_3 != pid_1

    def test_partitions_for_query(self):
        p = WorkloadBasedPartitioner(
            self.workload(), CinderellaConfig(max_partition_size=10, weight=0.4)
        )
        p.insert(1, 0b0001)
        p.insert(2, 0b1000)
        q0_partitions = p.partitions_for_query(0)
        q1_partitions = p.partitions_for_query(1)
        assert p.catalog.partition_of(1) in q0_partitions
        assert p.catalog.partition_of(1) not in q1_partitions
        assert p.catalog.partition_of(2) in q1_partitions

    def test_delete_and_update_pass_through(self):
        p = WorkloadBasedPartitioner(
            self.workload(), CinderellaConfig(max_partition_size=10, weight=0.4)
        )
        p.insert(1, 0b0001)
        p.update(1, 0b1000)
        assert p.partitions_for_query(1) == [p.catalog.partition_of(1)]
        p.delete(1)
        assert p.catalog.entity_count == 0
