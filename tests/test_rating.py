"""Tests for the Cinderella rating (Section IV formulas)."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rating import (
    entity_heterogeneity_score,
    global_rating,
    homogeneity_score,
    local_rating,
    partition_heterogeneity_score,
    rate,
    rate_fast,
)

masks = st.integers(min_value=0, max_value=2**60 - 1)
sizes = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_subnormal=False
)
weights = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestScoreFormulas:
    def test_homogeneity(self):
        # h+ = (SIZE(p) + SIZE(e)) * |e ∧ p|
        assert homogeneity_score(10.0, 1.0, 3) == 33.0

    def test_entity_heterogeneity(self):
        # he- = SIZE(e) * |¬e ∧ p|
        assert entity_heterogeneity_score(2.0, 4) == 8.0

    def test_partition_heterogeneity(self):
        # hp- = SIZE(p) * |e ∧ ¬p|
        assert partition_heterogeneity_score(10.0, 2) == 20.0

    def test_local_rating_balances_evidence(self):
        # r' = w*h+ - (1-w)(he- + hp-)
        assert local_rating(0.5, 30.0, 4.0, 6.0) == 0.5 * 30 - 0.5 * 10

    def test_local_rating_weight_zero_is_pure_negative(self):
        assert local_rating(0.0, 100.0, 1.0, 0.0) == -1.0

    def test_local_rating_weight_one_ignores_heterogeneity(self):
        assert local_rating(1.0, 5.0, 100.0, 100.0) == 5.0

    def test_global_rating_normalizes(self):
        assert global_rating(10.0, 4.0, 1.0, 2) == 10.0 / 10.0

    def test_global_rating_zero_denominator_is_zero(self):
        assert global_rating(0.0, 0.0, 0.0, 0) == 0.0


class TestWorkedExample:
    """Hand-computed example: entity {a,b,c} against partition {a,b,d,e}."""

    E_MASK = 0b00111  # a, b, c
    P_MASK = 0b11011  # a, b, d, e

    def test_breakdown(self):
        breakdown = rate(self.E_MASK, self.P_MASK, 1.0, 10.0, 0.5)
        # |e ∧ p| = 2 (a, b); |¬e ∧ p| = 2 (d, e); |e ∧ ¬p| = 1 (c)
        assert breakdown.homogeneity == (10 + 1) * 2
        assert breakdown.entity_heterogeneity == 1 * 2
        assert breakdown.partition_heterogeneity == 10 * 1
        assert breakdown.local == 0.5 * 22 - 0.5 * 12
        # |e ∨ p| = 5
        assert breakdown.global_ == pytest.approx(5.0 / (11 * 5))


class TestRateFastEquivalence:
    @given(masks, masks, sizes, sizes, weights)
    def test_matches_reference(self, e_mask, p_mask, size_e, size_p, weight):
        reference = rate(e_mask, p_mask, size_e, size_p, weight).global_
        fast = rate_fast(
            e_mask,
            e_mask.bit_count(),
            size_e,
            p_mask,
            p_mask.bit_count(),
            size_p,
            weight,
        )
        assert fast == pytest.approx(reference, rel=1e-9, abs=1e-9)


class TestRatingProperties:
    @given(masks, sizes, sizes, weights)
    def test_identical_synopses_rate_non_negative(self, mask, size_e, size_p, weight):
        breakdown = rate(mask, mask, size_e, size_p, weight)
        assert breakdown.global_ >= 0.0

    @given(masks, masks, sizes, sizes)
    def test_weight_zero_negative_iff_any_heterogeneity(
        self, e_mask, p_mask, size_e, size_p
    ):
        breakdown = rate(e_mask, p_mask, size_e, size_p, 0.0)
        heterogeneity = (
            breakdown.entity_heterogeneity + breakdown.partition_heterogeneity
        )
        if heterogeneity > 0:
            assert breakdown.global_ < 0.0
        else:
            assert breakdown.global_ == 0.0

    @given(masks, masks, weights)
    def test_global_rating_bounded(self, e_mask, p_mask, weight):
        """|r| is bounded: numerator terms are each ≤ (SIZE sum)·|e∨p|."""
        value = rate(e_mask, p_mask, 1.0, 7.0, weight).global_
        assert -1.0 <= value <= 1.0

    def test_disjoint_synopses_rate_negative(self):
        assert rate(0b11, 0b1100, 1.0, 5.0, 0.5).global_ < 0.0

    def test_empty_entity_against_empty_partition_is_perfect(self):
        assert rate(0, 0, 1.0, 3.0, 0.5).global_ == 0.0

    def test_higher_weight_never_lowers_rating(self):
        low = rate(0b111, 0b110, 1.0, 5.0, 0.2).global_
        high = rate(0b111, 0b110, 1.0, 5.0, 0.8).global_
        assert high >= low
