"""Failure-injection tests: corrupted data and misuse must fail loudly.

"Errors should never pass silently" — every corruption or misuse below
must surface as a specific exception or as a reported inconsistency,
never as silently wrong answers.
"""

import pytest

from repro.catalog.dictionary import AttributeDictionary
from repro.core.config import CinderellaConfig
from repro.query.query import AttributeQuery
from repro.storage.record import RecordFormatError, deserialize_record, serialize_record
from repro.storage.snapshot import SnapshotFormatError, load_table, save_table
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable


def build_table() -> CinderellaTable:
    table = CinderellaTable(CinderellaConfig(max_partition_size=3, weight=0.4))
    for i in range(9):
        table.insert({"a": i} if i % 2 else {"b": i}, entity_id=i)
    return table


class TestRecordCorruption:
    def test_bit_flips_are_detected_or_decode_differently(self):
        """A flipped byte either raises or changes the payload — the
        format never silently yields the original data."""
        dictionary = AttributeDictionary()
        record = serialize_record(1, {"name": "Canon", "weight": 198}, dictionary)
        original = deserialize_record(record, dictionary)
        for position in range(len(record)):
            corrupted = bytearray(record)
            corrupted[position] ^= 0xFF
            try:
                decoded = deserialize_record(bytes(corrupted), dictionary)
            except (RecordFormatError, KeyError, UnicodeDecodeError):
                continue  # loud failure: good
            assert decoded != original, f"silent corruption at byte {position}"

    def test_truncation_always_raises(self):
        dictionary = AttributeDictionary()
        record = serialize_record(7, {"x": "abcdefgh", "y": 123}, dictionary)
        for cut in range(1, len(record)):
            with pytest.raises(RecordFormatError):
                deserialize_record(record[:cut], dictionary)


class TestCatalogCorruptionDetection:
    def test_synopsis_tampering_reported(self):
        table = build_table()
        partition = next(iter(table.catalog))
        partition.mask ^= 0b1000_0000
        assert table.check_consistency() != []

    def test_size_tampering_reported(self):
        table = build_table()
        partition = next(iter(table.catalog))
        partition.total_size += 5
        assert any("size" in p for p in table.check_consistency())

    def test_location_map_tampering_reported(self):
        table = build_table()
        catalog = table.catalog
        eid = next(iter(catalog)).entity_ids()[0]
        other = [p.pid for p in catalog if eid not in p][0]
        catalog._entity_to_pid[eid] = other
        assert table.check_consistency() != []

    def test_starter_tampering_reported(self):
        table = build_table()
        partition = next(p for p in table.catalog if len(p) >= 2)
        partition.starters.eid_a = 999_999
        assert any("starter" in p for p in table.check_consistency())


class TestSnapshotCorruption:
    """Snapshot files damaged on disk must always be rejected loudly."""

    def snapshot_bytes(self, tmp_path):
        path = tmp_path / "table.snapshot.json"
        save_table(build_table(), path)
        return path, path.read_bytes()

    def test_truncation_always_raises(self, tmp_path):
        path, data = self.snapshot_bytes(tmp_path)
        for cut in range(0, len(data), 13):
            path.write_bytes(data[:cut])
            with pytest.raises(SnapshotFormatError):
                load_table(path)

    def test_byte_flips_always_raise(self, tmp_path):
        path, data = self.snapshot_bytes(tmp_path)
        for position in range(0, len(data), 11):
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            path.write_bytes(bytes(corrupted))
            with pytest.raises(SnapshotFormatError):
                load_table(path)

    def test_valid_json_tampering_caught_by_checksum(self, tmp_path):
        """Edits that keep the JSON well-formed still fail the checksum."""
        path, data = self.snapshot_bytes(tmp_path)
        text = data.decode("utf-8")
        assert '"weight": 0.4' in text
        path.write_text(text.replace('"weight": 0.4', '"weight": 0.9'))
        with pytest.raises(SnapshotFormatError):
            load_table(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            load_table(tmp_path / "never-written.json")


class TestMisuse:
    def test_insert_duplicate_entity_id(self):
        table = build_table()
        with pytest.raises(ValueError):
            table.insert({"a": 1}, entity_id=0)

    def test_delete_twice(self):
        table = build_table()
        table.delete(0)
        with pytest.raises(KeyError):
            table.delete(0)

    def test_update_after_delete(self):
        table = build_table()
        table.delete(0)
        with pytest.raises(KeyError):
            table.update(0, {"a": 1})

    def test_get_missing_entity(self):
        table = build_table()
        with pytest.raises(KeyError):
            table.get(404)

    def test_universal_table_same_guards(self):
        table = UniversalTable()
        table.insert({"a": 1}, entity_id=1)
        with pytest.raises(ValueError):
            table.insert({"a": 2}, entity_id=1)
        with pytest.raises(KeyError):
            table.delete(2)

    def test_invalid_config_rejected_up_front(self):
        with pytest.raises(ValueError):
            CinderellaConfig(weight=1.5)
        with pytest.raises(ValueError):
            CinderellaConfig(max_partition_size=0)
        with pytest.raises(ValueError):
            CinderellaConfig(selection="random")

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            AttributeQuery(())


class TestQueryRobustness:
    def test_query_on_empty_table(self):
        table = CinderellaTable()
        result = table.execute(AttributeQuery(("anything",)))
        assert result.rows == []
        assert result.stats.partitions_total == 0

    def test_query_after_everything_deleted(self):
        table = build_table()
        for eid in range(9):
            table.delete(eid)
        result = table.execute(AttributeQuery(("a",)))
        assert result.rows == []
        assert table.partition_count() == 0

    def test_query_for_never_seen_attribute(self):
        table = build_table()
        result = table.execute(AttributeQuery(("never_inserted",)))
        assert result.rows == []
        assert result.stats.entities_read == 0  # fully pruned
