"""Tests for snapshot persistence of Cinderella tables."""

import json

import pytest

from repro.core.config import CinderellaConfig
from repro.core.sizes import AttributeCountSizeModel
from repro.query.query import AttributeQuery
from repro.storage.snapshot import SnapshotFormatError, load_table, save_table
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons


def build_table() -> CinderellaTable:
    table = CinderellaTable(CinderellaConfig(max_partition_size=30, weight=0.3))
    dataset = generate_dbpedia_persons(300, seed=8)
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    return table


class TestRoundtrip:
    def test_partition_membership_preserved(self, tmp_path):
        table = build_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)

        def signature(t):
            return sorted(tuple(sorted(p.entity_ids())) for p in t.catalog)

        assert signature(restored) == signature(table)
        assert restored.check_consistency() == []

    def test_entity_payloads_preserved(self, tmp_path):
        table = build_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)
        for eid in list(table.entity_masks())[:25]:
            assert restored.get(eid).attributes == table.get(eid).attributes

    def test_query_results_identical(self, tmp_path):
        table = build_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)
        query = AttributeQuery(("occupation", "team"))
        assert sorted(map(repr, restored.execute(query).rows)) == sorted(
            map(repr, table.execute(query).rows)
        )

    def test_config_preserved(self, tmp_path):
        table = CinderellaTable(
            CinderellaConfig(
                max_partition_size=7,
                weight=0.25,
                size_model=AttributeCountSizeModel(),
                use_synopsis_index=True,
            )
        )
        table.insert({"a": 1})
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)
        assert restored.config.max_partition_size == 7
        assert restored.config.weight == 0.25
        assert isinstance(restored.config.size_model, AttributeCountSizeModel)
        assert restored.config.use_synopsis_index

    def test_restored_table_accepts_new_inserts(self, tmp_path):
        table = build_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        restored = load_table(path)
        outcome = restored.insert({"name": "new person", "occupation": "tester"})
        assert outcome.entity_id not in table  # fresh id beyond the old range
        assert restored.check_consistency() == []

    def test_value_types_survive(self, tmp_path):
        table = CinderellaTable(CinderellaConfig(max_partition_size=10, weight=0.5))
        original = {
            "s": "text", "i": -5, "f": 2.5, "t": True,
            "n": None, "b": b"\x01\x02",
        }
        eid = table.insert(original).entity_id
        path = tmp_path / "snap.json"
        save_table(table, path)
        assert load_table(path).get(eid).attributes == original


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            load_table(tmp_path / "missing.json")

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(SnapshotFormatError):
            load_table(path)

    def test_wrong_version(self, tmp_path):
        table = build_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotFormatError):
            load_table(path)

    def test_malformed_body(self, tmp_path):
        table = build_table()
        path = tmp_path / "snap.json"
        save_table(table, path)
        document = json.loads(path.read_text())
        del document["config"]["weight"]
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotFormatError):
            load_table(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotFormatError):
            load_table(path)
