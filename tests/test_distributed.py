"""Tests for the distributed cluster simulation and query routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_partitioner import HashPartitioner
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.cluster import PlacementError, SimulatedCluster
from repro.distributed.store import DistributedUniversalStore, NetworkCostModel

masks = st.integers(min_value=0, max_value=2**20 - 1)


class TestSimulatedCluster:
    def test_least_loaded_placement(self):
        cluster = SimulatedCluster(3)
        assert cluster.place_partition(0, 10.0) == 0
        assert cluster.place_partition(1, 5.0) == 1
        assert cluster.place_partition(2, 1.0) == 2
        # node 2 has the least load now
        assert cluster.place_partition(3, 1.0) == 2

    def test_drop_frees_load(self):
        cluster = SimulatedCluster(2)
        cluster.place_partition(0, 10.0)
        cluster.drop_partition(0)
        assert cluster.loads() == [0.0, 0.0]
        assert cluster.partition_count == 0

    def test_resize_adjusts_load_and_size(self):
        cluster = SimulatedCluster(1)
        cluster.place_partition(0, 2.0)
        cluster.resize_partition(0, 3.0)
        assert cluster.loads() == [5.0]
        assert cluster.partition_size(0) == 5.0

    def test_resize_below_zero_rejected(self):
        cluster = SimulatedCluster(2)
        cluster.place_partition(0, 2.0)
        with pytest.raises(PlacementError):
            cluster.resize_partition(0, -3.0)
        # the failed resize must not have touched size or load
        assert cluster.partition_size(0) == 2.0
        assert sorted(cluster.loads()) == [0.0, 2.0]

    def test_resize_unknown_partition_rejected(self):
        with pytest.raises(PlacementError):
            SimulatedCluster(1).resize_partition(9, 1.0)

    def test_resize_to_exactly_zero_allowed(self):
        cluster = SimulatedCluster(1)
        cluster.place_partition(0, 2.0)
        cluster.resize_partition(0, -2.0)
        assert cluster.partition_size(0) == 0.0
        assert cluster.loads() == [0.0]

    def test_double_placement_rejected(self):
        cluster = SimulatedCluster(1)
        cluster.place_partition(0)
        with pytest.raises(PlacementError):
            cluster.place_partition(0)

    def test_unknown_partition_rejected(self):
        with pytest.raises(PlacementError):
            SimulatedCluster(1).node_of(9)

    def test_imbalance_metric(self):
        cluster = SimulatedCluster(2)
        cluster.place_partition(0, 10.0)
        cluster.place_partition(1, 10.0)
        assert cluster.imbalance() == 1.0
        assert SimulatedCluster(2).imbalance() == 1.0  # empty: balanced

    def test_nodes_for_partitions(self):
        cluster = SimulatedCluster(4)
        for pid in range(4):
            cluster.place_partition(pid, 1.0)
        assert cluster.nodes_for_partitions([0, 1]) == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)


class TestDistributedStore:
    def make_store(self, nodes=4, b=5, w=0.4):
        return DistributedUniversalStore(
            nodes,
            CinderellaPartitioner(CinderellaConfig(max_partition_size=b, weight=w)),
        )

    def test_insert_places_partitions(self):
        store = self.make_store()
        store.insert(1, 0b0011)
        store.insert(2, 0b1100)
        assert store.cluster.partition_count == 2
        assert store.check_placement() == []

    def test_splits_keep_placement_consistent(self):
        store = self.make_store(b=3)
        for eid in range(30):
            store.insert(eid, 0b11)
        assert store.check_placement() == []
        assert store.cluster.partition_count == len(store.catalog)

    def test_deletes_and_updates_keep_placement_consistent(self):
        store = self.make_store(b=4)
        for eid in range(20):
            store.insert(eid, 0b0011 if eid % 2 else 0b1100)
        for eid in range(0, 20, 3):
            store.delete(eid)
        for eid in range(1, 20, 4):
            if store.catalog.has_entity(eid):
                store.update(eid, 0b1111_0000)
        assert store.check_placement() == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "insert", "delete", "update"]),
                st.integers(0, 20),
                masks,
            ),
            max_size=60,
        )
    )
    def test_placement_consistency_under_random_workloads(self, operations):
        store = self.make_store(b=4, w=0.5)
        live: set[int] = set()
        for kind, eid, mask in operations:
            if kind == "insert" and eid not in live:
                store.insert(eid, mask)
                live.add(eid)
            elif kind == "delete" and eid in live:
                store.delete(eid)
                live.discard(eid)
            elif kind == "update" and eid in live:
                store.update(eid, mask)
        assert store.check_placement() == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "insert", "delete", "update", "query"]),
                st.integers(0, 20),
                masks,
            ),
            max_size=60,
        )
    )
    def test_placement_consistent_after_every_step(self, operations):
        """The placement invariants hold after *each* operation, not
        just at the end — with replication in play."""
        store = DistributedUniversalStore(
            3,
            CinderellaPartitioner(
                CinderellaConfig(max_partition_size=4, weight=0.5)
            ),
            replication_factor=2,
        )
        live: set[int] = set()
        for kind, eid, mask in operations:
            if kind == "insert" and eid not in live:
                store.insert(eid, mask)
                live.add(eid)
            elif kind == "delete" and eid in live:
                store.delete(eid)
                live.discard(eid)
            elif kind == "update" and eid in live:
                store.update(eid, mask)
            elif kind == "query":
                store.route_query(mask)
            assert store.check_placement() == []

    def test_routing_contacts_only_relevant_nodes(self):
        store = self.make_store(nodes=4, b=50)
        for eid in range(40):
            store.insert(eid, 0b0011 if eid % 2 else 0b1100)
        stats = store.route_query(0b0001)
        assert stats.nodes_contacted < stats.nodes_total
        assert stats.partitions_pruned >= 1
        assert stats.entities_returned == 20
        assert stats.latency_ms > 0

    def test_routing_empty_result(self):
        store = self.make_store()
        store.insert(1, 0b1)
        stats = store.route_query(0b1000)
        assert stats.nodes_contacted == 0
        assert stats.latency_ms == 0.0

    def test_non_empty_partitioner_rejected(self):
        partitioner = CinderellaPartitioner()
        partitioner.insert(1, 0b1)
        with pytest.raises(ValueError):
            DistributedUniversalStore(2, partitioner)

    def test_hash_partitioner_contacts_every_node(self):
        """Schema-oblivious placement loses the routing benefit."""
        nodes = 4
        hash_store = DistributedUniversalStore(
            nodes, HashPartitioner(num_partitions=16)
        )
        cinderella_store = self.make_store(nodes=nodes, b=50)
        for eid in range(200):
            mask = 0b0011 if eid % 2 else 0b1100
            hash_store.insert(eid, mask)
            cinderella_store.insert(eid, mask)
        hash_stats = hash_store.route_query(0b0001)
        cinderella_stats = cinderella_store.route_query(0b0001)
        assert hash_stats.nodes_contacted == nodes
        assert cinderella_stats.nodes_contacted < nodes
        # total remote work halves; note that *single-query latency* can
        # still favour hash (it parallelises the relevant data over all
        # nodes) — Cinderella's distributed win is fan-out and total work
        assert cinderella_stats.entities_scanned < hash_stats.entities_scanned


class TestNetworkCostModel:
    def test_parallel_latency_is_slowest_node(self):
        model = NetworkCostModel(round_trip_ms=1.0, remote_scan_ms=1.0,
                                 transfer_ms=0.0)
        latency = model.query_latency_ms({0: 10.0, 1: 50.0}, {0: 1.0, 1: 1.0})
        assert latency == 1.0 + 50.0

    def test_transfer_term(self):
        model = NetworkCostModel(round_trip_ms=0.0, remote_scan_ms=0.0,
                                 transfer_ms=2.0)
        assert model.query_latency_ms({0: 5.0}, {0: 3.0}) == 6.0

    def test_no_nodes_no_latency(self):
        assert NetworkCostModel().query_latency_ms({}, {}) == 0.0
