"""Tests for split-starter maintenance (Algorithm 1, lines 12/15-24)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.starters import SplitStarters

masks = st.integers(min_value=0, max_value=2**40 - 1)


def diff(a: int, b: int) -> int:
    return (a ^ b).bit_count()


class TestInitialPair:
    def test_first_entity_becomes_starter_a(self):
        s = SplitStarters()
        s.observe(1, 0b1)
        assert s.eid_a == 1 and s.eid_b is None
        assert not s.complete

    def test_second_entity_becomes_starter_b(self):
        s = SplitStarters()
        s.observe(1, 0b1)
        s.observe(2, 0b10)
        assert (s.eid_a, s.eid_b) == (1, 2)
        assert s.complete
        assert s.current_diff() == 2

    def test_re_observing_a_starter_is_a_no_op(self):
        s = SplitStarters()
        s.observe(1, 0b1)
        s.observe(1, 0b1)
        assert s.eid_b is None
        s.observe(2, 0b10)
        s.observe(2, 0b10)
        assert (s.eid_a, s.eid_b) == (1, 2)


class TestReplacementRule:
    def test_entity_replaces_b_when_pair_with_a_wins(self):
        s = SplitStarters()
        s.observe(1, 0b0011)  # A
        s.observe(2, 0b0111)  # B, diff(A,B) = 1
        s.observe(3, 0b1100)  # diff(e,A) = 4 is max -> replaces B
        assert (s.eid_a, s.eid_b) == (1, 3)
        assert s.current_diff() == 4

    def test_entity_replaces_a_when_pair_with_b_wins(self):
        s = SplitStarters()
        s.observe(1, 0b0111)  # A
        s.observe(2, 0b0011)  # B, diff = 1
        s.observe(3, 0b1100)  # diff(e,A)=3, diff(e,B)=4 -> replaces A
        assert (s.eid_a, s.eid_b) == (3, 2)
        assert s.current_diff() == 4

    def test_entity_ignored_when_current_pair_already_best(self):
        s = SplitStarters()
        s.observe(1, 0b1111_0000)
        s.observe(2, 0b0000_1111)  # diff = 8
        s.observe(3, 0b1111_0011)  # diff to A = 2, to B = 6 -> keep pair
        assert (s.eid_a, s.eid_b) == (1, 2)

    @given(st.lists(st.tuples(st.integers(0, 10_000), masks), min_size=1, max_size=40))
    def test_pair_diff_never_decreases(self, observations):
        s = SplitStarters()
        best = 0
        seen: set[int] = set()
        for eid, mask in observations:
            if eid in seen:
                continue
            seen.add(eid)
            s.observe(eid, mask)
            assert s.current_diff() >= best
            best = s.current_diff()

    @given(st.lists(masks, min_size=2, max_size=30, unique=True))
    def test_incremental_never_beats_exact(self, unique_masks):
        members = list(enumerate(unique_masks))
        incremental = SplitStarters()
        incremental.replay(members)
        exact = SplitStarters()
        exact.rebuild_exact(members)
        assert incremental.current_diff() <= exact.current_diff()


class TestMaintenance:
    def test_replay_rebuilds_pair(self):
        s = SplitStarters()
        s.replay([(1, 0b01), (2, 0b10), (3, 0b01)])
        assert s.complete
        assert s.current_diff() == 2

    def test_replay_empty_clears(self):
        s = SplitStarters()
        s.observe(1, 0b1)
        s.replay([])
        assert s.eid_a is None and s.eid_b is None

    def test_rebuild_exact_finds_most_differential_pair(self):
        members = [(1, 0b0001), (2, 0b0011), (3, 0b1110), (4, 0b0111)]
        s = SplitStarters()
        s.rebuild_exact(members)
        # best pair is (1, 3) with diff 4
        assert {s.eid_a, s.eid_b} == {1, 3}

    def test_rebuild_exact_single_member(self):
        s = SplitStarters()
        s.rebuild_exact([(7, 0b1)])
        assert s.eid_a == 7 and s.eid_b is None

    def test_refresh_mask_updates_stored_mask(self):
        s = SplitStarters()
        s.observe(1, 0b01)
        s.observe(2, 0b10)
        s.refresh_mask(1, 0b11)
        assert s.mask_a == 0b11
        s.refresh_mask(2, 0b0)
        assert s.mask_b == 0
        s.refresh_mask(99, 0b111)  # unknown id: no effect
        assert (s.mask_a, s.mask_b) == (0b11, 0)

    def test_is_starter(self):
        s = SplitStarters()
        s.observe(1, 0b1)
        assert s.is_starter(1)
        assert not s.is_starter(2)
