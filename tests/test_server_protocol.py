"""Unit tests for the line-delimited JSON wire protocol."""

import json

import pytest

from repro.server.protocol import (
    APPLIED,
    BAD_REQUEST,
    MAX_LINE_BYTES,
    OK,
    OPS,
    OVERLOADED,
    ProtocolError,
    REJECTED,
    SUCCESS_STATUSES,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_body,
)


class TestRequestRoundTrip:
    def test_encode_decode(self):
        line = encode_request("insert", 7, attributes={"a": 1}, eid=3)
        assert line.endswith(b"\n")
        request = decode_request(line)
        assert request.op == "insert"
        assert request.id == 7
        assert request.fields == {"attributes": {"a": 1}, "eid": 3}
        assert request.get("eid") == 3
        assert request.get("missing", "d") == "d"

    @pytest.mark.parametrize("op", OPS)
    def test_every_documented_op_decodes(self, op):
        assert decode_request(encode_request(op, 1)).op == op

    def test_id_defaults_to_zero(self):
        assert decode_request(b'{"op": "ping"}').id == 0

    @pytest.mark.parametrize("line, fragment", [
        (b"not json", "not valid JSON"),
        (b"[1, 2]", "must be a JSON object"),
        (b'{"id": 1}', "no 'op' string"),
        (b'{"op": 42, "id": 1}', "no 'op' string"),
        (b'{"op": "frobnicate", "id": 1}', "unknown op"),
        (b'{"op": "ping", "id": "one"}', "id must be an integer"),
        (b'{"op": "ping", "id": true}', "id must be an integer"),
    ])
    def test_malformed_requests_raise(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            decode_request(line)

    def test_oversized_frame_refused(self):
        line = encode_request("ping", 1, payload="x" * (MAX_LINE_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_request(line)


class TestResponseRoundTrip:
    def test_ok_response(self):
        line = encode_response(9, OK, rows=[{"a": 1}], row_count=1)
        response = decode_response(line)
        assert response.id == 9
        assert response.ok
        assert not response.retryable
        assert response.error is None
        assert response.get("rows") == [{"a": 1}]

    def test_error_response(self):
        line = encode_response(
            4, REJECTED, error=error_body("duplicate_entity", "eid 3 exists")
        )
        response = decode_response(line)
        assert not response.ok
        assert response.error == {
            "code": "duplicate_entity", "message": "eid 3 exists",
        }

    def test_overloaded_is_retryable_not_ok(self):
        response = decode_response(encode_response(1, OVERLOADED))
        assert response.retryable and not response.ok

    def test_ok_field_on_the_wire_is_derived(self):
        document = json.loads(encode_response(1, APPLIED))
        assert document["ok"] is True
        document = json.loads(encode_response(1, BAD_REQUEST))
        assert document["ok"] is False

    def test_success_statuses(self):
        assert SUCCESS_STATUSES == {OK, APPLIED}

    @pytest.mark.parametrize("line, fragment", [
        (b'{"id": 1}', "no 'status' string"),
        (b'{"status": "ok", "id": []}', "id must be an integer"),
        (b'{"status": "ok", "error": "boom"}', "error must be an object"),
    ])
    def test_malformed_responses_raise(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            decode_response(line)
