"""Property test: SQL pruning is sound for *arbitrary* WHERE clauses.

Hypothesis generates random predicate trees (comparisons, LIKE, NULL
tests, AND/OR/NOT nesting) and random data sets; executing on the
partitioned table (with clause-based pruning) must return exactly the
rows of the unpartitioned full scan.  This is the end-to-end guarantee
behind :func:`repro.sql.compiler.pruning_clauses`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.sql.ast import (
    And,
    Comparison,
    LikePredicate,
    Not,
    NullPredicate,
    Or,
    SelectStatement,
)
from repro.sql.executor import execute_statement
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable

COLUMNS = tuple(f"c{i}" for i in range(6))

comparisons = st.builds(
    Comparison,
    column=st.sampled_from(COLUMNS),
    op=st.sampled_from(("=", "!=", "<", "<=", ">", ">=")),
    value=st.integers(min_value=0, max_value=5),
)
likes = st.builds(
    LikePredicate,
    column=st.sampled_from(COLUMNS),
    pattern=st.sampled_from(("v%", "%2", "%v%", "nope%")),
    negated=st.booleans(),
)
null_tests = st.builds(
    NullPredicate,
    column=st.sampled_from(COLUMNS),
    negated=st.booleans(),
)

expressions = st.recursive(
    st.one_of(comparisons, likes, null_tests),
    lambda children: st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Not, children),
    ),
    max_leaves=8,
)

#: each entity: a 6-bit presence mask + a value selector; values are
#: either the string "v<k>" or the integer k, exercising both predicates
entity_specs = st.lists(
    st.tuples(st.integers(0, 2**6 - 1), st.integers(0, 5), st.booleans()),
    min_size=1,
    max_size=40,
)


def build_row(mask: int, k: int, stringly: bool) -> dict:
    value = f"v{k}" if stringly else k
    return {COLUMNS[i]: value for i in range(6) if mask >> i & 1}


class TestArbitraryPredicatePruningSoundness:
    @settings(max_examples=120, deadline=None)
    @given(entity_specs, expressions)
    def test_partitioned_equals_full_scan(self, specs, where):
        cinderella = CinderellaTable(
            CinderellaConfig(max_partition_size=5, weight=0.4)
        )
        universal = UniversalTable()
        for eid, (mask, k, stringly) in enumerate(specs):
            row = build_row(mask, k, stringly) or {"c0": 0}
            cinderella.insert(row, entity_id=eid)
            universal.insert(row, entity_id=eid)
        statement = SelectStatement(columns=COLUMNS, table="t", where=where)
        rows_partitioned = execute_statement(statement, cinderella).rows
        rows_full = execute_statement(statement, universal).rows
        assert sorted(map(repr, rows_partitioned)) == sorted(map(repr, rows_full))

    @settings(max_examples=60, deadline=None)
    @given(entity_specs, expressions)
    def test_pruned_partitions_hold_no_matches(self, specs, where):
        from repro.sql.compiler import compile_predicate

        cinderella = CinderellaTable(
            CinderellaConfig(max_partition_size=4, weight=0.4)
        )
        for eid, (mask, k, stringly) in enumerate(specs):
            cinderella.insert(build_row(mask, k, stringly) or {"c0": 0},
                              entity_id=eid)
        statement = SelectStatement(columns=COLUMNS, table="t", where=where)
        result = execute_statement(statement, cinderella)
        predicate = compile_predicate(where)
        for pid in result.pruned_pids:
            partition = cinderella.catalog.get(pid)
            for eid in partition.entity_ids():
                assert not predicate(cinderella.get(eid).attributes)
