"""Tests for the relational operator library and aggregates."""

import pytest

from repro.engine.aggregates import Avg, Count, CountDistinct, Max, Min, Sum
from repro.engine.operators import (
    extend,
    group_by,
    hash_join,
    limit,
    order_by,
    order_by_many,
    project,
    select,
)

PEOPLE = [
    {"id": 1, "city": "Dresden", "age": 30},
    {"id": 2, "city": "Dresden", "age": 40},
    {"id": 3, "city": "Chicago", "age": 20},
]
ORDERS = [
    {"oid": 10, "person": 1, "total": 5.0},
    {"oid": 11, "person": 1, "total": 7.0},
    {"oid": 12, "person": 3, "total": 2.0},
]


class TestSelectProjectExtend:
    def test_select(self):
        assert [r["id"] for r in select(PEOPLE, lambda r: r["age"] > 25)] == [1, 2]

    def test_project_columns(self):
        assert list(project(PEOPLE, ("id",))) == [{"id": 1}, {"id": 2}, {"id": 3}]

    def test_project_expressions(self):
        rows = list(project(PEOPLE, {"double_age": lambda r: r["age"] * 2}))
        assert rows[0] == {"double_age": 60}

    def test_extend_keeps_existing_columns(self):
        rows = list(extend(PEOPLE, is_old=lambda r: r["age"] >= 40))
        assert rows[1]["is_old"] is True
        assert rows[1]["city"] == "Dresden"


class TestHashJoin:
    def test_inner_join(self):
        rows = list(hash_join(ORDERS, PEOPLE, "person", "id"))
        assert len(rows) == 3
        assert rows[0]["city"] == "Dresden"

    def test_left_join_keeps_unmatched(self):
        rows = list(hash_join(PEOPLE, ORDERS, "id", "person", how="left"))
        unmatched = [r for r in rows if "oid" not in r]
        assert [r["id"] for r in unmatched] == [2]
        assert len(rows) == 4

    def test_semi_join(self):
        rows = list(hash_join(PEOPLE, ORDERS, "id", "person", how="semi"))
        assert [r["id"] for r in rows] == [1, 3]
        assert all("oid" not in r for r in rows)

    def test_anti_join(self):
        rows = list(hash_join(PEOPLE, ORDERS, "id", "person", how="anti"))
        assert [r["id"] for r in rows] == [2]

    def test_composite_keys(self):
        left = [{"a": 1, "b": 2, "x": "L"}]
        right = [{"c": 1, "d": 2, "y": "R"}]
        rows = list(hash_join(left, right, ("a", "b"), ("c", "d")))
        assert rows == [{"a": 1, "b": 2, "x": "L", "c": 1, "d": 2, "y": "R"}]

    def test_unknown_flavour_rejected(self):
        with pytest.raises(ValueError):
            list(hash_join([], [], "a", "b", how="outer"))


class TestGroupBy:
    def test_group_by_column(self):
        rows = group_by(PEOPLE, "city", {"n": lambda: Count(), "total_age": lambda: Sum("age")})
        by_city = {r["city"]: r for r in rows}
        assert by_city["Dresden"] == {"city": "Dresden", "n": 2, "total_age": 70.0}
        assert by_city["Chicago"]["n"] == 1

    def test_group_by_tuple_key(self):
        rows = group_by(PEOPLE, ("city", "age"), {"n": lambda: Count()})
        assert len(rows) == 3
        assert all("city" in r and "age" in r for r in rows)

    def test_scalar_aggregate_over_empty_input(self):
        rows = group_by([], None, {"n": lambda: Count(), "avg": lambda: Avg("x")})
        assert rows == [{"n": 0, "avg": None}]

    def test_callable_key_requires_names(self):
        with pytest.raises(ValueError):
            group_by(PEOPLE, lambda r: r["city"], {"n": lambda: Count()})
        rows = group_by(
            PEOPLE, lambda r: r["city"], {"n": lambda: Count()}, key_names=("city",)
        )
        assert {r["city"] for r in rows} == {"Dresden", "Chicago"}


class TestAggregates:
    def test_sum_with_expression(self):
        agg = Sum(lambda r: r["age"] * 2)
        for row in PEOPLE:
            agg.step(row)
        assert agg.result() == 180.0

    def test_count_with_expression_skips_none(self):
        agg = Count(lambda r: r.get("maybe"))
        agg.step({"maybe": 1})
        agg.step({})
        assert agg.result() == 1

    def test_count_distinct(self):
        agg = CountDistinct("city")
        for row in PEOPLE:
            agg.step(row)
        assert agg.result() == 2

    def test_min_max(self):
        low, high = Min("age"), Max("age")
        for row in PEOPLE:
            low.step(row)
            high.step(row)
        assert (low.result(), high.result()) == (20, 40)

    def test_avg(self):
        agg = Avg("age")
        for row in PEOPLE:
            agg.step(row)
        assert agg.result() == pytest.approx(30.0)

    def test_empty_min_max_avg_are_none(self):
        assert Min("x").result() is None
        assert Max("x").result() is None
        assert Avg("x").result() is None


class TestOrderAndLimit:
    def test_order_by(self):
        rows = order_by(PEOPLE, "age", reverse=True)
        assert [r["age"] for r in rows] == [40, 30, 20]

    def test_order_by_many_mixed_directions(self):
        rows = order_by_many(PEOPLE, [("city", False), ("age", True)])
        assert [(r["city"], r["age"]) for r in rows] == [
            ("Chicago", 20), ("Dresden", 40), ("Dresden", 30),
        ]

    def test_limit(self):
        assert limit(PEOPLE, 2) == PEOPLE[:2]
        assert limit(PEOPLE, 0) == []
        with pytest.raises(ValueError):
            limit(PEOPLE, -1)

    def test_limit_short_circuits_generators(self):
        def endless():
            i = 0
            while True:
                yield {"i": i}
                i += 1
        assert len(limit(endless(), 5)) == 5
