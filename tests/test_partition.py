"""Tests for partition catalog entries (exact synopses, sizes, starters)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.partition import Partition, iter_attribute_ids

masks = st.integers(min_value=0, max_value=2**50 - 1)


class TestIterAttributeIds:
    def test_yields_set_bits(self):
        assert list(iter_attribute_ids(0b1011)) == [0, 1, 3]

    def test_zero_mask(self):
        assert list(iter_attribute_ids(0)) == []

    @given(masks)
    def test_matches_bit_count(self, mask):
        ids = list(iter_attribute_ids(mask))
        assert len(ids) == mask.bit_count()
        assert all(mask >> i & 1 for i in ids)


class TestMembership:
    def test_add_updates_synopsis_and_size(self):
        p = Partition(0)
        p.add(1, 0b011, 1.0)
        p.add(2, 0b110, 1.0)
        assert p.mask == 0b111
        assert p.attr_count == 3
        assert p.total_size == 2.0
        assert len(p) == 2
        assert 1 in p and 3 not in p

    def test_add_returns_new_bits(self):
        p = Partition(0)
        assert p.add(1, 0b011, 1.0) == 0b011
        assert p.add(2, 0b010, 1.0) == 0  # nothing new
        assert p.add(3, 0b110, 1.0) == 0b100

    def test_duplicate_add_rejected(self):
        p = Partition(0)
        p.add(1, 0b1, 1.0)
        with pytest.raises(ValueError):
            p.add(1, 0b1, 1.0)

    def test_members_iteration(self):
        p = Partition(0)
        p.add(5, 0b1, 2.0)
        assert list(p.members()) == [(5, 0b1, 2.0)]
        assert p.member(5) == (0b1, 2.0)
        assert p.entity_ids() == (5,)


class TestExactSynopsisShrinking:
    def test_remove_clears_last_instance_bits(self):
        p = Partition(0)
        p.add(1, 0b011, 1.0)
        p.add(2, 0b010, 1.0)
        mask, size, removed = p.remove(1)
        assert (mask, size) == (0b011, 1.0)
        assert removed == 0b001  # bit 0 had its only instance removed
        assert p.mask == 0b010
        assert p.attr_count == 1

    def test_remove_keeps_shared_bits(self):
        p = Partition(0)
        p.add(1, 0b01, 1.0)
        p.add(2, 0b01, 1.0)
        _, _, removed = p.remove(1)
        assert removed == 0
        assert p.mask == 0b01

    def test_remove_repairs_starters(self):
        p = Partition(0)
        p.add(1, 0b001, 1.0)
        p.add(2, 0b110, 1.0)
        assert p.starters.is_starter(1)
        p.remove(1)
        assert not p.starters.is_starter(1)
        assert p.starters.eid_a == 2

    def test_remove_without_repair_leaves_starters(self):
        p = Partition(0)
        p.add(1, 0b001, 1.0)
        p.add(2, 0b110, 1.0)
        p.remove(1, repair_starters=False)
        assert p.starters.is_starter(1)  # caller promised to discard p

    @given(st.lists(st.tuples(st.integers(0, 50), masks), min_size=1, max_size=30))
    def test_synopsis_always_union_of_members(self, entries):
        p = Partition(0)
        live: dict[int, int] = {}
        for eid, mask in entries:
            if eid in live:
                p.remove(eid)
                del live[eid]
            else:
                p.add(eid, mask, 1.0)
                live[eid] = mask
            union = 0
            for member_mask in live.values():
                union |= member_mask
            assert p.mask == union
            assert p.total_size == pytest.approx(len(live))


class TestUpdateMember:
    def test_update_changes_synopsis_both_ways(self):
        p = Partition(0)
        p.add(1, 0b011, 1.0)
        p.add(2, 0b010, 1.0)
        added, removed = p.update_member(1, 0b110, 2.0)
        assert added == 0b100
        assert removed == 0b001
        assert p.mask == 0b110
        assert p.total_size == 3.0

    def test_update_refreshes_starter_mask(self):
        p = Partition(0)
        p.add(1, 0b01, 1.0)
        p.add(2, 0b10, 1.0)
        p.update_member(1, 0b11, 1.0)
        assert p.starters.mask_a == 0b11 or p.starters.mask_b == 0b11


class TestSparseness:
    def test_perfectly_dense_partition(self):
        p = Partition(0)
        p.add(1, 0b11, 1.0)
        p.add(2, 0b11, 1.0)
        assert p.sparseness() == 0.0

    def test_half_sparse_partition(self):
        p = Partition(0)
        p.add(1, 0b01, 1.0)
        p.add(2, 0b10, 1.0)
        # grid: 2 entities x 2 attributes, 2 of 4 cells filled
        assert p.sparseness() == pytest.approx(0.5)

    def test_empty_partition_is_dense_by_definition(self):
        assert Partition(0).sparseness() == 0.0

    def test_attributeless_partition_is_dense(self):
        p = Partition(0)
        p.add(1, 0, 1.0)
        assert p.sparseness() == 0.0
