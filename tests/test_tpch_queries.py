"""Tests for the 22 TPC-H queries and the access-path adapters."""

import math

import pytest

from repro.core.config import CinderellaConfig
from repro.workloads.tpch.databases import (
    CinderellaTPCHDatabase,
    StandardTPCHDatabase,
)
from repro.workloads.tpch.dbgen import generate_tpch
from repro.workloads.tpch.queries import QUERIES, run_query, sql_like


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale_factor=0.002, seed=7)


@pytest.fixture(scope="module")
def standard(data):
    return StandardTPCHDatabase(data)


@pytest.fixture(scope="module")
def cinderella(data):
    return CinderellaTPCHDatabase(
        data, CinderellaConfig(max_partition_size=2000, weight=0.5)
    )


def rows_equal(a, b, rel=1e-9):
    """Row-list equality tolerant of float summation order."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if isinstance(va, float) and isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=rel, abs_tol=1e-6):
                    return False
            elif va != vb:
                return False
    return True


class TestSqlLike:
    def test_suffix(self):
        assert sql_like("LARGE BRASS", "%BRASS")
        assert not sql_like("LARGE STEEL", "%BRASS")

    def test_prefix(self):
        assert sql_like("PROMO PLATED TIN", "PROMO%")

    def test_infix_multi(self):
        assert sql_like("a special deposit requests b", "%special%requests%")
        assert not sql_like("special", "%special%requests%")

    def test_exact(self):
        assert sql_like("abc", "abc")
        assert not sql_like("abcd", "abc")


class TestAllQueriesRun:
    @pytest.mark.parametrize("number", sorted(QUERIES))
    def test_query_runs_on_generated_data(self, data, number):
        rows = run_query(number, data)
        assert isinstance(rows, list)
        for row in rows:
            assert isinstance(row, dict)

    def test_unknown_query_number(self, data):
        with pytest.raises(ValueError):
            run_query(23, data)


class TestQuerySemantics:
    def test_q1_groups_and_totals(self, data):
        rows = run_query(1, data)
        assert 1 <= len(rows) <= 6  # at most |returnflag| x |linestatus|
        keys = [(r["l_returnflag"], r["l_linestatus"]) for r in rows]
        assert keys == sorted(keys)
        for row in rows:
            assert row["count_order"] > 0
            assert row["avg_qty"] == pytest.approx(row["sum_qty"] / row["count_order"])

    def test_q1_only_shipped_lines(self, data):
        rows = run_query(1, data)
        total = sum(r["count_order"] for r in rows)
        expected = sum(
            1 for l in data.table("lineitem") if l["l_shipdate"] <= "1998-09-02"
        )
        assert total == expected

    def test_q3_is_top10_by_revenue(self, data):
        rows = run_query(3, data)
        assert len(rows) <= 10
        revenues = [r["revenue"] for r in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q4_counts_match_manual(self, data):
        rows = run_query(4, data)
        late_orders = {
            l["l_orderkey"]
            for l in data.table("lineitem")
            if l["l_commitdate"] < l["l_receiptdate"]
        }
        expected = sum(
            1
            for o in data.table("orders")
            if "1993-07-01" <= o["o_orderdate"] < "1993-10-01"
            and o["o_orderkey"] in late_orders
        )
        assert sum(r["order_count"] for r in rows) == expected

    def test_q6_matches_manual_sum(self, data):
        rows = run_query(6, data)
        expected = sum(
            l["l_extendedprice"] * l["l_discount"]
            for l in data.table("lineitem")
            if "1994-01-01" <= l["l_shipdate"] < "1995-01-01"
            and 0.05 <= l["l_discount"] <= 0.07
            and l["l_quantity"] < 24
        )
        assert rows[0]["revenue"] == pytest.approx(expected)

    def test_q13_includes_zero_order_customers(self, data):
        rows = run_query(13, data)
        zero = [r for r in rows if r["c_count"] == 0]
        assert zero and zero[0]["custdist"] > 0

    def test_q13_customer_total(self, data):
        rows = run_query(13, data)
        assert sum(r["custdist"] for r in rows) == len(data.table("customer"))

    def test_q14_is_percentage(self, data):
        value = run_query(14, data)[0]["promo_revenue"]
        assert 0.0 <= value <= 100.0

    def test_q15_returns_the_max_revenue_supplier(self, data):
        rows = run_query(15, data)
        assert len(rows) >= 1
        assert all(
            r["total_revenue"] == rows[0]["total_revenue"] for r in rows
        )

    def test_q18_threshold(self, data):
        for row in run_query(18, data):
            assert row["sum_qty"] > 300

    def test_q22_customers_have_no_orders(self, data):
        rows = run_query(22, data)
        assert rows, "Q22 should find customers at this scale"
        codes = {r["cntrycode"] for r in rows}
        assert codes <= {"13", "31", "23", "29", "30", "18", "17"}


class TestAccessPathEquivalence:
    """The Table I property: views return the same answers as tables."""

    @pytest.mark.parametrize("number", sorted(QUERIES))
    def test_same_result_through_views(self, standard, cinderella, number):
        rows_std = run_query(number, standard)
        rows_cin = run_query(number, cinderella)
        standard.pop_stats()
        cinderella.pop_stats()
        assert rows_equal(rows_std, rows_cin)

    def test_cinderella_recovers_exact_schema(self, cinderella):
        assert cinderella.schema_is_exact()

    def test_views_prune_foreign_partitions(self, cinderella):
        list(cinderella.table("region"))
        stats = cinderella.pop_stats()
        # region is 5 rows; the scan must not have read lineitems
        assert stats.entities_read == 5

    def test_stats_accumulate_and_reset(self, standard):
        list(standard.table("nation"))
        stats = standard.pop_stats()
        assert stats.entities_read == 25
        assert standard.pop_stats().entities_read == 0
