"""Unit battery for the metrics registry (repro.obs.registry).

Covers the contracts the instrumentation layer leans on: label
cardinality bounds, inclusive histogram bucket edges, thread-safe
increments, and both exposition formats round-tripping.
"""

import json
import re
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    SERVER_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
)


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "ops").inc()
        registry.counter("ops_total").inc(2.5)
        assert registry.get_value("ops_total") == 3.5

    def test_negative_inc_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="only increase"):
            registry.counter("ops_total").inc(-1)

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops", labelnames=("kind",))
        family.labels(kind="merge").inc(2)
        family.labels(kind="split").inc(5)
        assert registry.get_value("ops_total", kind="merge") == 2
        assert registry.get_value("ops_total", kind="split") == 5

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops")
        increments_per_thread = 5_000

        def hammer():
            for _ in range(increments_per_thread):
                family.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.get_value("ops_total") == 8 * increments_per_thread


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(10)
        assert registry.get_value("depth") == 10.0
        gauge._unlabeled().inc(5)
        gauge._unlabeled().dec(2)
        assert registry.get_value("depth") == 13.0


class TestValidation:
    def test_invalid_metric_name(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("bad name!")

    def test_invalid_label_name(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="invalid label name"):
            registry.counter("ops_total", labelnames=("bad-label",))

    def test_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("ops_total")
        with pytest.raises(MetricError, match="already registered as"):
            registry.gauge("ops_total")

    def test_label_schema_conflict(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", labelnames=("kind",))
        with pytest.raises(MetricError, match="already registered with labels"):
            registry.counter("ops_total", labelnames=("outcome",))

    def test_wrong_labels_at_use(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", labelnames=("kind",))
        with pytest.raises(MetricError, match="takes labels"):
            family.labels(outcome="ok")

    def test_unlabeled_shortcut_requires_no_schema(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", labelnames=("kind",))
        with pytest.raises(MetricError, match="requires labels"):
            family.inc()

    def test_label_cardinality_is_bounded(self):
        registry = MetricsRegistry(max_label_sets=4)
        family = registry.counter("ops_total", labelnames=("key",))
        for i in range(4):
            family.labels(key=i).inc()
        with pytest.raises(MetricError, match="max_label_sets"):
            family.labels(key="one too many").inc()

    def test_unsorted_histogram_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="sorted and distinct"):
            registry.histogram("lat", buckets=(1.0, 0.5))


class TestHistograms:
    def test_bucket_edges_are_inclusive(self):
        """``le`` is inclusive, Prometheus semantics: a value equal to a
        bound lands in that bound's bucket."""
        registry = MetricsRegistry()
        family = registry.histogram("lat", buckets=(0.1, 0.5, 1.0))
        child = family._unlabeled()
        for value in (0.1, 0.5, 1.0):
            child.observe(value)
        assert child.cumulative_buckets() == [
            (0.1, 1), (0.5, 2), (1.0, 3), (float("inf"), 3),
        ]

    def test_overflow_counts_only_toward_inf(self):
        registry = MetricsRegistry()
        child = registry.histogram("lat", buckets=(0.1, 1.0))._unlabeled()
        child.observe(99.0)
        assert child.cumulative_buckets() == [
            (0.1, 0), (1.0, 0), (float("inf"), 1),
        ]
        assert child.sum == 99.0
        assert child.count == 1

    def test_sum_and_count_accumulate(self):
        registry = MetricsRegistry()
        child = registry.histogram("lat")._unlabeled()
        for value in (0.001, 0.02, 0.3):
            child.observe(value)
        assert child.count == 3
        assert child.sum == pytest.approx(0.321)

    def test_default_buckets_cover_hot_paths(self):
        assert DEFAULT_BUCKETS[0] <= 1e-4, "sub-100µs catalog ops need a bucket"
        assert DEFAULT_BUCKETS[-1] >= 5.0, "reorganizations take seconds"
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_server_latency_buckets_span_wire_latencies(self):
        """The server-path preset must resolve both tails: sub-ms hits
        (cache, index prune) and multi-second stalls (admission waits,
        group commits under load)."""
        assert SERVER_LATENCY_BUCKETS[0] <= 1e-4, \
            "cached queries answer in tens of microseconds"
        assert SERVER_LATENCY_BUCKETS[-1] >= 5.0, \
            "an admission-queue stall can reach seconds"
        assert list(SERVER_LATENCY_BUCKETS) == sorted(set(SERVER_LATENCY_BUCKETS))

    def test_server_latency_buckets_are_log_spaced(self):
        """Doubling bounds: constant relative error for quantile
        estimates across four orders of magnitude."""
        for lower, upper in zip(
            SERVER_LATENCY_BUCKETS, SERVER_LATENCY_BUCKETS[1:]
        ):
            assert upper == pytest.approx(2 * lower), (
                f"bucket {upper} is not 2x {lower}"
            )


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("ops_total", "operations").inc(3)
        registry.gauge("depth", "queue depth").set(7)
        family = registry.counter("txn_total", "txns", labelnames=("kind",))
        family.labels(kind="merge").inc(2)
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_prometheus_grammar(self):
        text = self._populated().to_prometheus()
        assert "# HELP ops_total operations\n" in text
        assert "# TYPE ops_total counter\n" in text
        assert "\nops_total 3\n" in text
        assert "\ndepth 7\n" in text
        assert '\ntxn_total{kind="merge"} 2\n' in text
        assert '\nlat_seconds_bucket{le="0.1"} 1\n' in text
        assert '\nlat_seconds_bucket{le="1"} 2\n' in text
        assert '\nlat_seconds_bucket{le="+Inf"} 2\n' in text
        assert "\nlat_seconds_count 2\n" in text
        # every non-comment line is ``name{labels} value``
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eInf]+$'
        )
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert sample_re.match(line), f"malformed sample line: {line!r}"

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", labelnames=("q",))
        family.labels(q='say "hi"\n').inc()
        text = registry.to_prometheus()
        assert r'q="say \"hi\"\n"' in text

    def test_json_round_trip(self):
        registry = self._populated()
        document = json.loads(registry.to_json())
        assert document == registry.to_json_obj()
        by_name = {m["name"]: m for m in document["metrics"]}
        assert by_name["ops_total"]["samples"][0]["value"] == 3.0
        assert by_name["txn_total"]["samples"][0]["labels"] == {"kind": "merge"}
        hist = by_name["lat_seconds"]["samples"][0]
        assert hist["count"] == 2
        assert hist["buckets"][-1] == ["+Inf", 2]

    def test_empty_registry_exposes_empty(self):
        registry = MetricsRegistry()
        assert registry.to_prometheus() == ""
        assert registry.to_json_obj() == {"metrics": []}

    def test_reset_drops_families(self):
        registry = self._populated()
        registry.reset()
        assert registry.families() == []
        assert registry.get_value("ops_total") is None


class TestConcurrencyBattery:
    """Hammer the registry from many threads: writes must never be lost
    and exposition must never tear (a scrape racing writers must still
    produce well-formed, monotonically consistent output)."""

    SAMPLE_RE = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eInf]+$'
    )

    def test_concurrent_labeled_increments_lose_nothing(self):
        """Threads racing on the same child AND on child creation."""
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops", labelnames=("worker",))
        per_thread = 2_000
        n_threads = 8

        def hammer(index: int) -> None:
            mine = family.labels(worker=index)
            shared = family.labels(worker="shared")
            for _ in range(per_thread):
                mine.inc()
                shared.inc()

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(n_threads):
            assert registry.get_value("ops_total", worker=index) == per_thread
        assert registry.get_value(
            "ops_total", worker="shared"
        ) == n_threads * per_thread

    def test_concurrent_histogram_observes_lose_nothing(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        per_thread = 2_000
        n_threads = 8

        def hammer() -> None:
            child = family._unlabeled()
            for i in range(per_thread):
                child.observe(0.05 if i % 2 else 0.5)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        child = family._unlabeled()
        expected = n_threads * per_thread
        assert child.count == expected
        assert child.cumulative_buckets()[-1] == (float("inf"), expected)
        assert child.sum == pytest.approx(
            n_threads * (per_thread // 2 * 0.05 + per_thread // 2 * 0.5)
        )

    def test_exposition_never_tears_under_write_load(self):
        """Scrape both formats while writers hammer the same families.

        Every scrape must be well-formed, histogram buckets must stay
        cumulative within one sample, and counter values must never go
        backwards between successive scrapes."""
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops")
        hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        stop = threading.Event()

        def writer() -> None:
            child = hist._unlabeled()
            while not stop.is_set():
                counter.inc()
                child.observe(0.05)
                child.observe(0.5)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            last_total = 0.0
            last_count = 0.0
            for _ in range(200):
                text = registry.to_prometheus()
                for line in text.strip().splitlines():
                    if not line.startswith("#"):
                        assert self.SAMPLE_RE.match(line), (
                            f"torn sample line: {line!r}"
                        )
                document = registry.to_json_obj()
                by_name = {m["name"]: m for m in document["metrics"]}
                total = by_name["ops_total"]["samples"][0]["value"]
                assert total >= last_total, "counter went backwards"
                last_total = total
                sample = by_name["lat"]["samples"][0]
                counts = [count for _le, count in sample["buckets"]]
                assert counts == sorted(counts), (
                    f"non-cumulative buckets in one sample: {counts}"
                )
                assert sample["count"] >= last_count
                last_count = sample["count"]
        finally:
            stop.set()
            for thread in writers:
                thread.join()
        assert last_total > 0 and last_count > 0
