"""The lost-replica gap, closed: divergence, peer resync, re-admission.

The scenario the catch-up buffer alone cannot survive: a node stays
down long enough that the router's bounded buffer overflows.  Before
the resync machinery, the overflow silently dropped the oldest buffered
writes and the rejoining node served stale answers while pretending to
be whole.  Now the router declares the replica ``diverged``, excludes
it from reads and writes, streams a healthy shard peer's copy onto it
(``sync_snapshot`` pages + ``sync_delta``), and re-admits it only after
count-and-digest agreement.

* :class:`TestReplicaLifecycle` — the tracker state machine in
  isolation: legal transitions, illegal ones refused.
* :class:`TestDivergenceDeclared` — overflow marks the replica
  diverged, drops are *counted* (never silent), and the diverged node
  stops receiving reads and writes.
* :class:`TestResyncDifferential` — the satellite differential test:
  kill a node, write far past the catch-up budget, resync, then prove
  query and SQL answers on the rebuilt node are multiset-identical to a
  healthy replica's for **every** shard it hosts.
* :class:`TestResyncUnderLiveTraffic` — the acceptance chaos test:
  divergence and automatic resync *while* mixed traffic keeps flowing;
  zero acknowledged writes lost, zero silent drops.
"""

import asyncio
import threading
import time

import pytest

from repro.router import ClusterHarness, RouterConfig
from repro.router.health import (
    REPLICA_DIVERGED,
    REPLICA_HEALTHY,
    REPLICA_LAGGING,
    REPLICA_RESYNCING,
    ReplicaTracker,
)

from tests.test_cluster_chaos import ChaosWorker, wait_until

#: small budgets so divergence fires in seconds, not minutes
SMALL_BUDGET = dict(
    upstream_timeout_s=1.0, eject_base_s=0.05, eject_max_s=0.5,
    catchup_limit=8,
)


def router_do(cluster, coroutine, timeout_s: float = 60.0):
    """Run a coroutine on the router's event loop from the test thread."""
    future = asyncio.run_coroutine_threadsafe(
        coroutine, cluster.router_thread._loop
    )
    return future.result(timeout=timeout_s)


def shard_uids(client, n_shards: int, shard: int) -> list[str]:
    """One node's answer for one shard, via the public query op."""
    response = client.request(
        "query", attributes=["uid"], mode="any",
        shard_filter={"n_shards": n_shards, "shards": [shard]},
    )
    assert response.ok, response.status
    return sorted(row["uid"] for row in response.get("rows"))


def shard_uids_sql(client, n_shards: int, shard: int) -> list[str]:
    """The same answer through the SQL surface."""
    response = client.request(
        "sql", sql="SELECT uid FROM universalTable",
        shard_filter={"n_shards": n_shards, "shards": [shard]},
    )
    assert response.ok, response.status
    return sorted(row["uid"] for row in response.get("rows"))


class TestReplicaLifecycle:
    def test_happy_path_round_trip(self):
        tracker = ReplicaTracker("node0")
        assert tracker.state == REPLICA_HEALTHY
        assert tracker.in_write_set and tracker.is_queryable
        tracker.mark_lagging()
        assert tracker.state == REPLICA_LAGGING
        assert tracker.in_write_set and tracker.is_queryable
        tracker.mark_caught_up()
        assert tracker.state == REPLICA_HEALTHY

    def test_divergence_and_repair(self):
        tracker = ReplicaTracker("node0")
        tracker.mark_lagging()
        assert tracker.mark_diverged("catchup_overflow") is True
        assert tracker.state == REPLICA_DIVERGED
        assert not tracker.in_write_set and not tracker.is_queryable
        assert tracker.mark_diverged("again") is False  # already out
        assert tracker.divergences == 1
        tracker.begin_resync()
        assert tracker.state == REPLICA_RESYNCING
        assert not tracker.in_write_set  # still excluded while copying
        tracker.complete_resync()
        assert tracker.state == REPLICA_HEALTHY
        assert tracker.resyncs == 1
        assert tracker.last_reason is None

    def test_resync_can_finish_lagging(self):
        tracker = ReplicaTracker("node0")
        tracker.mark_diverged("catchup_overflow")
        tracker.begin_resync()
        tracker.complete_resync(lagging=True)
        assert tracker.state == REPLICA_LAGGING

    def test_failed_resync_returns_to_diverged(self):
        tracker = ReplicaTracker("node0")
        tracker.mark_diverged("catchup_overflow")
        tracker.begin_resync()
        tracker.fail_resync("peer_unreachable")
        assert tracker.state == REPLICA_DIVERGED
        assert tracker.last_reason == "peer_unreachable"

    def test_divergence_mid_resync_aborts_it(self):
        """A second overflow while resyncing must not be swallowed — the
        in-flight resync sees the state change and gives up."""
        tracker = ReplicaTracker("node0")
        tracker.mark_diverged("catchup_overflow")
        tracker.begin_resync()
        assert tracker.mark_diverged("catchup_overflow") is True
        assert tracker.state == REPLICA_DIVERGED

    def test_illegal_transitions_refused(self):
        tracker = ReplicaTracker("node0")
        with pytest.raises(RuntimeError):
            tracker.begin_resync()  # not diverged
        with pytest.raises(RuntimeError):
            tracker.complete_resync()  # not resyncing
        tracker.mark_caught_up()  # no-op from healthy, not an error
        assert tracker.state == REPLICA_HEALTHY


class TestDivergenceDeclared:
    def test_overflow_is_counted_not_silent(self, tmp_path):
        """The bug this PR closes: overflowing the catch-up budget used
        to ``popleft`` the oldest buffered write and carry on."""
        config = RouterConfig(resync_interval_s=0.0, **SMALL_BUDGET)
        with ClusterHarness(
            tmp_path, n_nodes=3, replication_factor=2, router_config=config
        ) as cluster:
            with cluster.client() as client:
                for eid in range(20):
                    client.insert({"uid": f"u{eid}"}, eid=eid)
            cluster.kill_node("node1")
            with cluster.client(check=False) as client:
                for eid in range(20, 80):
                    client.retrying(
                        "insert", attributes={"uid": f"u{eid}"}, eid=eid,
                        attempts=12, base_delay_s=0.005, budget_s=15.0,
                    )
            router = cluster.router
            assert router.replicas["node1"].state == REPLICA_DIVERGED
            assert router.replicas["node1"].last_reason == "catchup_overflow"
            assert router.counters.nodes_diverged >= 1
            assert router.counters.catchup_dropped > 0
            # divergence emptied the buffer — nothing silently replays
            assert not router._catchup["node1"]

            # the wire-visible accounting (satellite: stats response)
            with cluster.client() as client:
                stats = client.stats()
            assert stats["replicas"]["node1"]["state"] == REPLICA_DIVERGED
            assert stats["catchup_dropped"]["node1"] > 0
            assert stats["catchup_buffered"]["node1"] == 0

            # reads and writes keep flowing — served by healthy replicas
            with cluster.client() as client:
                response = client.query_response(["uid"])
                assert response.ok
                assert response.get("row_count") == 80
                assert client.insert({"uid": "after"}, eid=500).status \
                    == "applied"


class TestResyncDifferential:
    def test_resynced_node_answers_exactly_like_its_peers(self, tmp_path):
        """Satellite differential test: after divergence and resync, the
        rebuilt node's query/SQL answers are multiset-identical to a
        healthy replica's for every shard it hosts."""
        config = RouterConfig(resync_interval_s=0.0, **SMALL_BUDGET)
        with ClusterHarness(
            tmp_path, n_nodes=3, replication_factor=2, router_config=config
        ) as cluster:
            with cluster.client() as client:
                for eid in range(40):
                    client.insert({"uid": f"u{eid}", "v": eid}, eid=eid)
            cluster.kill_node("node1")
            # run far past the catch-up budget while the node is down:
            # fresh inserts, rewrites, and deletes of pre-crash entities
            # (the WAL the dead node will replay on restart is now a lie)
            with cluster.client(check=False) as client:
                for eid in range(40, 100):
                    client.retrying(
                        "insert", attributes={"uid": f"u{eid}", "v": eid},
                        eid=eid, attempts=12, base_delay_s=0.005,
                        budget_s=15.0,
                    )
                for eid in range(0, 20, 4):
                    client.retrying(
                        "update", eid=eid,
                        attributes={"uid": f"u{eid}", "rev": 1},
                        attempts=12, base_delay_s=0.005, budget_s=15.0,
                    )
                for eid in (1, 5, 9):
                    client.retrying(
                        "delete", eid=eid,
                        attempts=12, base_delay_s=0.005, budget_s=15.0,
                    )
            router = cluster.router
            assert router.replicas["node1"].state == REPLICA_DIVERGED

            cluster.restart_node("node1")
            assert router_do(cluster, router.resync_node("node1")) is True
            assert router.replicas["node1"].state in (
                REPLICA_HEALTHY, REPLICA_LAGGING
            )
            assert router.counters.resyncs_started >= 1
            assert router.counters.resyncs_completed >= 1
            assert router.counters.sync_entities_streamed > 0

            n_shards = cluster.placement.n_shards
            hosted = cluster.placement.shards_on("node1")
            assert hosted, "placement stopped putting shards on node1?"
            for shard in hosted:
                peers = [
                    node.name
                    for node in cluster.placement.replicas(shard)
                    if node.name != "node1"
                ]
                with cluster.node_client("node1") as target, \
                        cluster.node_client(peers[0]) as peer:
                    assert shard_uids(target, n_shards, shard) == \
                        shard_uids(peer, n_shards, shard), (
                            f"shard {shard}: query answers differ after "
                            f"resync"
                        )
                    assert shard_uids_sql(target, n_shards, shard) == \
                        shard_uids_sql(peer, n_shards, shard), (
                            f"shard {shard}: SQL answers differ after resync"
                        )
            # the deletes that happened while node1 was down must not be
            # resurrected by its own (stale) WAL replay
            with cluster.node_client("node1") as target:
                served = {
                    uid
                    for shard in hosted
                    for uid in shard_uids(target, n_shards, shard)
                }
            assert not served & {"u1", "u5", "u9"}

    def test_resync_without_peers_fails_cleanly(self, tmp_path):
        """rf=1: the only copy diverged, there is no peer to stream from
        — the resync must fail and the replica must stay quarantined."""
        config = RouterConfig(resync_interval_s=0.0, **SMALL_BUDGET)
        with ClusterHarness(
            tmp_path, n_nodes=2, replication_factor=1, router_config=config
        ) as cluster:
            with cluster.client() as client:
                for eid in range(10):
                    client.insert({"uid": f"u{eid}"}, eid=eid)
            # force divergence by hand: with rf=1 a dead node refuses
            # writes outright rather than buffering forever
            async def declare():
                cluster.router._mark_diverged("node1", reason="operator")

            router_do(cluster, declare())
            assert cluster.router.replicas["node1"].state == REPLICA_DIVERGED
            assert router_do(
                cluster, cluster.router.resync_node("node1")
            ) is False
            assert cluster.router.replicas["node1"].state == REPLICA_DIVERGED
            assert cluster.router.counters.resyncs_failed >= 1


class InsertPump(threading.Thread):
    """Writes continuously until told to stop — the conductor's way of
    guaranteeing live traffic for *every* divergence cycle, however
    fast the fixed-op chaos workers burn through their budgets."""

    def __init__(self, index: int, address, stop: threading.Event):
        super().__init__(name=f"resync-pump-{index}")
        self.index = index
        self.address = address
        self.stop = stop
        self.live: dict[str, int] = {}
        self.failures: list[str] = []

    def run(self) -> None:
        from repro.server.client import ServerClient

        base = self.index * 1_000_000  # disjoint from the chaos workers
        step = 0
        try:
            with ServerClient(*self.address, check=False) as client:
                while not self.stop.is_set():
                    uid = f"w{self.index}-{step}"
                    response = client.retrying(
                        "insert",
                        attributes={"uid": uid, "common": self.index},
                        eid=base + step,
                        attempts=12, base_delay_s=0.005, budget_s=15.0,
                    )
                    if response.status == "applied":
                        self.live[uid] = base + step
                    elif not response.retryable:
                        self.failures.append(
                            f"insert {uid} -> {response.status}: "
                            f"{response.error}"
                        )
                    step += 1
        except Exception as err:  # surfaced by the main thread
            self.failures.append(f"{type(err).__name__}: {err}")


def run_divergence_chaos(tmp_path, workers: int, ops: int, victims) -> None:
    """The acceptance scenario: replicas are held down past their
    catch-up budget **under live mixed traffic**, the monitor resyncs
    them automatically after restart, and at the end every acknowledged
    write is served exactly once."""
    config = RouterConfig(resync_interval_s=0.05, **SMALL_BUDGET)
    harness = ClusterHarness(
        tmp_path, n_nodes=3, replication_factor=2, router_config=config
    )
    with harness as cluster:
        router = cluster.router
        stop_pump = threading.Event()
        pool = [
            ChaosWorker(index, cluster.router_address, ops)
            for index in range(workers)
        ]
        pump = InsertPump(workers, cluster.router_address, stop_pump)
        for worker in pool:
            worker.start()
        pump.start()
        try:
            for victim in victims:
                time.sleep(0.3)  # let traffic establish / recover
                cluster.kill_node(victim)
                assert wait_until(
                    lambda: router.replicas[victim].state == REPLICA_DIVERGED
                ), f"traffic never overflowed {victim}'s catch-up budget"
                time.sleep(0.3)  # stay down: more writes it never saw
                cluster.restart_node(victim)
                # wait out the repair before the next cycle: if a
                # shard's *entire* replica set diverges at once there is
                # no healthy peer left to stream from — that correlated
                # failure needs PITR from backups, not online resync
                # (see docs/DURABILITY.md)
                assert wait_until(
                    lambda: router.replicas[victim].in_write_set,
                    timeout_s=30.0,
                ), (
                    f"{victim} was not repaired: "
                    f"{router.replicas[victim].as_dict()}"
                )
        finally:
            stop_pump.set()
        pump.join(timeout=180)
        assert not pump.is_alive(), "insert pump hung"
        for worker in pool:
            worker.join(timeout=180)
            assert not worker.is_alive(), f"{worker.name} hung"
        failures = [
            f for source in pool + [pump] for f in source.failures
        ]
        assert failures == [], failures[:10]

        # the monitor repairs every victim without being asked
        assert wait_until(
            lambda: router.counters.resyncs_completed >= len(victims)
            and all(router.replicas[v].in_write_set for v in victims),
            timeout_s=30.0,
        ), (
            f"monitor never repaired {victims}: "
            f"{ {v: router.replicas[v].as_dict() for v in victims} }, "
            f"failed={router.counters.resyncs_failed}"
        )

        def settled():
            with cluster.client(check=False) as client:
                client.query(["uid"])  # drives probe + catch-up
            return (
                all(
                    tracker.state == REPLICA_HEALTHY
                    for tracker in router.replicas.values()
                )
                and not any(router._catchup.values())
            )

        assert wait_until(settled), "replicas never finished catching up"

        # ---- zero lost acked writes, zero silent drops ----------------
        expected = {uid for source in pool + [pump] for uid in source.live}
        with cluster.client() as client:
            response = client.query_response(["uid"])
            assert response.ok, response.status
            served = [row["uid"] for row in response.get("rows")]
        assert sorted(served) == sorted(expected)
        assert len(served) == len(set(served))

        # every victim's own copy agrees with its peers, shard by shard
        n_shards = cluster.placement.n_shards
        for victim in victims:
            for shard in cluster.placement.shards_on(victim):
                peer = next(
                    node.name
                    for node in cluster.placement.replicas(shard)
                    if node.name != victim
                )
                with cluster.node_client(victim) as target, \
                        cluster.node_client(peer) as other:
                    assert shard_uids(target, n_shards, shard) == \
                        shard_uids(other, n_shards, shard)

        for name, thread in cluster.nodes.items():
            problems = thread.server.table.check_consistency()
            assert problems == [], f"{name}: {problems}"

        counters = router.counters
        assert counters.nodes_diverged >= len(victims)
        assert counters.catchup_dropped > 0, "divergence without drops?"
        assert counters.resyncs_started >= len(victims)
        assert counters.resyncs_completed >= len(victims)
        assert counters.sync_entities_streamed > 0


class TestResyncUnderLiveTraffic:
    def test_divergence_repaired_with_zero_lost_writes(self, tmp_path):
        run_divergence_chaos(tmp_path, workers=4, ops=80, victims=["node1"])

    @pytest.mark.slow
    def test_soak_two_divergence_cycles_under_heavier_traffic(self, tmp_path):
        run_divergence_chaos(
            tmp_path, workers=6, ops=200, victims=["node1", "node2"],
        )
