"""Tests of the cost-model calibration layer.

The fit's job in the adaptation loop is not absolute accuracy — it is
*ranking*: a calibrated model must order query shapes the same way the
measured wall clock does on this host.  The differential tests pin
exactly that.
"""

import random

import pytest

from repro.cost.calibrate import (
    MIN_FIT_SAMPLES,
    CalibrationSample,
    OnlineCalibrator,
    _predict_ms,
    fit_cost_model,
)
from repro.cost.model import CostModel


def synthesize(truth, shapes, noise=0.0, rng=None):
    """Samples whose wall time follows *truth* over the given shapes."""
    samples = []
    for pages, entities, branches, rows in shapes:
        time_ms = (
            truth.page_read_ms * pages
            + truth.record_scan_ms * entities
            + truth.row_output_ms * rows
        )
        if branches:
            time_ms += truth.branch_overhead_ms * branches
            time_ms += truth.union_project_ms * entities
        if noise and rng is not None:
            time_ms *= 1.0 + rng.uniform(-noise, noise)
        samples.append(CalibrationSample(
            pages_read=pages, entities_read=entities,
            union_branches=branches, rows_returned=rows,
            wall_time_ms=time_ms,
        ))
    return samples


def diverse_shapes(n=40, seed=7):
    rng = random.Random(seed)
    return [
        (
            rng.randint(1, 200),        # pages
            rng.randint(10, 20_000),    # entities
            rng.randint(0, 40),         # branches
            rng.randint(0, 2_000),      # rows
        )
        for _ in range(n)
    ]


class TestFit:
    def test_recovers_known_coefficients(self):
        truth = CostModel(
            page_read_ms=0.2, record_scan_ms=0.004,
            branch_overhead_ms=0.5, row_output_ms=0.002,
            union_project_ms=0.0,
        )
        samples = synthesize(truth, diverse_shapes())
        report = fit_cost_model(samples, ridge=1e-6)
        assert report.fitted
        model = report.model
        assert model.page_read_ms == pytest.approx(0.2, rel=0.05)
        assert model.record_scan_ms == pytest.approx(0.004, rel=0.05)
        assert model.branch_overhead_ms == pytest.approx(0.5, rel=0.05)
        assert model.row_output_ms == pytest.approx(0.002, rel=0.05)
        assert report.r2 > 0.999
        assert report.mean_abs_error_ms < 0.1

    def test_fitted_model_zeroes_the_collinear_union_term(self):
        """record_scan absorbs union projection; keeping both would
        double-count every entity read inside a UNION ALL."""
        truth = CostModel()
        samples = synthesize(truth, diverse_shapes())
        report = fit_cost_model(samples)
        assert report.fitted
        assert report.model.union_project_ms == 0.0

    def test_write_side_constants_are_untouched(self):
        base = CostModel(record_move_ms=9.9, partition_create_ms=7.7)
        samples = synthesize(base, diverse_shapes())
        report = fit_cost_model(samples, base=base)
        assert report.model.record_move_ms == 9.9
        assert report.model.partition_create_ms == 7.7

    def test_too_few_samples_falls_back_to_the_prior(self):
        base = CostModel()
        samples = synthesize(base, diverse_shapes(n=MIN_FIT_SAMPLES - 1))
        report = fit_cost_model(samples, base=base)
        assert not report.fitted
        assert report.model is base

    def test_degenerate_samples_do_not_explode(self):
        """Identical shapes make the system rank-deficient; the ridge
        pulls the solution toward the prior instead of blowing up."""
        base = CostModel()
        shape = [(10, 100, 2, 10)] * 20
        samples = synthesize(base, shape)
        report = fit_cost_model(samples, base=base)
        for sample in samples:
            assert _predict_ms(report.model, sample) == pytest.approx(
                sample.wall_time_ms, rel=0.2
            )

    def test_negative_solutions_are_clamped(self):
        # wall times *decreasing* in pages: the unconstrained solution
        # would go negative; the model must clamp to zero
        samples = [
            CalibrationSample(pages_read=pages, entities_read=10_000 - pages,
                              union_branches=0, rows_returned=0,
                              wall_time_ms=float(10_000 - pages))
            for pages in range(0, 4_000, 100)
        ]
        report = fit_cost_model(samples, ridge=1e-6)
        assert report.fitted
        assert report.model.page_read_ms >= 0.0

    def test_noisy_fit_preserves_rank_order(self):
        """The differential contract: under measurement noise the fitted
        model must still rank shapes by their true cost."""
        truth = CostModel(
            page_read_ms=0.1, record_scan_ms=0.002,
            branch_overhead_ms=0.3, row_output_ms=0.001,
            union_project_ms=0.0,
        )
        rng = random.Random(13)
        samples = synthesize(truth, diverse_shapes(n=80), noise=0.2, rng=rng)
        report = fit_cost_model(samples, ridge=1e-3)
        assert report.fitted
        probes = synthesize(truth, diverse_shapes(n=30, seed=99))
        ranked_true = sorted(probes, key=lambda s: s.wall_time_ms)
        for cheap, costly in zip(ranked_true, ranked_true[5:]):
            # compare pairs separated by 5 ranks — adjacent pairs can
            # legitimately flip inside the noise band
            assert (_predict_ms(report.model, cheap)
                    < _predict_ms(report.model, costly))


class TestMeasuredRankOrder:
    def test_calibrated_model_ranks_real_executions(self):
        """Fit from real measured executions, then check the model ranks
        a full scan above a selective pruned scan — the one ordering the
        advisor's decisions hinge on."""
        from repro.core.config import CinderellaConfig
        from repro.query.query import AttributeQuery
        from repro.table.partitioned import CinderellaTable

        table = CinderellaTable(CinderellaConfig(
            max_partition_size=50.0, weight=0.3, use_synopsis_index=True
        ))
        for i in range(600):
            table.insert(
                {"common": i, f"g{i % 6}": i, f"h{i % 6}": i}, entity_id=i
            )
        calibrator = OnlineCalibrator()
        broad = AttributeQuery(("common",), "any")
        selective = AttributeQuery(("g0",), "any")
        for _ in range(12):
            calibrator.observe(table.execute_naive(broad).stats)
            calibrator.observe(table.execute(selective).stats)
        assert calibrator.maybe_refit()
        model = calibrator.model
        full_ms = model.query_time_ms(table.execute_naive(broad).stats)
        pruned_ms = model.query_time_ms(table.execute(selective).stats)
        assert pruned_ms < full_ms


class TestOnlineCalibrator:
    def test_refits_at_startup_once_the_window_fills(self):
        calibrator = OnlineCalibrator(min_samples=16)
        truth = CostModel()
        samples = synthesize(truth, diverse_shapes(n=15))
        for sample in samples:
            calibrator.observe_sample(sample)
        assert not calibrator.needs_refit()  # window not full yet
        calibrator.observe_sample(synthesize(truth, diverse_shapes(n=1))[0])
        assert calibrator.needs_refit()  # never fitted: startup refit
        assert calibrator.maybe_refit()
        assert calibrator.refits == 1
        assert not calibrator.needs_refit()  # fitted and accurate: settled

    def test_drift_triggers_a_refit(self):
        calibrator = OnlineCalibrator(min_samples=16, refit_rel_error=0.5)
        truth = CostModel()
        for sample in synthesize(truth, diverse_shapes(n=32)):
            calibrator.observe_sample(sample)
        assert calibrator.maybe_refit()
        # the host "slows down" 4x: the old fit misses badly
        slower = CostModel(
            page_read_ms=truth.page_read_ms * 4,
            record_scan_ms=truth.record_scan_ms * 4,
            branch_overhead_ms=truth.branch_overhead_ms * 4,
            row_output_ms=truth.row_output_ms * 4,
        )
        for sample in synthesize(slower, diverse_shapes(n=128, seed=11)):
            calibrator.observe_sample(sample)
        assert calibrator.prediction_error() > 0.5
        assert calibrator.needs_refit()
        assert calibrator.maybe_refit()
        assert calibrator.refits == 2
        assert calibrator.model.page_read_ms == pytest.approx(
            slower.page_read_ms, rel=0.3
        )

    def test_pure_cache_hits_carry_no_signal(self):
        from repro.query.executor import ExecutionStats

        calibrator = OnlineCalibrator()
        calibrator.observe(ExecutionStats())  # zero-work: ignored
        assert calibrator.sample_count == 0

    def test_window_is_bounded(self):
        calibrator = OnlineCalibrator(window=8)
        for sample in synthesize(CostModel(), diverse_shapes(n=20)):
            calibrator.observe_sample(sample)
        assert calibrator.sample_count == 8

    def test_status_is_wire_shaped(self):
        import json

        calibrator = OnlineCalibrator()
        status = json.loads(json.dumps(calibrator.status()))
        assert status == {
            "samples": 0, "refits": 0,
            "prediction_error": 0.0, "fitted": False,
        }
