"""Tests for the partition catalog."""

import pytest

from repro.catalog.catalog import (
    EntityNotFoundError,
    PartitionCatalog,
    PartitionNotFoundError,
)
from repro.catalog.synopsis_index import SynopsisIndex


class TestPartitionLifecycle:
    def test_create_assigns_increasing_pids(self):
        c = PartitionCatalog()
        assert c.create_partition().pid == 0
        assert c.create_partition().pid == 1
        assert len(c) == 2
        assert c.partition_ids() == (0, 1)

    def test_get_unknown_raises(self):
        with pytest.raises(PartitionNotFoundError):
            PartitionCatalog().get(3)

    def test_drop_empty_partition(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.drop_partition(p.pid)
        assert len(c) == 0
        assert p.pid not in c

    def test_drop_nonempty_partition_rejected(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.add_entity(p.pid, 1, 0b1, 1.0)
        with pytest.raises(ValueError):
            c.drop_partition(p.pid)

    def test_pids_never_reused_after_drop(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.drop_partition(p.pid)
        assert c.create_partition().pid == 1


class TestEntityPlacement:
    def test_add_and_locate(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.add_entity(p.pid, 7, 0b11, 1.0)
        assert c.partition_of(7) == p.pid
        assert c.has_entity(7)
        assert c.entity_count == 1

    def test_double_placement_rejected(self):
        c = PartitionCatalog()
        p1 = c.create_partition()
        p2 = c.create_partition()
        c.add_entity(p1.pid, 7, 0b1, 1.0)
        with pytest.raises(ValueError):
            c.add_entity(p2.pid, 7, 0b1, 1.0)

    def test_remove_returns_placement(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.add_entity(p.pid, 7, 0b101, 2.0)
        assert c.remove_entity(7) == (p.pid, 0b101, 2.0)
        assert not c.has_entity(7)

    def test_locate_unknown_raises(self):
        with pytest.raises(EntityNotFoundError):
            PartitionCatalog().partition_of(9)

    def test_update_entity_in_place(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.add_entity(p.pid, 7, 0b01, 1.0)
        assert c.update_entity(7, 0b10, 3.0) == p.pid
        assert p.mask == 0b10
        assert p.total_size == 3.0


class TestCandidates:
    def test_without_index_scans_everything(self):
        c = PartitionCatalog()
        p1 = c.create_partition()
        p2 = c.create_partition()
        c.add_entity(p1.pid, 1, 0b01, 1.0)
        c.add_entity(p2.pid, 2, 0b10, 1.0)
        assert {p.pid for p in c.candidates(0b01, 0.5)} == {p1.pid, p2.pid}

    def test_with_index_restricts_to_overlapping(self):
        c = PartitionCatalog(index=SynopsisIndex())
        p1 = c.create_partition()
        p2 = c.create_partition()
        c.add_entity(p1.pid, 1, 0b01, 1.0)
        c.add_entity(p2.pid, 2, 0b10, 1.0)
        assert {p.pid for p in c.candidates(0b01, 0.5)} == {p1.pid}

    def test_with_index_weight_one_falls_back_to_full_scan(self):
        c = PartitionCatalog(index=SynopsisIndex())
        p1 = c.create_partition()
        p2 = c.create_partition()
        c.add_entity(p1.pid, 1, 0b01, 1.0)
        c.add_entity(p2.pid, 2, 0b10, 1.0)
        assert {p.pid for p in c.candidates(0b01, 1.0)} == {p1.pid, p2.pid}

    def test_empty_entity_finds_empty_synopsis_partitions(self):
        c = PartitionCatalog(index=SynopsisIndex())
        p1 = c.create_partition()
        p2 = c.create_partition()
        c.add_entity(p1.pid, 1, 0, 1.0)
        c.add_entity(p2.pid, 2, 0b1, 1.0)
        assert {p.pid for p in c.candidates(0, 0.5)} == {p1.pid}


class TestInvariants:
    def test_healthy_catalog_reports_nothing(self):
        c = PartitionCatalog(index=SynopsisIndex())
        p = c.create_partition()
        c.add_entity(p.pid, 1, 0b11, 1.0)
        assert c.check_invariants() == []

    def test_lingering_empty_partition_reported(self):
        c = PartitionCatalog()
        c.create_partition()
        assert any("empty partition" in p for p in c.check_invariants())

    def test_corrupted_synopsis_reported(self):
        c = PartitionCatalog()
        p = c.create_partition()
        c.add_entity(p.pid, 1, 0b1, 1.0)
        p.mask = 0b111  # corrupt
        assert any("synopsis" in msg for msg in c.check_invariants())
