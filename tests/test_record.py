"""Tests for the sparse interpreted record format."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.dictionary import AttributeDictionary
from repro.storage.record import (
    RecordFormatError,
    deserialize_record,
    serialize_record,
)

values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**61), max_value=2**61),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
attributes = st.dictionaries(
    st.text(min_size=1, max_size=10).filter(bool), values, max_size=15
)


class TestRoundtrip:
    def test_simple_record(self):
        d = AttributeDictionary()
        record = serialize_record(7, {"name": "Canon", "weight": 198}, d)
        eid, attrs = deserialize_record(record, d)
        assert eid == 7
        assert attrs == {"name": "Canon", "weight": 198}

    def test_all_value_types(self):
        d = AttributeDictionary()
        original = {
            "null": None,
            "true": True,
            "false": False,
            "int": -12345,
            "float": 3.5,
            "str": "héllo wörld",
            "bytes": b"\x00\x01\xff",
        }
        _, attrs = deserialize_record(serialize_record(1, original, d), d)
        assert attrs == original

    def test_empty_attribute_set(self):
        d = AttributeDictionary()
        eid, attrs = deserialize_record(serialize_record(3, {}, d), d)
        assert (eid, attrs) == (3, {})

    def test_deterministic_bytes(self):
        d = AttributeDictionary()
        a = serialize_record(1, {"x": 1, "y": 2}, d)
        b = serialize_record(1, {"y": 2, "x": 1}, d)
        assert a == b

    @given(st.integers(0, 2**40), attributes)
    def test_roundtrip_property(self, eid, attrs):
        d = AttributeDictionary()
        eid_out, attrs_out = deserialize_record(serialize_record(eid, attrs, d), d)
        assert eid_out == eid
        assert set(attrs_out) == set(attrs)
        for key, value in attrs.items():
            out = attrs_out[key]
            if isinstance(value, float):
                assert out == value or (math.isinf(value) and out == value)
            else:
                assert out == value

    def test_sparse_records_are_compact(self):
        """A 1-attribute record must not pay for a 100-attribute universe."""
        d = AttributeDictionary(f"attr{i}" for i in range(100))
        record = serialize_record(1, {"attr0": 1}, d)
        assert len(record) < 10


class TestErrors:
    def test_unsupported_type_rejected(self):
        d = AttributeDictionary()
        with pytest.raises(RecordFormatError):
            serialize_record(1, {"x": object()}, d)

    def test_huge_int_rejected(self):
        d = AttributeDictionary()
        with pytest.raises(RecordFormatError):
            serialize_record(1, {"x": 2**80}, d)

    def test_truncated_record_rejected(self):
        d = AttributeDictionary()
        record = serialize_record(1, {"name": "long-enough-value"}, d)
        with pytest.raises(RecordFormatError):
            deserialize_record(record[:-3], d)

    def test_trailing_bytes_rejected(self):
        d = AttributeDictionary()
        record = serialize_record(1, {"x": 1}, d)
        with pytest.raises(RecordFormatError):
            deserialize_record(record + b"\x00", d)
