"""Federation battery: documents, merging, and the cluster CLI.

Unit coverage drives :mod:`repro.obs.federation` on fabricated
documents (no sockets): node labeling, cross-node sums, bucket-wise
histogram merging, bounds-mismatch refusal, staleness and
unreachability marking, quantile estimation, and both expositions.
The CLI class then runs ``repro obs --cluster``, the fleet Prometheus
endpoint, and ``repro top`` against a real two-node
:class:`~repro.router.testing.ClusterHarness` — including a killed
node rendered as UNREACHABLE, never as silent zeros.
"""

import json
import socket
import threading
import urllib.request

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs.federation import (
    FederatedView,
    local_obs_document,
    merge_documents,
    quantile_from_buckets,
    scrape_cluster,
    unreachable_document,
)
from repro.obs.registry import MetricsRegistry
from repro.router.testing import ClusterHarness


@pytest.fixture(autouse=True)
def _always_disable():
    yield
    obs.disable()


def _node_document(
    name: str,
    requests: float,
    buckets=(0.1, 1.0),
    observations=(),
    collected_at: float = 1000.0,
) -> dict:
    """A fabricated per-node observability document."""
    registry = MetricsRegistry()
    family = registry.counter(
        "repro_server_requests_handled_total", "requests",
        labelnames=("op",),
    )
    family.labels(op="query").inc(requests)
    hist = registry.histogram(
        "repro_server_request_seconds", "latency",
        labelnames=("op",), buckets=buckets,
    )
    for value in observations:
        hist.labels(op="query").observe(value)
    return {
        "name": name,
        "tier": "node",
        "collected_at": collected_at,
        "enabled": True,
        "registry": registry.to_json_obj(),
        "traces": {"top_spans": [["node.request", int(requests), 0.5]]},
    }


class TestDocuments:
    def test_disabled_process_still_identifies_itself(self):
        document = local_obs_document("n1")
        assert document["name"] == "n1"
        assert document["tier"] == "node"
        assert document["enabled"] is False
        assert "registry" not in document

    def test_enabled_document_carries_registry_and_traces(self):
        obs.enable()
        obs.inc("repro_test_total", help_text="test counter")
        with obs.span("unit.work"):
            pass
        document = local_obs_document("n1", tier="router")
        assert document["enabled"] is True
        assert document["tier"] == "router"
        names = {m["name"] for m in document["registry"]["metrics"]}
        assert "repro_test_total" in names
        assert document["traces"]["top_spans"][0][0] == "unit.work"

    def test_document_flushes_legacy_mirrors_first(self):
        """The satellite contract: a wire-visible snapshot must never be
        stale by one mirror-flush interval."""
        from repro.metrics.telemetry import RouterCounters

        obs.enable()
        counters = RouterCounters()
        counters.obs_scrapes += 3
        document = local_obs_document("r1", tier="router")
        by_name = {
            m["name"]: m for m in document["registry"]["metrics"]
        }
        assert (
            by_name["repro_router_obs_scrapes_total"]["samples"][0]["value"]
            == 3.0
        )

    def test_unreachable_document_shape(self):
        document = unreachable_document("n2", "connection refused")
        assert document["unreachable"] is True
        assert document["error"] == "connection refused"
        assert document["enabled"] is False


class TestMerge:
    def test_samples_gain_node_labels_and_sums_cross_nodes(self):
        view = merge_documents(
            [_node_document("n0", 10), _node_document("n1", 32)],
            now=1000.0,
        )
        family = view.families["repro_server_requests_handled_total"]
        nodes = {s["labels"]["node"] for s in family["samples"]}
        assert nodes == {"n0", "n1"}
        assert view.counter_total(
            "repro_server_requests_handled_total", op="query"
        ) == 42.0
        assert view.counter_total(
            "repro_server_requests_handled_total", op="query", node="n1"
        ) == 32.0

    def test_histograms_merge_bucket_wise(self):
        view = merge_documents([
            _node_document("n0", 1, observations=(0.05, 0.5)),
            _node_document("n1", 1, observations=(0.05, 5.0)),
        ], now=1000.0)
        merged = view.merged_histogram(
            "repro_server_request_seconds", op="query"
        )
        assert merged["count"] == 4.0
        assert merged["buckets"] == [
            (0.1, 2.0), (1.0, 3.0), (float("inf"), 4.0),
        ]
        assert merged["sum"] == pytest.approx(5.6)

    def test_bounds_mismatch_refuses_merge_but_keeps_samples(self):
        view = merge_documents([
            _node_document("n0", 1, buckets=(0.1, 1.0), observations=(0.05,)),
            _node_document("n1", 1, buckets=(0.2, 2.0), observations=(0.05,)),
        ], now=1000.0)
        assert view.merged_histogram(
            "repro_server_request_seconds", op="query"
        ) is None
        assert "repro_server_request_seconds" in view.mixed_bucket_families
        # the counts fallback still answers with per-sample floors
        good, total = view.histogram_counts(
            "repro_server_request_seconds", 0.5, op="query"
        )
        assert total == 2.0
        assert good == 2.0  # 0.1-bucket on n0, 0.2-bucket on n1

    def test_histogram_counts_use_conservative_floor(self):
        """An SLO threshold between bounds reads the bucket below it —
        never interpolated credit."""
        view = merge_documents([
            _node_document("n0", 1, observations=(0.05, 0.5, 0.5)),
        ], now=1000.0)
        good, total = view.histogram_counts(
            "repro_server_request_seconds", 0.7, op="query"
        )
        assert (good, total) == (1.0, 3.0)  # floor at le=0.1, not 1.0

    def test_unreachable_and_stale_marking(self):
        view = merge_documents(
            [
                _node_document("fresh", 1, collected_at=995.0),
                _node_document("old", 1, collected_at=100.0),
                unreachable_document("dead", "RST"),
            ],
            stale_after_s=60.0,
            now=1000.0,
        )
        assert view.unreachable == ["dead"]
        assert view.stale == ["old"]
        by_name = {s["name"]: s for s in view.sources}
        assert by_name["fresh"]["age_s"] == pytest.approx(5.0)
        assert by_name["dead"]["error"] == "RST"
        # an unreachable node contributes no samples — not zeros
        assert view.counter_total(
            "repro_server_requests_handled_total", node="dead"
        ) == 0.0
        family = view.families["repro_server_requests_handled_total"]
        assert all(
            s["labels"]["node"] != "dead" for s in family["samples"]
        )

    def test_quantiles_on_merged_histograms(self):
        view = merge_documents([
            _node_document("n0", 1, observations=(0.05,) * 9 + (0.5,)),
        ], now=1000.0)
        p50 = view.quantile("repro_server_request_seconds", 0.5, op="query")
        assert 0.0 < p50 <= 0.1
        p99 = view.quantile("repro_server_request_seconds", 0.99, op="query")
        assert 0.1 < p99 <= 1.0

    def test_prometheus_exposition_carries_node_up_rows(self):
        view = merge_documents(
            [_node_document("n0", 5), unreachable_document("n1", "refused")],
            now=1000.0,
        )
        text = view.to_prometheus()
        assert 'repro_cluster_node_up{node="n0",tier="node"} 1' in text
        assert 'repro_cluster_node_up{node="n1",tier="node"} 0' in text
        assert 'node="n0"' in text and "repro_server_requests_handled" in text

    def test_json_round_trip_preserves_answers(self):
        view = merge_documents([
            _node_document("n0", 7, observations=(0.05, 0.5)),
            unreachable_document("n1", "refused"),
        ], now=1000.0)
        rebuilt = FederatedView.from_json_obj(view.to_json_obj())
        assert rebuilt.unreachable == ["n1"]
        assert rebuilt.counter_total(
            "repro_server_requests_handled_total", op="query"
        ) == 7.0
        assert rebuilt.merged_histogram(
            "repro_server_request_seconds", op="query"
        )["count"] == view.merged_histogram(
            "repro_server_request_seconds", op="query"
        )["count"]
        assert rebuilt.traces["n0"]["top_spans"][0][0] == "node.request"

    def test_scrape_cluster_turns_raises_into_unreachable(self):
        def request(name: str) -> dict:
            if name == "bad":
                raise ConnectionRefusedError("no route")
            return _node_document(name, 1)

        view = scrape_cluster(request, ["good", "bad"])
        assert view.unreachable == ["bad"]
        assert [s["name"] for s in view.sources] == ["good", "bad"]

    def test_malformed_documents_are_skipped_not_fatal(self):
        view = merge_documents([
            "not a dict",
            {"name": "odd", "enabled": True, "registry": "not a dict"},
            {"enabled": True, "registry": {"metrics": ["junk", {"x": 1}]}},
            _node_document("n0", 1),
        ], now=1000.0)
        assert view.counter_total(
            "repro_server_requests_handled_total", op="query"
        ) == 1.0


class TestQuantileFromBuckets:
    def test_empty_and_zero_total(self):
        assert quantile_from_buckets([], 0.5) is None
        assert quantile_from_buckets([(0.1, 0), (float("inf"), 0)], 0.5) is None

    def test_interpolates_within_bucket(self):
        pairs = [(0.1, 0.0), (0.2, 10.0), (float("inf"), 10.0)]
        assert quantile_from_buckets(pairs, 0.5) == pytest.approx(0.15)

    def test_inf_bucket_answers_highest_finite_bound(self):
        pairs = [(0.1, 0.0), (1.0, 0.0), (float("inf"), 4.0)]
        assert quantile_from_buckets(pairs, 0.99) == 1.0


class TestClusterCli:
    """``repro obs --cluster`` / ``repro top`` against a live cluster."""

    def _load(self, harness: ClusterHarness, queries: int = 6) -> str:
        with harness.client() as client:
            for eid in range(24):
                client.insert({"a": eid % 4, "b": eid % 3}, eid=eid)
            for _ in range(queries):
                client.query(["a"])
        host, port = harness.router_address
        return f"{host}:{port}"

    def test_cluster_summary_marks_killed_node_unreachable(
        self, tmp_path, capsys
    ):
        obs.enable(propagate=True)
        with ClusterHarness(tmp_path, n_nodes=2) as harness:
            address = self._load(harness)
            assert cli_main(["obs", "--cluster", address]) == 0
            healthy = capsys.readouterr().out
            assert "Cluster observability via" in healthy
            assert "node0" in healthy and "node1" in healthy
            assert "router" in healthy
            assert "UNREACHABLE" not in healthy
            assert "p99 ms" in healthy

            harness.kill_node("node1")
            assert cli_main(["obs", "--cluster", address]) == 1
            degraded = capsys.readouterr().out
            assert "UNREACHABLE" in degraded

    def test_cluster_prometheus_and_json_formats(self, tmp_path, capsys):
        obs.enable(propagate=True)
        with ClusterHarness(tmp_path, n_nodes=2) as harness:
            address = self._load(harness)
            assert cli_main([
                "obs", "--cluster", address, "--format", "prometheus",
            ]) == 0
            text = capsys.readouterr().out
            assert 'repro_cluster_node_up{node="node0",tier="node"} 1' in text
            assert 'repro_cluster_node_up{node="router",tier="router"} 1' in text
            assert 'node="node1"' in text

            assert cli_main([
                "obs", "--cluster", address, "--format", "json",
            ]) == 0
            document = json.loads(capsys.readouterr().out)
            names = {s["name"] for s in document["sources"]}
            assert names == {"node0", "node1", "router"}

    def test_fleet_prometheus_endpoint(self, tmp_path, capsys):
        obs.enable(propagate=True)
        with ClusterHarness(tmp_path, n_nodes=2) as harness:
            address = self._load(harness)
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                http_port = probe.getsockname()[1]
            server = threading.Thread(
                target=cli_main,
                args=([
                    "obs", "--cluster", address,
                    "--listen", str(http_port), "--max-requests", "1",
                ],),
                daemon=True,
            )
            server.start()
            body = None
            for _ in range(50):
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{http_port}/metrics", timeout=5
                    ) as response:
                        body = response.read().decode()
                    break
                except OSError:
                    import time
                    time.sleep(0.1)
            server.join(timeout=10)
            assert body is not None, "endpoint never answered"
            assert "repro_cluster_node_up" in body
            assert 'node="node0"' in body

    def test_top_renders_rates_replicas_and_slos(self, tmp_path, capsys):
        obs.enable(propagate=True)
        with ClusterHarness(tmp_path, n_nodes=2) as harness:
            address = self._load(harness, queries=10)
            assert cli_main([
                "top", address, "--iterations", "2",
                "--interval", "0.05", "--no-clear",
            ]) == 0
            out = capsys.readouterr().out
            assert "repro top" in out
            assert "Requests by node and verb" in out
            assert "Replica health" in out
            assert "SLO burn rates" in out
            assert "query-availability" in out
            assert "shed rate" in out
