"""End-to-end integration tests reproducing the paper's claims in miniature.

Each test here is a scaled-down version of one evaluation finding; the
full-size versions live in ``benchmarks/``.
"""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency, universal_table_efficiency
from repro.cost.model import CostModel
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.querygen import build_query_workload, representative_queries


@pytest.fixture(scope="module")
def loaded_tables():
    """DBpedia mini data set loaded into both table layouts."""
    dataset = generate_dbpedia_persons(n_entities=4000, seed=11)
    # 1 KiB pages keep partitions multi-page at this miniature scale, so
    # the per-page I/O accounting shows the paper's effect clearly
    cinderella = CinderellaTable(
        CinderellaConfig(max_partition_size=120, weight=0.3), page_size=1024
    )
    universal = UniversalTable(page_size=1024)
    for entity in dataset.entities:
        cinderella.insert(entity.attributes, entity_id=entity.entity_id)
        universal.insert(entity.attributes, entity_id=entity.entity_id)
    return dataset, cinderella, universal


@pytest.fixture(scope="module")
def workload(loaded_tables):
    dataset, cinderella, _universal = loaded_tables
    d = cinderella.dictionary
    masks = [mask for mask in cinderella.entity_masks().values()]
    return representative_queries(
        build_query_workload(masks, d, max_triples=60), per_bucket=2
    )


class TestSectionVB:
    """Irregular data: selective queries benefit, unselective ones pay."""

    def test_physical_layout_consistent_after_load(self, loaded_tables):
        _dataset, cinderella, _universal = loaded_tables
        assert cinderella.check_consistency() == []
        assert cinderella.partitioner.split_count > 0

    def test_identical_answers_on_both_layouts(self, loaded_tables, workload):
        _dataset, cinderella, universal = loaded_tables
        for spec in workload[:12]:
            rows_c = sorted(map(repr, cinderella.execute(spec.query).rows))
            rows_u = sorted(map(repr, universal.execute(spec.query).rows))
            assert rows_c == rows_u

    def test_selective_queries_read_less_data(self, loaded_tables, workload):
        _dataset, cinderella, universal = loaded_tables
        selective = [s for s in workload if s.selectivity < 0.05]
        assert selective, "workload must contain selective queries"
        for spec in selective:
            stats_c = cinderella.execute(spec.query).stats
            stats_u = universal.execute(spec.query).stats
            assert stats_c.entities_read < stats_u.entities_read / 2

    def test_cost_model_speedup_for_selective_queries(self, loaded_tables, workload):
        model = CostModel()
        _dataset, cinderella, universal = loaded_tables
        selective = [s for s in workload if s.selectivity < 0.05]
        speedups = []
        for spec in selective:
            time_c = model.query_time_ms(cinderella.execute(spec.query).stats)
            time_u = model.query_time_ms(universal.execute(spec.query).stats)
            speedups.append(time_u / time_c)
        assert sum(speedups) / len(speedups) > 1.5

    def test_unselective_queries_pay_union_overhead(self, loaded_tables, workload):
        """Figure 5's right side: selectivity > 0.3 is slower on Cinderella."""
        model = CostModel()
        _dataset, cinderella, universal = loaded_tables
        broad = [s for s in workload if s.selectivity > 0.9]
        assert broad
        for spec in broad:
            time_c = model.query_time_ms(cinderella.execute(spec.query).stats)
            time_u = model.query_time_ms(universal.execute(spec.query).stats)
            assert time_c > time_u

    def test_efficiency_improves_over_universal_table(self, loaded_tables, workload):
        _dataset, cinderella, _universal = loaded_tables
        d = cinderella.dictionary
        queries = [s.query.synopsis_mask(d) for s in workload]
        entities = [(m, 1.0) for m in cinderella.entity_masks().values()]
        eff_c = catalog_efficiency(cinderella.catalog, queries)
        eff_u = universal_table_efficiency(entities, queries)
        assert eff_c > eff_u


class TestWeightInfluence:
    """Figure 7 in miniature: weight sweeps change the partition count."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dbpedia_persons(n_entities=1500, seed=13)

    def partition_count(self, dataset, weight: float) -> int:
        from repro.core.partitioner import CinderellaPartitioner

        d = dataset.dictionary()
        p = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=500, weight=weight)
        )
        for entity in dataset.entities:
            p.insert(entity.entity_id, entity.synopsis_mask(d))
        return len(p.catalog)

    def test_lower_weight_more_partitions(self, dataset):
        counts = {w: self.partition_count(dataset, w) for w in (0.0, 0.3, 0.8)}
        assert counts[0.0] > counts[0.3] > counts[0.8]

    def test_weight_zero_partitions_are_homogeneous(self, dataset):
        from repro.core.partitioner import CinderellaPartitioner

        d = dataset.dictionary()
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=500, weight=0.0))
        for entity in dataset.entities[:400]:
            p.insert(entity.entity_id, entity.synopsis_mask(d))
        assert all(part.sparseness() == 0.0 for part in p.catalog)


class TestModificationMix:
    def test_sustained_mixed_workload_stays_consistent(self):
        import random

        dataset = generate_dbpedia_persons(n_entities=800, seed=5)
        table = CinderellaTable(CinderellaConfig(max_partition_size=60, weight=0.3))
        rng = random.Random(17)
        live = []
        for entity in dataset.entities[:400]:
            table.insert(entity.attributes, entity_id=entity.entity_id)
            live.append(entity.entity_id)
        for entity in dataset.entities[400:]:
            roll = rng.random()
            if roll < 0.6:
                table.insert(entity.attributes, entity_id=entity.entity_id)
                live.append(entity.entity_id)
            elif roll < 0.8 and live:
                victim = live.pop(rng.randrange(len(live)))
                table.delete(victim)
            elif live:
                target = live[rng.randrange(len(live))]
                table.update(target, entity.attributes)
        assert table.check_consistency() == []
        assert len(table) == len(live)
