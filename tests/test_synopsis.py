"""Tests for synopsis mask algebra and the Synopsis wrapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.dictionary import AttributeDictionary
from repro.core.synopsis import (
    Synopsis,
    difference,
    is_relevant,
    missing_from,
    overlap,
    union_count,
)

masks = st.integers(min_value=0, max_value=2**80 - 1)


def as_set(mask: int) -> set[int]:
    return {i for i in range(mask.bit_length()) if mask >> i & 1}


class TestMaskFunctions:
    @given(masks, masks)
    def test_overlap_matches_set_intersection(self, a, b):
        assert overlap(a, b) == len(as_set(a) & as_set(b))

    @given(masks, masks)
    def test_union_matches_set_union(self, a, b):
        assert union_count(a, b) == len(as_set(a) | as_set(b))

    @given(masks, masks)
    def test_difference_matches_symmetric_difference(self, a, b):
        assert difference(a, b) == len(as_set(a) ^ as_set(b))

    @given(masks, masks)
    def test_missing_from_matches_set_difference(self, a, b):
        assert missing_from(a, b) == len(as_set(b) - as_set(a))

    @given(masks, masks)
    def test_inclusion_exclusion(self, a, b):
        assert union_count(a, b) == (
            a.bit_count() + b.bit_count() - overlap(a, b)
        )

    @given(masks, masks)
    def test_is_relevant_iff_shared_attribute(self, a, b):
        assert is_relevant(a, b) == bool(as_set(a) & as_set(b))


class TestSynopsisWrapper:
    @pytest.fixture
    def dictionary(self):
        return AttributeDictionary(["name", "weight", "screen", "aperture"])

    def test_of_builds_from_names(self, dictionary):
        s = Synopsis.of(["name", "screen"], dictionary)
        assert s.mask == 0b101
        assert s.attributes() == ("name", "screen")

    def test_len_and_bool(self, dictionary):
        assert len(Synopsis.of(["name", "weight"], dictionary)) == 2
        assert not Synopsis(0, dictionary)
        assert Synopsis(1, dictionary)

    def test_contains(self, dictionary):
        s = Synopsis.of(["name"], dictionary)
        assert "name" in s
        assert "weight" not in s
        assert "never-seen" not in s

    def test_set_operators(self, dictionary):
        a = Synopsis.of(["name", "weight"], dictionary)
        b = Synopsis.of(["weight", "screen"], dictionary)
        assert (a & b).attributes() == ("weight",)
        assert set((a | b).attributes()) == {"name", "weight", "screen"}
        assert set((a ^ b).attributes()) == {"name", "screen"}

    def test_overlaps_and_contains_all(self, dictionary):
        a = Synopsis.of(["name", "weight"], dictionary)
        b = Synopsis.of(["weight"], dictionary)
        c = Synopsis.of(["screen"], dictionary)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.contains_all(b)
        assert not b.contains_all(a)

    def test_equality_and_hash(self, dictionary):
        a = Synopsis.of(["name"], dictionary)
        b = Synopsis.of(["name"], dictionary)
        assert a == b
        assert hash(a) == hash(b)

    def test_cross_dictionary_operations_rejected(self, dictionary):
        other = AttributeDictionary(["name"])
        with pytest.raises(ValueError):
            Synopsis.of(["name"], dictionary) & Synopsis.of(["name"], other)

    def test_negative_mask_rejected(self, dictionary):
        with pytest.raises(ValueError):
            Synopsis(-1, dictionary)
