"""Tests for the transactional operation layer (undo log + journal)."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.storage.wal import (
    JOURNAL_ABORT,
    JOURNAL_BEGIN,
    JOURNAL_COMMIT,
    JOURNAL_STEP,
    WriteAheadLog,
)
from repro.txn import (
    OperationJournal,
    TransactionError,
    atomic_delete,
    atomic_insert,
    atomic_merge,
    atomic_update,
)


def catalog_signature(partitioner):
    """Everything rollback must restore exactly."""
    return (
        sorted(
            (
                p.pid,
                p.mask,
                tuple(sorted(p.members())),
                (p.starters.eid_a, p.starters.mask_a,
                 p.starters.eid_b, p.starters.mask_b),
            )
            for p in partitioner.catalog
        ),
        partitioner.catalog.next_partition_id,
    )


def small_partitioner():
    p = CinderellaPartitioner(CinderellaConfig(max_partition_size=4, weight=0.4))
    for eid in range(8):
        p.insert(eid, 0b0011 if eid % 2 else 0b1100)
    return p


class TestCatalogTransaction:
    def test_commit_keeps_mutations(self):
        p = small_partitioner()
        with p.catalog.begin_transaction():
            p.insert(100, 0b0011)
        assert p.catalog.has_entity(100)
        assert p.check_invariants() == []

    def test_rollback_restores_exact_catalog(self):
        p = small_partitioner()
        before = catalog_signature(p)
        txn = p.catalog.begin_transaction()
        p.insert(100, 0b0011)
        p.delete(0)
        p.update(1, 0b0111)
        txn.rollback()
        assert catalog_signature(p) == before
        assert p.check_invariants() == []

    def test_context_manager_rolls_back_on_exception(self):
        p = small_partitioner()
        before = catalog_signature(p)
        with pytest.raises(RuntimeError, match="boom"):
            with p.catalog.begin_transaction():
                p.insert(100, 0b0011)
                raise RuntimeError("boom")
        assert catalog_signature(p) == before

    def test_rollback_restores_dropped_partitions_and_next_pid(self):
        p = small_partitioner()
        before = catalog_signature(p)
        txn = p.catalog.begin_transaction()
        # delete every member of one partition so it gets dropped, then
        # create fresh partitions (advancing next_pid)
        victim = next(iter(p.catalog)).pid
        for eid in list(p.catalog.get(victim).entity_ids()):
            p.delete(eid)
        p.insert(200, 0b1111_0000)
        txn.rollback()
        assert catalog_signature(p) == before

    def test_rollback_restores_split_starters(self):
        p = small_partitioner()
        before = catalog_signature(p)
        txn = p.catalog.begin_transaction()
        # inserts run starter maintenance on the partitions they touch
        for eid in range(300, 312):
            p.insert(eid, 0b0011)
        txn.rollback()
        assert catalog_signature(p) == before

    def test_transactions_do_not_nest(self):
        p = small_partitioner()
        txn = p.catalog.begin_transaction()
        with pytest.raises(TransactionError):
            p.catalog.begin_transaction()
        txn.rollback()

    def test_closed_transaction_rejects_reuse(self):
        p = small_partitioner()
        txn = p.catalog.begin_transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_new_transaction_allowed_after_close(self):
        p = small_partitioner()
        p.catalog.begin_transaction().commit()
        txn = p.catalog.begin_transaction()
        txn.rollback()


class TestAtomicOperations:
    def test_atomic_insert_returns_outcome(self):
        p = small_partitioner()
        outcome = atomic_insert(p, 500, 0b0011)
        assert p.catalog.partition_of(500) == outcome.partition_id
        assert p.check_invariants() == []

    def test_validation_failure_rolls_back_and_propagates(self):
        p = small_partitioner()
        before = catalog_signature(p)
        with pytest.raises(ValueError):
            atomic_insert(p, 0, 0b0011)  # duplicate entity id
        assert catalog_signature(p) == before

    def test_clean_failure_journals_abort(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        journal = OperationJournal(wal)
        p = small_partitioner()
        with pytest.raises(ValueError):
            atomic_insert(p, 0, 0b0011, journal=journal)
        ops = [r.op for r in wal.records()]
        assert ops[0] == JOURNAL_BEGIN
        assert ops[-1] == JOURNAL_ABORT
        assert JOURNAL_COMMIT not in ops

    def test_success_journals_begin_steps_commit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        journal = OperationJournal(wal)
        p = small_partitioner()
        atomic_update(p, 0, 0b0011, journal=journal)
        atomic_delete(p, 1, journal=journal)
        records = wal.records()
        kinds = [(r.op, r.payload.get("op_id")) for r in records]
        assert (JOURNAL_BEGIN, "op-1") in kinds
        assert (JOURNAL_COMMIT, "op-1") in kinds
        assert (JOURNAL_BEGIN, "op-2") in kinds
        assert (JOURNAL_COMMIT, "op-2") in kinds
        # commit repeats kind/params so replay works from it alone
        commit = next(r for r in records if r.op == JOURNAL_COMMIT)
        assert commit.payload["kind"] == "update"
        assert commit.payload["params"]["eid"] == 0

    def test_atomic_merge_commits_as_one_operation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        journal = OperationJournal(wal)
        p = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10, weight=0.4)
        )
        for eid in range(60):
            p.insert(eid, 0b0011 if eid % 2 else 0b1100)
        for eid in range(60):
            if eid % 5:
                p.delete(eid)
        report = atomic_merge(p, 0.5, journal=journal)
        assert report.merge_count > 0
        commits = [r for r in wal.records() if r.op == JOURNAL_COMMIT]
        assert len(commits) == 1
        assert commits[0].payload["kind"] == "merge"
        steps = [r for r in wal.records() if r.op == JOURNAL_STEP]
        assert len(steps) > report.merge_count  # member moves + drops

    def test_op_ids_resume_after_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        journal = OperationJournal(wal)
        p = small_partitioner()
        atomic_delete(p, 0, journal=journal)
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        journal2 = OperationJournal(reopened)
        atomic_delete(p, 1, journal=journal2)
        op_ids = {
            r.payload["op_id"]
            for r in reopened.records()
            if r.op == JOURNAL_BEGIN
        }
        assert op_ids == {"op-1", "op-2"}

    def test_incomplete_ops_reported(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        journal = OperationJournal(wal)
        committed = journal.begin("merge", {"min_fill": 0.5})
        journal.commit(committed, "merge", {"min_fill": 0.5})
        journal.begin("reorganize", {"order": "size"})  # never finishes
        incomplete = OperationJournal.incomplete_ops(wal.records())
        assert [op["kind"] for op in incomplete] == ["reorganize"]
