"""Tests for the inverted synopsis index and its exactness guarantee."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.synopsis_index import SynopsisIndex, verify_index_against_catalog
from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner

masks = st.integers(min_value=0, max_value=2**24 - 1)


class TestPostings:
    def test_register_and_candidates(self):
        index = SynopsisIndex()
        index.register(0, 0b011)
        index.register(1, 0b100)
        assert index.candidate_pids(0b001) == {0}
        assert index.candidate_pids(0b100) == {1}
        assert index.candidate_pids(0b111) == {0, 1}
        assert index.candidate_pids(0b1000) == set()

    def test_empty_synopsis_posting(self):
        index = SynopsisIndex()
        index.register(0, 0)
        index.register(1, 0b1)
        assert index.candidate_pids(0) == {0}

    def test_unregister_removes_postings(self):
        index = SynopsisIndex()
        index.register(0, 0b11)
        index.unregister(0, 0b11)
        assert index.candidate_pids(0b11) == set()
        assert len(index) == 0

    def test_bits_added_and_removed(self):
        index = SynopsisIndex()
        index.register(0, 0b01)
        index.on_bits_added(0, 0b10)
        assert index.candidate_pids(0b10) == {0}
        index.on_bits_removed(0, 0b01, 0b10)
        assert index.candidate_pids(0b01) == set()
        index.on_bits_removed(0, 0b10, 0)
        assert index.candidate_pids(0) == {0}  # now empty-synopsis

    def test_partitions_with_attribute(self):
        index = SynopsisIndex()
        index.register(3, 0b100)
        assert index.partitions_with_attribute(2) == frozenset({3})
        assert index.partitions_with_attribute(0) == frozenset()


def _drive(partitioner: CinderellaPartitioner, operations):
    """Apply a random operation trace to a partitioner."""
    live: set[int] = set()
    for kind, eid, mask in operations:
        if kind == "insert" and eid not in live:
            partitioner.insert(eid, mask)
            live.add(eid)
        elif kind == "delete" and eid in live:
            partitioner.delete(eid)
            live.discard(eid)
        elif kind == "update" and eid in live:
            partitioner.update(eid, mask)


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "delete", "update"]),
        st.integers(0, 30),
        masks,
    ),
    max_size=60,
)


class TestIndexedPartitionerEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(operations, st.floats(0.0, 0.9), st.integers(2, 12))
    def test_same_partitioning_with_and_without_index(self, ops, weight, capacity):
        config = CinderellaConfig(max_partition_size=capacity, weight=weight)
        indexed_config = CinderellaConfig(
            max_partition_size=capacity, weight=weight, use_synopsis_index=True
        )
        plain = CinderellaPartitioner(config)
        indexed = CinderellaPartitioner(indexed_config)
        _drive(plain, ops)
        _drive(indexed, ops)
        def signature(p):
            return sorted(tuple(sorted(part.entity_ids())) for part in p.catalog)

        assert signature(plain) == signature(indexed)
        assert indexed.check_invariants() == []

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_index_stays_consistent_under_modifications(self, ops):
        partitioner = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=5, weight=0.4, use_synopsis_index=True)
        )
        _drive(partitioner, ops)
        assert (
            verify_index_against_catalog(
                partitioner.catalog.index, list(partitioner.catalog)
            )
            == []
        )

    def test_index_reduces_rating_work(self):
        rng = random.Random(3)
        # two disjoint families of synopses: the index should never rate a
        # partition of the other family
        def make(family: int) -> int:
            base = 0
            for _ in range(4):
                base |= 1 << (family * 16 + rng.randrange(16))
            return base

        plain = CinderellaPartitioner(CinderellaConfig(max_partition_size=20, weight=0.4))
        indexed = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=20, weight=0.4, use_synopsis_index=True)
        )
        for eid in range(600):
            mask = make(eid % 2)
            plain.insert(eid, mask)
            indexed.insert(eid, mask)
        assert indexed.ratings_computed < plain.ratings_computed
