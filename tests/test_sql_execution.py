"""Tests for SQL compilation and execution over both table layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.sql.compiler import compile_predicate, pruning_clauses
from repro.sql.executor import execute
from repro.sql.parser import parse
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable

CATALOG = [
    {"name": "Canon S120", "aperture": 2.0, "resolution": 12.1, "weight": 198},
    {"name": "Sony A99", "aperture": 1.8, "resolution": 24, "weight": 733},
    {"name": "WD4000", "storage": "4TB", "rotation": 7200, "weight": 150},
    {"name": "WD2000", "storage": "2TB", "rotation": 5400, "weight": 640},
    {"name": "LG TV", "resolution": "Full HD", "screen": 40, "weight": 9800},
]


@pytest.fixture()
def tables():
    cinderella = CinderellaTable(CinderellaConfig(max_partition_size=2, weight=0.3))
    universal = UniversalTable()
    for index, row in enumerate(CATALOG):
        cinderella.insert(row, entity_id=index)
        universal.insert(row, entity_id=index)
    return cinderella, universal


class TestPredicateCompilation:
    def compiled(self, sql_where: str):
        return compile_predicate(parse(f"SELECT x FROM t WHERE {sql_where}").where)

    def test_comparison_semantics(self):
        predicate = self.compiled("weight > 500")
        assert predicate({"weight": 733})
        assert not predicate({"weight": 198})
        assert not predicate({})  # NULL comparison is not true

    def test_comparison_with_type_mismatch_is_false(self):
        predicate = self.compiled("weight > 500")
        assert not predicate({"weight": "heavy"})

    def test_equality_with_null_literal_is_never_true(self):
        predicate = self.compiled("weight = NULL")
        assert not predicate({"weight": None})
        assert not predicate({})

    def test_is_null_and_is_not_null(self):
        assert self.compiled("a IS NULL")({})
        assert self.compiled("a IS NULL")({"a": None})
        assert not self.compiled("a IS NULL")({"a": 1})
        assert self.compiled("a IS NOT NULL")({"a": 1})
        assert not self.compiled("a IS NOT NULL")({})

    def test_like(self):
        predicate = self.compiled("name LIKE 'WD%'")
        assert predicate({"name": "WD4000"})
        assert not predicate({"name": "Canon"})
        assert not predicate({})
        assert not predicate({"name": 42})

    def test_not_like(self):
        predicate = self.compiled("name NOT LIKE 'WD%'")
        assert predicate({"name": "Canon"})
        assert not predicate({"name": "WD4000"})
        assert not predicate({})  # NULL NOT LIKE is not true either

    def test_boolean_connectives(self):
        predicate = self.compiled("a = 1 AND (b = 2 OR NOT c = 3)")
        assert predicate({"a": 1, "b": 2, "c": 3})
        assert predicate({"a": 1, "c": 4})
        assert not predicate({"a": 1, "c": 3})


class TestPruningClauses:
    def clauses(self, sql_where: str):
        return pruning_clauses(parse(f"SELECT x FROM t WHERE {sql_where}").where)

    def test_conjunction_collects_requirements(self):
        assert self.clauses("a = 1 AND b IS NOT NULL") == [
            frozenset({"a"}), frozenset({"b"}),
        ]

    def test_disjunction_distributes(self):
        assert self.clauses("a = 1 OR b = 2") == [frozenset({"a", "b"})]

    def test_is_null_disables_pruning(self):
        assert self.clauses("a IS NULL") == []
        assert self.clauses("a = 1 OR b IS NULL") == []

    def test_not_disables_pruning(self):
        assert self.clauses("NOT a = 1") == []

    def test_mixed_nesting(self):
        clauses = self.clauses("(a = 1 OR b = 2) AND c LIKE 'x%'")
        assert frozenset({"a", "b"}) in clauses
        assert frozenset({"c"}) in clauses

    def test_soundness_by_construction(self):
        """Every row satisfying the predicate hits every clause."""
        expression = parse(
            "SELECT x FROM t WHERE (a = 1 OR b = 2) AND (c = 3 OR d IS NOT NULL)"
        ).where
        predicate = compile_predicate(expression)
        clauses = pruning_clauses(expression)
        rows = [
            {"a": 1, "c": 3},
            {"b": 2, "d": 9},
            {"a": 1, "d": None},
            {"a": 2, "c": 3},
        ]
        for row in rows:
            if predicate(row):
                for clause in clauses:
                    assert any(name in row for name in clause)


class TestExecution:
    def test_results_match_between_layouts(self, tables):
        cinderella, universal = tables
        statements = [
            "SELECT name FROM t WHERE aperture IS NOT NULL",
            "SELECT name, weight FROM t WHERE weight > 500 ORDER BY weight",
            "SELECT name FROM t WHERE storage LIKE '%TB' AND rotation > 6000",
            "SELECT name FROM t WHERE aperture IS NULL ORDER BY name",
            "SELECT * FROM t",
            "SELECT name FROM t WHERE resolution IS NOT NULL OR screen > 30",
        ]
        for sql in statements:
            rows_c = execute(sql, cinderella).rows
            rows_u = execute(sql, universal).rows
            assert sorted(map(repr, rows_c)) == sorted(map(repr, rows_u)), sql

    def test_pruning_happens(self, tables):
        cinderella, _ = tables
        result = execute("SELECT name FROM t WHERE rotation > 0", cinderella)
        assert result.stats.partitions_pruned >= 1
        assert result.stats.entities_read < len(CATALOG)
        assert {row["name"] for row in result.rows} == {"WD4000", "WD2000"}

    def test_unknown_attribute_prunes_everything(self, tables):
        cinderella, _ = tables
        result = execute("SELECT name FROM t WHERE ghost = 1", cinderella)
        assert result.rows == []
        assert result.stats.entities_read == 0
        assert result.stats.partitions_pruned == result.stats.partitions_total

    def test_order_by_desc_and_limit(self, tables):
        cinderella, _ = tables
        result = execute(
            "SELECT name, weight FROM t ORDER BY weight DESC LIMIT 2", cinderella
        )
        assert [row["name"] for row in result.rows] == ["LG TV", "Sony A99"]

    def test_order_by_with_nulls_first(self, tables):
        cinderella, _ = tables
        result = execute("SELECT name, aperture FROM t ORDER BY aperture", cinderella)
        apertures = [row["aperture"] for row in result.rows]
        assert apertures[:3] == [None, None, None]
        assert apertures[3:] == [1.8, 2.0]

    def test_select_star_returns_ragged_rows(self, tables):
        cinderella, _ = tables
        result = execute("SELECT * FROM t WHERE rotation IS NOT NULL", cinderella)
        assert all("rotation" in row for row in result.rows)
        assert all("aperture" not in row for row in result.rows)

    def test_mixed_type_order_by_does_not_crash(self, tables):
        cinderella, _ = tables
        # resolution holds floats, ints, and the string 'Full HD'
        result = execute("SELECT resolution FROM t ORDER BY resolution", cinderella)
        assert len(result.rows) == len(CATALOG)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**10 - 1), st.integers(1, 2**10 - 1))
    def test_paper_form_equivalence_with_attribute_queries(self, data_seed, qmask):
        """The SQL path and the AttributeQuery path agree on the paper's
        query form."""
        import random

        from repro.query.query import AttributeQuery

        names = [f"a{i}" for i in range(10)]
        rng = random.Random(data_seed)
        table = CinderellaTable(CinderellaConfig(max_partition_size=5, weight=0.4))
        for eid in range(30):
            mask = rng.getrandbits(10)
            table.insert(
                {names[i]: i for i in range(10) if mask >> i & 1} or {"a0": 0},
                entity_id=eid,
            )
        attrs = tuple(names[i] for i in range(10) if qmask >> i & 1)
        query = AttributeQuery(attrs)
        sql = query.sql("t")
        rows_sql = execute(sql, table).rows
        rows_api = table.execute(query).rows
        assert sorted(map(repr, rows_sql)) == sorted(map(repr, rows_api))
