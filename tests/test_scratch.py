"""Tests for the signal-safe scratch directory helper."""

import os
import signal
import threading

import pytest

from repro.storage.scratch import scratch_dir


class TestScratchDir:
    def test_removed_on_normal_exit(self):
        with scratch_dir(prefix="t-") as workdir:
            (workdir / "a.wal").write_text("record")
            assert workdir.is_dir()
        assert not workdir.exists()

    def test_removed_on_exception(self):
        with pytest.raises(ValueError):
            with scratch_dir(prefix="t-") as workdir:
                (workdir / "a.wal").write_text("record")
                raise ValueError("boom")
        assert not workdir.exists()

    def test_removed_on_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with scratch_dir(prefix="t-") as workdir:
                raise KeyboardInterrupt
        assert not workdir.exists()

    def test_sigterm_becomes_system_exit_and_cleans_up(self):
        with pytest.raises(SystemExit) as excinfo:
            with scratch_dir(prefix="t-") as workdir:
                (workdir / "coordinator.wal").write_text("record")
                os.kill(os.getpid(), signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM
        assert not workdir.exists()

    def test_previous_sigterm_handler_restored(self):
        sentinel = []
        previous = signal.signal(
            signal.SIGTERM, lambda *_args: sentinel.append("called")
        )
        try:
            with scratch_dir(prefix="t-"):
                assert signal.getsignal(signal.SIGTERM) is not previous
            handler = signal.getsignal(signal.SIGTERM)
            assert callable(handler)
            handler(signal.SIGTERM, None)
            assert sentinel == ["called"]
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_works_off_the_main_thread(self):
        """Signal conversion is skipped, cleanup still happens."""
        outcome = {}

        def body():
            before = signal.getsignal(signal.SIGTERM)
            with scratch_dir(prefix="t-") as workdir:
                (workdir / "x").write_text("y")
                outcome["existed"] = workdir.is_dir()
                outcome["handler_untouched"] = (
                    signal.getsignal(signal.SIGTERM) is before
                )
            outcome["removed"] = not workdir.exists()

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=10)
        assert outcome == {
            "existed": True, "handler_untouched": True, "removed": True,
        }
