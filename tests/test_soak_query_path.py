"""Soak test: 50 000 mixed operations against the fast query path.

Runs in its own CI job (``pytest -m slow``); tier-1 excludes it via the
``addopts`` marker filter.  The trace interleaves inserts, churn updates
and deletes over a DBpedia-style dataset with periodic maintenance
(merge passes, one mid-run reorganization).  Every 1 000 operations the
suite re-establishes the three health checks ISSUE 3 asks for:

* **efficiency** — Definition 1 efficiency of the live partitioning
  beats the unpartitioned universal-table baseline for the same query
  workload and never collapses;
* **catalog invariants** — partitioner ``check_invariants`` and table
  ``check_consistency`` stay empty (synopses, sizes, version map, heap
  membership all agree);
* **cache coherence** — every servable cache entry re-scans to exactly
  its stored rows (:func:`~repro.query.cache.verify_cache_coherence`).

Each checkpoint also runs the query battery through the cache so the
coherence check is never vacuous, and every tenth checkpoint replays the
battery against the naive full-scan oracle.
"""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency, universal_table_efficiency
from repro.query.cache import QueryResultCache, verify_cache_coherence
from repro.query.query import AttributeQuery
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons
from repro.workloads.modifications import generate_trace

from tests.conftest import WORKLOAD_SEED

pytestmark = pytest.mark.slow

N_ENTITIES = 30_000  # enough unseen entities that 50k mixed ops never drain
OPERATIONS = 50_000
WARMUP = 2_000
CHECK_EVERY = 1_000
DIFFERENTIAL_EVERY = 10_000
MERGE_EVERY = 10_000
REORGANIZE_AT = 25_000

QUERIES = (
    AttributeQuery(("name",)),
    AttributeQuery(("deathPlace",)),
    AttributeQuery(("occupation", "team")),
    AttributeQuery(("birthDate", "birthPlace", "almaMater")),
    AttributeQuery(("birthDate", "deathDate"), mode="all"),
    AttributeQuery(("name", "no_such_attribute")),
    AttributeQuery(("no_such_attribute",)),
    AttributeQuery(("name", "no_such_attribute"), mode="all"),
)


def checkpoint(table, live_count, *, differential):
    """The per-1k-ops health check battery."""
    # exercise the cache first so the coherence check has entries to audit
    for query in QUERIES:
        fast = table.execute(query)
        if differential:
            assert fast.rows == table.execute_naive(query).rows, query.sql()

    problems = table.partitioner.check_invariants()
    problems += table.check_consistency()
    problems += verify_cache_coherence(table.result_cache, table)
    assert problems == [], problems
    assert table.catalog.entity_count == live_count

    # Definition 1 efficiency of the live partitioning vs. the
    # unpartitioned baseline on the same workload
    dictionary = table.dictionary
    masks = [q.synopsis_mask(dictionary) for q in QUERIES]
    masks = [m for m in masks if m]
    entities = [
        (mask, size)
        for partition in table.catalog
        for _eid, mask, size in partition.members()
    ]
    partitioned = catalog_efficiency(table.catalog, masks)
    baseline = universal_table_efficiency(entities, masks)
    assert 0.0 < partitioned <= 1.0
    assert partitioned >= baseline, (
        f"partitioning efficiency {partitioned:.3f} fell below the "
        f"universal-table baseline {baseline:.3f}"
    )
    return partitioned


def test_soak_50k_mixed_operations():
    dataset = generate_dbpedia_persons(n_entities=N_ENTITIES, seed=WORKLOAD_SEED)
    trace = generate_trace(
        dataset,
        operations=OPERATIONS,
        insert_share=0.4,
        update_share=0.35,
        churn_update_share=0.4,
        warmup=WARMUP,
        seed=WORKLOAD_SEED,
    )
    # the advertised scale must be real: a drained trace (data set
    # exhausted, live set empty) would silently soak far fewer ops
    assert len(trace) == OPERATIONS + WARMUP
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=300.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(max_entries=512),
    )

    live = set()
    efficiencies = []
    for index, operation in enumerate(trace):
        if operation.kind == "insert":
            table.insert(operation.attributes, entity_id=operation.entity_id)
            live.add(operation.entity_id)
        elif operation.kind == "update":
            table.update(operation.entity_id, operation.attributes)
        else:
            table.delete(operation.entity_id)
            live.discard(operation.entity_id)

        done = index + 1
        if done % MERGE_EVERY == 0:
            table.merge_small_partitions(min_fill=0.5)
        if done == REORGANIZE_AT:
            table.reorganize(order="size")
        if done % CHECK_EVERY == 0:
            efficiencies.append(
                checkpoint(
                    table, len(live),
                    differential=done % DIFFERENTIAL_EVERY == 0,
                )
            )

    assert len(efficiencies) == (OPERATIONS + WARMUP) // CHECK_EVERY
    # the workload must have exercised the machinery it claims to soak
    assert table.partitioner.split_count > 0
    counters = table.query_counters
    assert counters.cache_hits > 0
    assert counters.cache_stale_drops > 0, (
        "50k mixed ops never invalidated a cached entry — the soak "
        "is not stressing invalidation"
    )
    assert counters.cache_hit_rate() > 0.0
    assert table.check_consistency() == []
