"""End-to-end tests of the serving layer over real sockets.

Each test runs a :class:`~repro.server.testing.ServerThread` (the server
on its own event loop in a daemon thread) and drives it with blocking
:class:`~repro.server.client.ServerClient` connections — the exact wire
path production traffic takes.
"""

import asyncio
import json
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.client import ServerClient, ServerError
from repro.table.partitioned import CinderellaTable


@pytest.fixture()
def harness():
    config = ServerConfig(maintenance_interval_s=0)  # passes on demand only
    with ServerThread(config=config) as running:
        yield running


@pytest.fixture()
def client(harness):
    with ServerClient(*harness.address) as connected:
        yield connected


class TestBasicOps:
    def test_ping_echoes_payload(self, client):
        response = client.ping(payload={"k": [1, 2]})
        assert response.ok
        assert response.get("payload") == {"k": [1, 2]}

    def test_insert_update_delete_cycle(self, client):
        inserted = client.insert({"name": "Canon S120", "resolution": 12.1})
        assert inserted.status == "applied"
        eid = inserted.get("eid")
        assert inserted.get("partition") is not None
        updated = client.update(eid, {"name": "Canon S120", "zoom": 5})
        assert updated.status == "applied"
        rows = client.query(["zoom"])
        assert rows == [{"zoom": 5}]
        deleted = client.delete(eid)
        assert deleted.status == "applied"
        assert client.query(["zoom"]) == []

    def test_explicit_entity_id_respected(self, client):
        assert client.insert({"a": 1}, eid=77).get("eid") == 77

    def test_query_carries_execution_stats(self, client):
        for i in range(10):
            client.insert({"a": i} if i % 2 else {"b": i})
        response = client.query_response(["a"])
        stats = response.get("stats")
        assert response.get("row_count") == 5
        assert stats["partitions_total"] >= 1
        assert stats["partitions_scanned"] >= 1

    def test_sql_passthrough(self, client):
        for i in range(5):
            client.insert({"weight": i * 100, "name": f"p{i}"})
        response = client.sql(
            "SELECT name, weight FROM universalTable "
            "WHERE weight > 150 ORDER BY weight DESC"
        )
        rows = response.get("rows")
        assert [row["weight"] for row in rows] == [400, 300, 200]


class TestRejections:
    def test_duplicate_entity_rejected(self, client):
        client.insert({"a": 1}, eid=5)
        with pytest.raises(ServerError) as excinfo:
            client.insert({"a": 2}, eid=5)
        assert excinfo.value.status == "rejected"
        assert excinfo.value.code == "duplicate_entity"

    def test_unknown_entity_rejected(self, client):
        for method in (lambda: client.update(999, {"a": 1}),
                       lambda: client.delete(999)):
            with pytest.raises(ServerError) as excinfo:
                method()
            assert excinfo.value.code == "unknown_entity"

    def test_empty_attributes_rejected_before_admission(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.insert({})
        assert excinfo.value.status == "rejected"
        assert excinfo.value.code == "empty_synopsis"

    def test_bad_entity_id_rejected(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.request("delete", eid="seven")
        assert excinfo.value.code == "invalid_entity_id"

    def test_bad_query_shape(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.request("query", attributes=[])
        assert excinfo.value.status == "bad_request"

    def test_bad_query_mode(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.request("query", attributes=["a"], mode="some")
        assert excinfo.value.code == "bad_query"

    def test_sql_syntax_error(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sql("SELEKT * FROM nope")
        assert excinfo.value.status == "bad_request"
        assert excinfo.value.code == "sql_syntax"

    def test_rejected_write_rolls_back_cleanly(self, harness, client):
        client.insert({"a": 1}, eid=1)
        before = client.stats()["version_clock"]
        with pytest.raises(ServerError):
            client.insert({"b": 2}, eid=1)  # duplicate: rolls back
        after = client.stats()
        assert after["entities"] == 1
        assert after["counters"]["writes_rejected"] == 1
        assert after["version_clock"] == before  # undo log left no trace


class TestWireRobustness:
    def test_garbage_line_answers_bad_request(self, harness):
        with socket.create_connection(harness.address, timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        document = json.loads(line)
        assert document["ok"] is False
        assert document["status"] == "bad_request"

    def test_unknown_op_answers_bad_request(self, harness):
        with socket.create_connection(harness.address, timeout=10) as sock:
            sock.sendall(b'{"op": "frobnicate", "id": 3}\n')
            line = sock.makefile("rb").readline()
        assert json.loads(line)["status"] == "bad_request"

    def test_blank_lines_are_ignored(self, harness):
        with socket.create_connection(harness.address, timeout=10) as sock:
            sock.sendall(b"\n\n" + b'{"op": "ping", "id": 4}\n')
            line = sock.makefile("rb").readline()
        assert json.loads(line)["id"] == 4

    def test_response_ids_match_pipelined_requests(self, harness):
        with socket.create_connection(harness.address, timeout=10) as sock:
            sock.sendall(
                b'{"op": "ping", "id": 1}\n'
                b'{"op": "insert", "id": 2, "attributes": {"a": 1}}\n'
                b'{"op": "ping", "id": 3}\n'
            )
            reader = sock.makefile("rb")
            ids = [json.loads(reader.readline())["id"] for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_internal_errors_do_not_kill_the_connection(self, harness, client,
                                                        monkeypatch):
        from repro.query.snapshot import TableSnapshot

        monkeypatch.setattr(
            TableSnapshot, "serve_query",
            lambda _self, _query: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(ServerError) as excinfo:
            client.query_response(["a"])
        assert excinfo.value.status == "error"
        assert excinfo.value.code == "internal"
        assert client.ping().ok  # the session survived


class TestAdmissionControl:
    def test_zero_capacity_sheds_with_overloaded(self):
        config = ServerConfig(max_pending=0, maintenance_interval_s=0)
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address, check=False) as client:
                response = client.insert({"a": 1})
                assert response.status == "overloaded"
                assert response.retryable
                assert "back off" in response.error["message"]
                response = client.retrying(
                    "insert", attributes={"a": 1},
                    attempts=3, base_delay_s=0.001,
                )
                assert response.status == "overloaded"
                stats = client.stats()
                assert stats["counters"]["writes_shed_overloaded"] >= 4
                assert stats["counters"]["shed_rate"] == 1.0
                assert stats["counters"]["writes_applied"] == 0

    def test_reads_still_served_while_writes_shed(self):
        config = ServerConfig(max_pending=0, maintenance_interval_s=0)
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address, check=False) as client:
                assert client.insert({"a": 1}).status == "overloaded"
                assert client.query(["a"]) == []  # served, just empty

    def test_writes_refused_while_draining(self):
        async def scenario():
            server = CinderellaServer(config=ServerConfig(
                maintenance_interval_s=0
            ))
            await server.start()
            server._draining = True
            from repro.server.protocol import Request
            from repro.server.server import _OpRefused

            with pytest.raises(_OpRefused) as excinfo:
                await server._handle_write(Request(
                    "insert", 1, {"attributes": {"a": 1}}
                ))
            assert excinfo.value.status == "shutting_down"
            server._draining = False
            await server.stop()

        asyncio.run(scenario())


class TestLifecycle:
    def test_shutdown_op_drains_and_stops(self, harness):
        with ServerClient(*harness.address) as client:
            client.insert({"a": 1})
            response = client.shutdown()
            assert response.ok and response.get("draining") is True
        harness.stop()  # idempotent join
        assert harness.server.table.check_consistency() == []

    def test_stop_flushes_queued_writes(self):
        config = ServerConfig(
            maintenance_interval_s=0, batch_linger_s=0.05, batch_max=4
        )
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address) as client:
                for i in range(20):
                    client.insert({"a": i})
        assert harness.server.counters.writes_applied == 20
        assert harness.server._write_queue.qsize() == 0

    def test_maintain_merges_after_deletes(self):
        table = CinderellaTable(
            CinderellaConfig(
                max_partition_size=8.0, weight=0.3, use_synopsis_index=True
            ),
            result_cache=QueryResultCache(thread_safe=True),
        )
        server = CinderellaServer(
            table=table,
            config=ServerConfig(maintenance_interval_s=0, merge_min_fill=0.9),
        )
        with ServerThread(server=server) as harness:
            with ServerClient(*harness.address) as client:
                for i in range(60):
                    client.insert({f"attr{i % 6}": i, "common": 1}, eid=i)
                assert client.stats()["partitions"] > 1
                for i in range(0, 60, 2):
                    client.delete(i)
                report = client.maintain()
                assert report.ok
                stats = client.stats()
                assert stats["counters"]["maintenance_passes"] >= 1
        assert table.check_consistency() == []

    def test_sessions_appear_in_stats(self, harness):
        with ServerClient(*harness.address) as first:
            first.ping()
            with ServerClient(*harness.address) as second:
                second.ping()
                sessions = first.stats()["sessions"]
                assert len(sessions) == 2
                assert {s["sid"] for s in sessions} == {1, 2}
        harness.stop()  # drain: handler tasks observe EOF before we assert
        assert harness.server.counters.connections_closed == 2


class TestServeCommand:
    def test_cli_serve_round_trip(self, tmp_path):
        """``python -m repro serve`` serves traffic and drains on shutdown."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            cwd=tmp_path,
            env={
                "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
                "PATH": "/usr/bin:/bin",
            },
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            port = int(banner.split()[4].rsplit(":", 1)[1])
            with ServerClient("127.0.0.1", port) as client:
                for i in range(5):
                    client.insert({"x": i})
                assert len(client.query(["x"])) == 5
                client.shutdown()
            out, err = proc.communicate(timeout=30)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "served" in out
        assert list(tmp_path.iterdir()) == []  # no stray files
