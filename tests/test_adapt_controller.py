"""Tests of the adaptation controller: gates, actions, observability.

The closed-loop scenario mirrors ``repro adapt``: a deliberately fine
layout (B=30 over grouped entities -> dozens of partitions) serving
selective per-group queries, then a shift to broad scans of the shared
attribute.  The controller must bless the baseline without acting,
quiesce while the mix is stationary, answer the shift with one bounded
reorganization, and quiesce again.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.adapt.controller import (
    DECLINED_REASONS,
    AdaptationConfig,
    AdaptationController,
)
from repro.core.config import CinderellaConfig
from repro.query.query import AttributeQuery
from repro.table.partitioned import CinderellaTable

GROUPS = 6


class FakeClock:
    def __init__(self):
        self.now = 1_000.0

    def __call__(self):
        return self.now


def build_table(entities=360, max_partition_size=30.0):
    table = CinderellaTable(CinderellaConfig(
        max_partition_size=max_partition_size,
        weight=0.3,
        use_synopsis_index=True,
    ))
    for i in range(entities):
        group = i % GROUPS
        attributes = {"common": i}
        for suffix in ("a", "b", "c"):
            attributes[f"g{group}_{suffix}"] = i
        table.insert(attributes, entity_id=i)
    return table


def selective_queries():
    return [
        AttributeQuery((f"g{group}_{suffix}",), "any")
        for group in range(GROUPS) for suffix in ("a", "b", "c")
    ]


def controller_config(**overrides):
    defaults = dict(
        min_observations=18, cooldown_s=0.0, horizon_queries=500.0
    )
    defaults.update(overrides)
    return AdaptationConfig(**defaults)


def run_round(table, queries):
    for query in queries:
        table.execute(query)


class TestGates:
    def test_insufficient_traffic_before_the_observation_floor(self):
        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        decision = controller.maybe_adapt(table)
        assert decision.action == "declined"
        assert decision.reason == "insufficient_traffic"
        assert not decision.acted

    def test_first_eligible_decision_blesses_the_baseline(self):
        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        run_round(table, selective_queries())
        decision = controller.maybe_adapt(table)
        assert decision.reason == "baseline_established"
        assert not decision.acted

    def test_stationary_workload_never_triggers_an_action(self):
        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        for _ in range(8):
            run_round(table, selective_queries())
            controller.maybe_adapt(table)
        assert controller.actions_taken == 0
        reasons = {d.reason for d in controller.decisions()}
        assert reasons <= {"baseline_established", "no_shift"}

    def test_cooldown_blocks_the_next_action(self):
        clock = FakeClock()
        table = build_table()
        controller = AdaptationController(
            config=controller_config(cooldown_s=60.0), clock=clock
        )
        controller.bind_table(table)
        run_round(table, selective_queries())
        controller.maybe_adapt(table)  # baseline
        broad = [AttributeQuery(("common",), "any")] * 36
        run_round(table, broad)
        acted = controller.maybe_adapt(table)
        assert acted.acted
        run_round(table, broad)
        clock.now += 10.0
        decision = controller.maybe_adapt(table)
        assert decision.reason == "cooldown"
        clock.now += 60.0
        decision = controller.maybe_adapt(table)
        assert decision.reason != "cooldown"

    def test_action_budget_is_enforced(self):
        table = build_table(entities=60)
        controller = AdaptationController(
            config=controller_config(max_actions=1)
        )
        controller.bind_table(table)
        controller._state.actions_taken = 1  # budget already spent
        run_round(table, selective_queries())
        decision = controller.maybe_adapt(table)
        assert decision.reason == "budget_exhausted"

    def test_declined_reasons_cover_the_gate_order(self):
        assert DECLINED_REASONS == (
            "insufficient_traffic",
            "budget_exhausted",
            "cooldown",
            "baseline_established",
            "no_shift",
            "below_threshold",
        )


class TestClosedLoop:
    def test_shift_triggers_one_reorganization_then_quiesces(self):
        table = build_table()
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        run_round(table, selective_queries())
        controller.maybe_adapt(table)  # baseline_established
        before = table.partition_count()
        assert before > GROUPS  # finer than one partition per group

        broad = [AttributeQuery(("common",), "any")] * 36
        acted = None
        for _ in range(4):
            run_round(table, broad)
            decision = controller.maybe_adapt(table)
            if decision.acted:
                acted = decision
                break
        assert acted is not None, "the shift was never answered"
        assert acted.action == "reorganize"
        assert acted.shift >= controller.config.shift_threshold
        assert acted.plan is not None
        assert acted.plan.win_fraction > 0.0
        assert table.partition_count() < before
        assert table.check_consistency() == []

        # the reference was re-blessed: the same mix now quiesces
        for _ in range(3):
            run_round(table, broad)
            decision = controller.maybe_adapt(table)
            assert not decision.acted
        assert controller.actions_taken == 1

    def test_rows_survive_the_adaptation(self):
        table = build_table()
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        query = AttributeQuery(("common",), "any")
        expected = sorted(
            row["common"] for row in table.execute_naive(query).rows
        )
        run_round(table, selective_queries())
        controller.maybe_adapt(table)
        run_round(table, [query] * 36)
        assert controller.maybe_adapt(table).acted
        got = sorted(row["common"] for row in table.execute(query).rows)
        assert got == expected

    def test_merge_action_runs_the_maintenance_merger(self):
        """The cheap action path: a winning merge plan applies through
        ``merge_small_partitions`` and counts as ``acted_merge``."""
        from repro.adapt.advisor import AdaptationPlan
        from repro.adapt.controller import AdaptationDecision

        # same-mask partitions split by capacity, then thinned by
        # deletes: under-filled, and the rating lets them re-combine
        table = CinderellaTable(CinderellaConfig(
            max_partition_size=3.0, weight=0.3, use_synopsis_index=True
        ))
        for i in range(30):
            table.insert({"a": i, "b": i}, entity_id=i)
        for eid in range(30):
            if eid % 3:
                table.delete(eid)
        before = table.partition_count()
        assert before > 4
        controller = AdaptationController(
            config=controller_config(merge_min_fill=0.9)
        )
        controller.bind_table(table)
        plan = AdaptationPlan(
            kind="merge", config=table.config,
            predicted_current_ms=1.0, predicted_plan_ms=0.5,
            reorg_cost_ms=1.0, predicted_win_ms=0.5, win_fraction=0.5,
            partitions_before=before, partitions_after=before // 2,
            rationale="test",
        )
        decision = AdaptationDecision(
            "merge", "predicted_win", 0.5, 100, plan=plan
        )
        with controller._lock:
            applied = controller._apply_locked(table, decision)
            controller._record_locked(applied)
        assert applied.acted
        assert table.partition_count() < before
        assert controller.counters.acted_merge == 1
        assert controller.actions_taken == 1
        assert table.check_consistency() == []

    def test_evaluate_decides_without_acting(self):
        table = build_table()
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        run_round(table, selective_queries())
        controller.evaluate(table)
        run_round(table, [AttributeQuery(("common",), "any")] * 36)
        before = table.partition_count()
        decision = controller.evaluate(table)
        assert decision.action == "reorganize"
        assert not decision.acted
        assert table.partition_count() == before
        assert controller.actions_taken == 0

    def test_calibration_probes_fit_the_model_before_advising(self):
        table = build_table()
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        run_round(table, selective_queries())
        controller.maybe_adapt(table)
        run_round(table, [AttributeQuery(("common",), "any")] * 36)
        controller.maybe_adapt(table)
        status = controller.calibrator.status()
        assert status["fitted"]
        assert status["samples"] >= controller.calibrator.min_samples
        assert controller.counters.calibration_refits >= 1

    def test_calibration_can_be_disabled(self):
        table = build_table()
        controller = AdaptationController(
            config=controller_config(calibrate=False)
        )
        controller.bind_table(table)
        run_round(table, selective_queries())
        controller.maybe_adapt(table)
        run_round(table, [AttributeQuery(("common",), "any")] * 36)
        controller.maybe_adapt(table)
        assert controller.counters.calibration_refits == 0


class TestStationaryProperty:
    """Pinned property: no reorganizations on a stationary workload."""

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=17),
                    min_size=40, max_size=120),
           st.integers(min_value=2, max_value=9))
    def test_any_interleaving_of_a_fixed_mix_quiesces(
        self, picks, consult_every
    ):
        table = build_table(entities=120)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        shapes = selective_queries()
        for step, pick in enumerate(picks, start=1):
            table.execute(shapes[pick])
            if step % consult_every == 0:
                controller.maybe_adapt(table)
        controller.maybe_adapt(table)
        assert controller.actions_taken == 0


class TestObservability:
    def test_every_decision_is_counted_and_evented(self):
        table = build_table()
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        state = obs.enable(slow_op_threshold_s=None)
        try:
            controller.maybe_adapt(table)  # insufficient_traffic
            run_round(table, selective_queries())
            controller.maybe_adapt(table)  # baseline_established
            run_round(table, selective_queries())
            controller.maybe_adapt(table)  # no_shift
            run_round(table, [AttributeQuery(("common",), "any")] * 36)
            controller.maybe_adapt(table)  # reorganize
        finally:
            obs.disable()
        counters = controller.counters.as_dict()
        assert counters["decisions_total"] == 4
        assert counters["declined_insufficient_traffic"] == 1
        assert counters["declined_baseline_established"] == 1
        assert counters["declined_no_shift"] == 1
        assert counters["acted_reorganize"] == 1

        events = state.events.of_kind("adapt.decision")
        assert len(events) == 4
        reasons = [e.fields["reason"] for e in events]
        assert reasons == [
            "insufficient_traffic", "baseline_established",
            "no_shift", "predicted_win",
        ]
        acted = events[-1]
        assert acted.fields["action"] == "reorganize"
        assert acted.fields["win_fraction"] > 0.0

        # counters mirror into the registry as repro_adapt_* metrics
        metric = state.registry.get("repro_adapt_decisions_total")
        assert metric is not None

        # the evaluate span and the shift gauge are recorded
        assert state.tracer.find_trace("adapt.evaluate") is not None
        assert state.registry.get("repro_adapt_shift_score") is not None

    def test_status_document_is_wire_shaped(self):
        import json

        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        run_round(table, selective_queries())
        controller.maybe_adapt(table)
        status = json.loads(json.dumps(controller.status()))
        assert status["actions_taken"] == 0
        assert status["trace"]["queries_observed"] == 18
        assert status["shift"] is not None
        assert status["last_decision"]["reason"] == "baseline_established"
        assert set(status["calibration"]) == {
            "samples", "refits", "prediction_error", "fitted"
        }

    def test_decisions_ring_is_bounded(self):
        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        for _ in range(70):
            controller.maybe_adapt(table)
        assert len(controller.decisions()) == 64


class TestTableHook:
    def test_bound_table_feeds_the_trace_on_execute(self):
        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        assert table.adapt is controller
        result = table.execute(AttributeQuery(("g0_a",), "any"))
        assert controller.trace.queries_observed == 1
        profile = controller.trace.profile()
        assert len(profile) == 1
        heat = controller.trace.heat()
        assert result.plan is not None
        for pid in result.plan.branch_pids:
            assert heat[pid].reads == 1

    def test_writes_heat_their_partition(self):
        table = build_table(entities=60)
        controller = AdaptationController(config=controller_config())
        controller.bind_table(table)
        outcome = table.insert({"common": 999, "g0_a": 999}, entity_id=999)
        heat = controller.trace.heat()
        assert heat[outcome.partition_id].writes == 1
        assert controller.trace.writes_observed == 1

    def test_unbound_table_pays_nothing(self):
        table = build_table(entities=60)
        assert table.adapt is None
        table.execute(AttributeQuery(("g0_a",), "any"))  # no hook, no error


class TestServerIntegration:
    """The controller in the server's maintenance slot, over sockets."""

    def test_maintenance_consults_and_stats_expose_heat(self):
        from repro.server import ServerConfig, ServerThread
        from repro.server.client import ServerClient

        config = ServerConfig(
            maintenance_interval_s=0,  # passes on demand only
            adapt_every=1,
            adaptation=controller_config(min_observations=8),
        )
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address) as client:
                for i in range(30):
                    client.insert({"common": i, f"g{i % 3}": i}, eid=i)
                for _ in range(10):
                    client.query(["common"])
                client.maintain()
                stats = client.stats()
        assert stats["counters"]["adapt_decisions"] == 1
        adaptation = stats["adaptation"]
        assert adaptation["trace"]["queries_observed"] >= 10
        assert adaptation["last_decision"] is not None
        heat = stats["heat"]
        assert heat, "served queries must heat the scanned partitions"
        assert all("reads" in h for h in heat.values())

    def test_stats_omit_adaptation_when_disabled(self):
        from repro.server import ServerConfig, ServerThread
        from repro.server.client import ServerClient

        config = ServerConfig(maintenance_interval_s=0)
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address) as client:
                stats = client.stats()
        assert stats["heat"] is None
        assert stats["adaptation"] is None
