"""Tests for metrics: percentiles, summaries, histograms, timing."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.metrics.histogram import LogHistogram, render_histogram
from repro.metrics.partition_stats import (
    DistributionSummary,
    percentile,
    summarize_catalog,
)
from repro.metrics.timing import Timer, time_call


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        assert percentile([5, 1, 9][0:3], 0) == 5  # already-sorted contract
        assert percentile([1, 5, 9], 0) == 1
        assert percentile([1, 5, 9], 100) == 9

    def test_single_value(self):
        assert percentile([7], 33) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestDistributionSummary:
    def test_five_numbers(self):
        s = DistributionSummary.of([4, 1, 3, 2, 5])
        assert (s.minimum, s.median, s.maximum) == (1, 3, 5)
        assert s.p25 == 2 and s.p75 == 4
        assert s.mean == 3
        assert s.row() == (1, 2, 3, 4, 5, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistributionSummary.of([])


class TestSummarizeCatalog:
    def test_collects_figure7_metrics(self):
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4))
        for eid in range(6):
            p.insert(eid, 0b0011 if eid % 2 else 0b1100)
        summary = summarize_catalog(p.catalog)
        assert summary.partition_count == 2
        assert summary.entity_count == 6
        assert sorted(summary.entities_per_partition) == [3, 3]
        assert all(a == 2 for a in summary.attributes_per_partition)
        assert all(s == 0.0 for s in summary.sparseness_per_partition)

    def test_empty_catalog_rejected(self):
        p = CinderellaPartitioner()
        with pytest.raises(ValueError):
            summarize_catalog(p.catalog)


class TestLogHistogram:
    def test_buckets_by_decade(self):
        h = LogHistogram(low=0.1, high=1000.0, buckets_per_decade=1)
        h.add_all([0.5, 5.0, 5.5, 50.0, 500.0])
        counts = [b.count for b in h.buckets()]
        assert counts == [1, 2, 1, 1]

    def test_underflow_overflow(self):
        h = LogHistogram(low=1.0, high=10.0)
        h.add(0.5)
        h.add(100.0)
        assert h.underflow == 1 and h.overflow == 1
        assert h.samples == 2

    def test_fraction_between(self):
        h = LogHistogram(low=0.1, high=1000.0, buckets_per_decade=1)
        h.add_all([0.5, 5.0, 5.5, 50.0])
        assert h.fraction_between(1.0, 10.0) == pytest.approx(0.5)

    def test_trims_empty_tails(self):
        h = LogHistogram(low=0.01, high=10_000.0, buckets_per_decade=1)
        h.add(5.0)
        buckets = h.buckets()
        assert len(buckets) == 1 and buckets[0].count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(low=0)
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)

    def test_render(self):
        h = LogHistogram(low=0.1, high=100.0, buckets_per_decade=1)
        h.add_all([1.5, 2.0, 20.0])
        text = render_histogram(h.buckets())
        assert "#" in text
        assert render_histogram([]) == "(no samples)"


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed_s >= 0.0
        assert t.elapsed_ms == t.elapsed_s * 1000.0

    def test_time_call(self):
        result, elapsed = time_call(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0.0
