"""Tests for the universal table, the Cinderella table, and views."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.query.query import AttributeQuery
from repro.storage.buffer import BufferPool
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable
from repro.table.views import TableView


def product_catalog() -> list[dict]:
    """The Figure 1 electronics example."""
    return [
        {"name": "Canon PowerShot S120", "resolution": 12.1, "aperture": 2.0,
         "screen": 3, "weight": 198},
        {"name": "Sony SLT-A99", "resolution": 24, "screen": 3, "weight": 733},
        {"name": "Samsung Galaxy S4", "resolution": 13, "screen": 4.3,
         "storage": "32GB", "weight": 133},
        {"name": "Apple iPod touch", "resolution": 5, "screen": 4,
         "storage": "64GB", "weight": 88},
        {"name": "LG 60LA7408", "resolution": "Full HD", "screen": 40,
         "tuner": "DVB-T/C/S", "weight": 9800},
        {"name": "WD4000FYYZ", "storage": "4TB", "rotation": 7200,
         "form_factor": '3.5"', "weight": 150},
        {"name": "Garmin Dakota 20", "screen": 2.6, "weight": 150},
    ]


class TestUniversalTable:
    def test_insert_get_roundtrip(self):
        t = UniversalTable()
        eid = t.insert({"name": "Canon", "weight": 198})
        entity = t.get(eid)
        assert entity.attributes == {"name": "Canon", "weight": 198}
        assert len(t) == 1 and eid in t

    def test_explicit_entity_ids(self):
        t = UniversalTable()
        assert t.insert({"a": 1}, entity_id=42) == 42
        assert t.insert({"a": 1}) == 43
        with pytest.raises(ValueError):
            t.insert({"a": 1}, entity_id=42)

    def test_delete_and_update(self):
        t = UniversalTable()
        eid = t.insert({"a": 1})
        t.update(eid, {"b": 2})
        assert t.get(eid).attributes == {"b": 2}
        t.delete(eid)
        assert eid not in t

    def test_query_is_full_scan(self):
        t = UniversalTable()
        for row in product_catalog():
            t.insert(row)
        result = t.execute(AttributeQuery(("aperture",)))
        assert len(result.rows) == 1
        assert result.stats.entities_read == 7  # everything was read
        assert result.stats.union_branches == 0

    def test_scan_yields_all(self):
        t = UniversalTable()
        for row in product_catalog():
            t.insert(row)
        assert len(list(t.scan())) == 7

    def test_sparseness(self):
        t = UniversalTable()
        t.insert({"a": 1})
        t.insert({"b": 1})
        assert t.sparseness() == pytest.approx(0.5)


class TestCinderellaTable:
    def make(self, b=3, w=0.4) -> CinderellaTable:
        return CinderellaTable(CinderellaConfig(max_partition_size=b, weight=w))

    def test_insert_and_get(self):
        t = self.make()
        outcome = t.insert({"name": "Canon", "aperture": 2.0})
        assert t.get(outcome.entity_id).attributes["name"] == "Canon"

    def test_splits_propagate_to_storage(self):
        t = self.make(b=2)
        for row in product_catalog():
            t.insert(row)
        assert t.partitioner.split_count >= 1
        assert t.check_consistency() == []
        assert len(list(t.scan())) == 7

    def test_query_prunes_partitions(self):
        t = self.make(b=4)
        for row in product_catalog():
            t.insert(row)
        result = t.execute(AttributeQuery(("rotation",)))
        assert [row["rotation"] for row in result.rows] == [7200]
        assert result.stats.partitions_pruned >= 1
        assert result.stats.entities_read < 7

    def test_delete_and_update_keep_physical_consistency(self):
        t = self.make(b=3)
        outcomes = [t.insert(row) for row in product_catalog()]
        t.delete(outcomes[0].entity_id)
        t.update(outcomes[5].entity_id, {"name": "WD", "aperture": 9.9})
        assert t.check_consistency() == []
        assert len(t) == 6
        # the Canon (with aperture) was deleted; the updated WD now has one
        result = t.execute(AttributeQuery(("aperture",)))
        assert result.rows == [{"aperture": 9.9}]

    def test_update_in_place(self):
        t = self.make(b=5)
        eid = t.insert({"a": 1, "b": 2}).entity_id
        t.insert({"a": 9, "b": 9})
        outcome = t.update(eid, {"a": 7, "b": 8})
        assert outcome.in_place
        assert t.get(eid).attributes == {"a": 7, "b": 8}

    def test_unknown_entity_operations_raise(self):
        t = self.make()
        with pytest.raises(KeyError):
            t.delete(404)
        with pytest.raises(KeyError):
            t.update(404, {"a": 1})

    def test_buffer_pool_integration(self):
        pool = BufferPool(64)
        t = CinderellaTable(
            CinderellaConfig(max_partition_size=10, weight=0.4), buffer_pool=pool
        )
        for row in product_catalog():
            t.insert(row)
        query = AttributeQuery(("weight",))
        cold = t.execute(query)
        warm = t.execute(query)
        assert warm.stats.pages_read < max(1, cold.stats.pages_read + 1)
        assert pool.hits > 0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 2**12 - 1), min_size=1, max_size=50),
           st.integers(0, 2**12 - 1))
    def test_results_match_universal_table(self, entity_masks, query_mask):
        """Partitioned execution must return exactly the full-scan answer."""
        attrs = [f"a{i}" for i in range(12)]
        def to_row(mask):
            return {attrs[i]: i for i in range(12) if mask >> i & 1}
        cin = CinderellaTable(CinderellaConfig(max_partition_size=6, weight=0.4))
        uni = UniversalTable()
        for eid, mask in enumerate(entity_masks):
            cin.insert(to_row(mask), entity_id=eid)
            uni.insert(to_row(mask), entity_id=eid)
        query_attrs = tuple(attrs[i] for i in range(12) if query_mask >> i & 1)
        if not query_attrs:
            query_attrs = ("a0",)
        query = AttributeQuery(query_attrs)
        rows_cin = sorted(map(repr, cin.execute(query).rows))
        rows_uni = sorted(map(repr, uni.execute(query).rows))
        assert rows_cin == rows_uni


class TestTableView:
    def test_view_selects_entities_with_all_columns(self):
        t = CinderellaTable(CinderellaConfig(max_partition_size=10, weight=0.4))
        t.insert({"x_id": 1, "x_val": "a"})
        t.insert({"x_id": 2, "x_val": "b"})
        t.insert({"y_id": 1, "y_other": "z"})
        view = TableView("x", ("x_id", "x_val"), t)
        rows = sorted(view.rows(), key=lambda r: r["x_id"])
        assert rows == [{"x_id": 1, "x_val": "a"}, {"x_id": 2, "x_val": "b"}]
        assert view.last_stats is not None
        assert view.last_stats.partitions_pruned >= 1

    def test_view_plan_prunes_foreign_partitions(self):
        t = CinderellaTable(CinderellaConfig(max_partition_size=10, weight=0.4))
        t.insert({"x_id": 1})
        t.insert({"y_id": 1})
        view = TableView("x", ("x_id",), t)
        plan = view.plan()
        assert len(plan.branch_pids) == 1

    def test_view_requires_columns(self):
        t = CinderellaTable()
        with pytest.raises(ValueError):
            TableView("x", (), t)

    def test_key_columns_override(self):
        t = CinderellaTable(CinderellaConfig(max_partition_size=10, weight=0.4))
        t.insert({"x_id": 1, "x_opt": "present"})
        t.insert({"x_id": 2})
        view = TableView("x", ("x_id", "x_opt"), t, key_columns=("x_id",))
        rows = sorted(view.rows(), key=lambda r: r["x_id"])
        assert rows == [
            {"x_id": 1, "x_opt": "present"},
            {"x_id": 2, "x_opt": None},
        ]
