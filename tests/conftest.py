"""Shared test configuration: deterministic randomness.

Every randomized suite in this directory must be reproducible run to
run: the differential and property batteries assert that their shrunk
counterexamples are deterministic, so a failure seen in CI is the same
failure seen locally.  Two knobs enforce that:

* ``WORKLOAD_SEED`` — the fixed seed every test-local ``random.Random``
  and workload-trace generator must use;
* the ``repro-deterministic`` Hypothesis profile — ``derandomize=True``
  fixes Hypothesis's PRNG, so example generation *and shrinking* replay
  identically on every run (no deadline: CI machines vary too much for
  per-example timing).
"""

from hypothesis import settings

#: the one seed all randomized tests derive their RNGs from
WORKLOAD_SEED = 42

settings.register_profile("repro-deterministic", derandomize=True, deadline=None)
settings.load_profile("repro-deterministic")
