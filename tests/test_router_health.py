"""Unit tests of the router's per-node circuit breaker.

The breaker is pure state-machine logic driven by an injectable clock
and RNG, so every transition — including the jittered, exponentially
growing ejection windows — is tested deterministically.
"""

import random

import pytest

from repro.router.health import (
    EJECTED,
    HEALTHY,
    PROBING,
    SUSPECT,
    NodeHealth,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def health(clock):
    return NodeHealth(
        "node0",
        failure_threshold=3,
        eject_base_s=0.2,
        eject_max_s=5.0,
        rng=random.Random(7),
        clock=clock,
    )


class TestTransitions:
    def test_starts_healthy_and_available(self, health):
        assert health.state == HEALTHY
        assert health.available()

    def test_first_failure_suspects_but_stays_routable(self, health):
        assert health.record_failure() is False
        assert health.state == SUSPECT
        assert health.available()

    def test_success_clears_suspicion(self, health):
        health.record_failure()
        assert health.record_success() is False  # not a *restore*
        assert health.state == HEALTHY
        assert health.consecutive_failures == 0

    def test_threshold_failures_eject(self, health):
        assert health.record_failure() is False
        assert health.record_failure() is False
        assert health.record_failure() is True  # tripped
        assert health.state == EJECTED
        assert not health.available()

    def test_failure_while_ejected_does_not_retrip(self, health):
        for _ in range(3):
            health.record_failure()
        assert health.record_failure() is False
        assert health.ejections == 1

    def test_window_expiry_flips_to_probing(self, health, clock):
        for _ in range(3):
            health.record_failure()
        clock.advance(10.0)
        assert health.available()  # the expiry check transitions
        assert health.state == PROBING
        assert health.probing

    def test_probe_success_restores(self, health, clock):
        for _ in range(3):
            health.record_failure()
        clock.advance(10.0)
        health.available()
        assert health.record_success() is True  # a restore
        assert health.state == HEALTHY

    def test_probe_failure_reejects_immediately(self, health, clock):
        for _ in range(3):
            health.record_failure()
        clock.advance(10.0)
        health.available()
        assert health.record_failure() is True  # re-tripped by the probe
        assert health.state == EJECTED
        assert health.ejections == 2


class TestEjectionWindows:
    def test_window_is_jittered_within_bounds(self, clock):
        for seed in range(20):
            health = NodeHealth(
                "n", failure_threshold=1, eject_base_s=0.2,
                rng=random.Random(seed), clock=clock,
            )
            health.record_failure()
            window = health.eject_until - clock.now
            assert 0.2 * 0.5 <= window < 0.2

    def test_windows_grow_exponentially_and_cap(self, health, clock):
        windows = []
        for _ in range(8):
            for _ in range(3):
                health.record_failure()
            windows.append(health.eject_until - clock.now)
            clock.advance(60.0)
            health.available()  # -> PROBING, next failure re-ejects
        # nominal windows: 0.2, 0.4, 0.8, ... capped at 5.0; jitter
        # scales each by [0.5, 1.0), so compare against the envelope
        for index, window in enumerate(windows):
            nominal = min(5.0, 0.2 * 2 ** index)
            assert nominal * 0.5 <= window < nominal
        assert windows[-1] >= 5.0 * 0.5  # the cap is in force

    def test_still_unavailable_inside_window(self, health, clock):
        for _ in range(3):
            health.record_failure()
        clock.advance(0.01)
        assert not health.available()
        assert health.state == EJECTED


class TestValidationAndIntrospection:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            NodeHealth("n", failure_threshold=0)

    def test_as_dict_reports_the_counters(self, health):
        health.record_failure()
        health.record_success()
        snapshot = health.as_dict()
        assert snapshot["name"] == "node0"
        assert snapshot["state"] == HEALTHY
        assert snapshot["failures"] == 1
        assert snapshot["successes"] == 1
        assert snapshot["ejections"] == 0
