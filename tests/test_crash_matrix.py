"""Fault-injection matrix: crash every operation at every step.

The acceptance bar of the transactional operation layer: for each
multi-step catalog operation (split-carrying insert, merge pass,
offline reorganization), a :class:`CrashInjector` kills the operation
at *every* step index in turn, and after each simulated crash

* ``check_invariants()`` comes back empty,
* the catalog equals its exact pre-operation state — not a single row
  lost or duplicated, starter pairs and ``next_pid`` included,
* (durable variant) a coordinator recovered from ``snapshot + WAL``
  also equals the pre-operation state: the interrupted operation wrote
  intent/step records but no commit, so replay skips it.

The step counts come from a dry run with a counting injector
(``crash_at=None``), so the matrix automatically covers new steps as
operations grow.
"""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.failures import CrashInjector, MidOperationCrash
from repro.distributed.store import DistributedUniversalStore
from repro.storage.wal import JOURNAL_COMMIT, WriteAheadLog
from repro.txn import OperationJournal, atomic_insert, atomic_merge, atomic_reorganize

QUERY_MASKS = [0b0011, 0b1100, 0b0001]


def catalog_signature(partitioner):
    return (
        sorted(
            (
                p.pid,
                p.mask,
                tuple(sorted(p.members())),
                (p.starters.eid_a, p.starters.mask_a,
                 p.starters.eid_b, p.starters.mask_b),
            )
            for p in partitioner.catalog
        ),
        partitioner.catalog.next_partition_id,
    )


def splitting_partitioner():
    """Small B so the next insert triggers a split cascade."""
    p = CinderellaPartitioner(CinderellaConfig(max_partition_size=4, weight=0.4))
    for eid in range(12):
        p.insert(eid, (0b0011 if eid % 2 else 0b1100) | (1 << (4 + eid % 3)))
    return p


def fragmented_partitioner():
    """Delete-heavy history leaving small mergeable fragments."""
    p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4))
    for eid in range(60):
        p.insert(eid, 0b0011 if eid % 2 else 0b1100)
    for eid in range(60):
        if eid % 5:
            p.delete(eid)
    return p


def count_steps(build, operation):
    """Dry-run *operation* on a fresh fixture to learn its step count."""
    counter = CrashInjector()
    operation(build(), counter.reached)
    assert counter.steps_seen > 0, "matrix would be empty — no steps hooked"
    return counter.steps_seen


def run_matrix(build, operation):
    """Crash at every step; assert exact rollback each time."""
    steps = count_steps(build, operation)
    for crash_at in range(steps):
        p = build()
        before = catalog_signature(p)
        entities = p.catalog.entity_count
        with pytest.raises(MidOperationCrash):
            operation(p, CrashInjector(crash_at).reached)
        assert p.check_invariants() == [], f"step {crash_at} broke invariants"
        assert catalog_signature(p) == before, (
            f"crash at step {crash_at} did not roll back exactly"
        )
        assert p.catalog.entity_count == entities
    return steps


class TestInMemoryCrashMatrix:
    def test_insert_with_split_cascade(self):
        steps = run_matrix(
            splitting_partitioner,
            lambda p, hook: atomic_insert(p, 99, 0b0011, crash_hook=hook),
        )
        assert steps >= 1

    def test_merge_pass(self):
        steps = run_matrix(
            fragmented_partitioner,
            lambda p, hook: atomic_merge(p, 0.5, crash_hook=hook),
        )
        # a merge pass has at least one member move plus a source drop
        assert steps >= 2

    def test_merge_pass_with_efficiency_guard(self):
        run_matrix(
            fragmented_partitioner,
            lambda p, hook: atomic_merge(
                p, 0.5, QUERY_MASKS, crash_hook=hook
            ),
        )

    def test_reorganize(self):
        steps = run_matrix(
            fragmented_partitioner,
            lambda p, hook: atomic_reorganize(
                p, query_masks=QUERY_MASKS, crash_hook=hook
            ),
        )
        # one step per replayed entity plus the swap
        assert steps == fragmented_partitioner().catalog.entity_count + 1

    def test_surviving_operation_commits_after_crashes(self):
        """The same operation, uninjected, still works after the matrix."""
        p = fragmented_partitioner()
        report = atomic_merge(p, 0.5)
        assert report.merge_count > 0
        assert p.check_invariants() == []


def store_signature(store):
    return (
        catalog_signature(store.partitioner),
        {
            pid: store.cluster.replica_nodes(pid)
            for pid in store.cluster.partition_ids()
        },
        sorted(store.cluster.unhosted_partitions()),
    )


def build_store(tmp_path, tag):
    wal = WriteAheadLog(tmp_path / f"{tag}.wal")
    store = DistributedUniversalStore(
        4,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4)),
        replication_factor=2,
        wal=wal,
    )
    for eid in range(40):
        store.insert(eid, 0b0011 if eid % 2 else 0b1100)
    for eid in range(40):
        if eid % 5:
            store.delete(eid)
    return store


class TestDurableCrashMatrix:
    """Crash a journaled store operation, then recover from disk."""

    @pytest.mark.parametrize("operation_name", ["merge", "reorganize"])
    def test_recovery_ignores_commitless_operation(self, tmp_path, operation_name):
        def run(store, hook):
            if operation_name == "merge":
                return store.merge_small(0.5, crash_hook=hook)
            return store.reorganize_catalog(order="size", crash_hook=hook)

        counter = CrashInjector()
        run(build_store(tmp_path, "dry"), counter.reached)
        # keep the durable matrix affordable: first, middle, last step
        indices = sorted({0, counter.steps_seen // 2, counter.steps_seen - 1})
        for crash_at in indices:
            tag = f"{operation_name}-{crash_at}"
            store = build_store(tmp_path, tag)
            snapshot = tmp_path / f"{tag}.snap.json"
            store.checkpoint(snapshot)
            before = store_signature(store)
            with pytest.raises(MidOperationCrash):
                run(store, CrashInjector(crash_at).reached)
            # in-memory rollback: catalog and placement exactly pre-op
            assert store_signature(store) == before
            assert store.partitioner.check_invariants() == []
            assert store.check_placement() == []
            # durable recovery: the WAL holds intent/steps but no commit
            recovered = DistributedUniversalStore.recover(
                snapshot, tmp_path / f"{tag}.wal"
            )
            assert store_signature(recovered) == before
            assert recovered.partitioner.check_invariants() == []
            assert recovered.check_placement() == []
            incomplete = OperationJournal.incomplete_ops(
                recovered.wal.records()
            )
            assert [op["kind"] for op in incomplete] == [operation_name]

    def test_committed_maintenance_replays_exactly(self, tmp_path):
        store = build_store(tmp_path, "committed")
        snapshot = tmp_path / "committed.snap.json"
        store.checkpoint(snapshot)
        report = store.merge_small(0.5)
        assert report.merge_count > 0
        store.insert(500, 0b0011)
        store.reorganize_catalog(order="size")
        after = store_signature(store)
        recovered = DistributedUniversalStore.recover(
            snapshot, tmp_path / "committed.wal"
        )
        assert store_signature(recovered) == after
        assert recovered.check_placement() == []
        commits = [
            r for r in recovered.wal.records() if r.op == JOURNAL_COMMIT
        ]
        assert [c.payload["kind"] for c in commits] == ["merge", "reorganize"]

    def test_rolled_back_operations_are_counted(self, tmp_path):
        store = build_store(tmp_path, "counted")
        with pytest.raises(MidOperationCrash):
            store.merge_small(0.5, crash_hook=CrashInjector(0).reached)
        store.merge_small(0.5)
        counters = store.robustness
        assert counters.ops_started == 2
        assert counters.ops_rolled_back == 1
        assert counters.ops_committed == 1
        assert counters.op_steps > 0


class TestIdempotentRetry:
    def test_insert_retry_with_op_id_applies_once(self, tmp_path):
        store = build_store(tmp_path, "idem")
        outcome = store.insert(700, 0b0011, op_id="client-7/1")
        assert outcome is not None
        before = store_signature(store)
        # at-least-once delivery retries the same operation id
        assert store.insert(700, 0b0011, op_id="client-7/1") is None
        assert store_signature(store) == before
        assert store.robustness.ingest_replayed == 1

    def test_applied_op_ids_survive_recovery(self, tmp_path):
        store = build_store(tmp_path, "idem-recover")
        snapshot = tmp_path / "idem-recover.snap.json"
        store.insert(700, 0b0011, op_id="client-7/1")
        store.checkpoint(snapshot)
        store.delete(700, op_id="client-7/2")
        recovered = DistributedUniversalStore.recover(
            snapshot, tmp_path / "idem-recover.wal"
        )
        # both the checkpointed and the replayed op ids are remembered
        assert recovered.insert(700, 0b0011, op_id="client-7/1") is None
        assert recovered.delete is not None
        assert "client-7/2" in recovered.applied_op_ids
        assert store_signature(recovered) == store_signature(store)
