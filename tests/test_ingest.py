"""Tests for the hardened ingest pipeline: validation, quarantine,
backpressure, and idempotent retry."""

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.store import DistributedUniversalStore
from repro.ingest import (
    APPLIED,
    DuplicateEntityError,
    EmptySynopsisError,
    IngestPipeline,
    IngestRequest,
    InvalidEntityIdError,
    InvalidEntitySizeError,
    OVERLOADED,
    OverloadedError,
    QUARANTINED,
    QuarantinedEntityError,
    QUEUED,
    REPLAYED,
    UnknownAttributeError,
    UnknownEntityError,
)

UNIVERSE = 0xFF


def make_pipeline(**kwargs):
    partitioner = CinderellaPartitioner(
        CinderellaConfig(max_partition_size=6, weight=0.4)
    )
    kwargs.setdefault("attribute_universe", UNIVERSE)
    return IngestPipeline(partitioner, **kwargs), partitioner


def loaded_pipeline(**kwargs):
    pipe, partitioner = make_pipeline(**kwargs)
    for eid in range(10):
        result = pipe.ingest(
            IngestRequest("insert", eid, 0b0011 if eid % 2 else 0b1100)
        )
        assert result.status == APPLIED
    return pipe, partitioner


class TestMalformedInputRejection:
    """Satellite (d): every malformed input gets a typed error."""

    def test_empty_synopsis_rejected(self):
        pipe, partitioner = make_pipeline()
        result = pipe.ingest(IngestRequest("insert", 1, 0))
        assert result.status == QUARANTINED
        assert isinstance(result.error, EmptySynopsisError)
        assert result.error.code == "empty-synopsis"
        assert not partitioner.catalog.has_entity(1)

    def test_negative_size_rejected(self):
        pipe, _ = make_pipeline()
        result = pipe.ingest(
            IngestRequest("insert", 1, 0b11, payload_bytes=-4)
        )
        assert isinstance(result.error, InvalidEntitySizeError)

    def test_non_numeric_size_rejected(self):
        pipe, _ = make_pipeline()
        result = pipe.ingest(
            IngestRequest("insert", 1, 0b11, payload_bytes="large")
        )
        assert isinstance(result.error, InvalidEntitySizeError)

    def test_bad_entity_id_rejected(self):
        pipe, _ = make_pipeline()
        for bad in (-1, "seven", 2.5, True, None):
            result = pipe.ingest(IngestRequest("insert", bad, 0b11))
            assert isinstance(result.error, InvalidEntityIdError), bad

    def test_undeclared_attribute_bits_rejected(self):
        pipe, _ = make_pipeline()
        result = pipe.ingest(IngestRequest("insert", 1, 0b1 | (1 << 40)))
        assert isinstance(result.error, UnknownAttributeError)

    def test_duplicate_eid_on_load_rejected(self):
        pipe, partitioner = make_pipeline()
        results = pipe.load([(1, 0b11), (2, 0b11), (1, 0b1100)])
        assert [r.status for r in results] == [APPLIED, APPLIED, QUARANTINED]
        assert isinstance(results[2].error, DuplicateEntityError)
        # the first version of entity 1 is untouched
        assert partitioner.catalog.has_entity(1)
        assert partitioner.check_invariants() == []

    def test_update_of_quarantined_entity_rejected(self):
        pipe, _ = make_pipeline()
        pipe.ingest(IngestRequest("insert", 5, 0))  # lands in quarantine
        result = pipe.ingest(IngestRequest("update", 5, 0b11))
        assert isinstance(result.error, QuarantinedEntityError)

    def test_update_of_unknown_entity_rejected(self):
        pipe, _ = make_pipeline()
        result = pipe.ingest(IngestRequest("update", 404, 0b11))
        assert isinstance(result.error, UnknownEntityError)

    def test_strict_mode_raises_instead_of_quarantining(self):
        pipe, _ = make_pipeline(strict=True)
        with pytest.raises(EmptySynopsisError):
            pipe.ingest(IngestRequest("insert", 1, 0))
        assert len(pipe.quarantine) == 0
        assert pipe.counters.ingest_rejected == 1


class TestQuarantine:
    def test_rejected_requests_are_dead_lettered_not_dropped(self):
        pipe, _ = make_pipeline()
        pipe.ingest(IngestRequest("insert", 1, 0))
        pipe.ingest(IngestRequest("insert", 2, 0b11, payload_bytes=-1))
        assert len(pipe.quarantine) == 2
        assert pipe.quarantine.summary() == {
            "empty-synopsis": 1, "invalid-entity-size": 1,
        }
        entry = pipe.quarantine.get(1)
        assert entry.request.eid == 1
        assert "empty synopsis" in entry.reason

    def test_requeue_of_repaired_request(self):
        pipe, partitioner = make_pipeline()
        pipe.ingest(IngestRequest("insert", 1, 0))
        entry = pipe.quarantine.take(1)
        repaired = IngestRequest("insert", 1, 0b11)
        pipe.quarantine.add(repaired, EmptySynopsisError("original failure"))
        result = pipe.requeue(1)
        assert result.status == QUEUED
        assert pipe.process()[0].status == APPLIED
        assert partitioner.catalog.has_entity(1)
        assert len(pipe.quarantine) == 0
        assert pipe.counters.ingest_requeued == 1

    def test_requeue_of_still_broken_request_goes_back(self):
        pipe, _ = make_pipeline()
        pipe.ingest(IngestRequest("insert", 1, 0))
        result = pipe.requeue(1)
        assert result.status == QUARANTINED
        assert pipe.quarantine.get(1).attempts == 2

    def test_requeue_unknown_entity_raises(self):
        pipe, _ = make_pipeline()
        with pytest.raises(KeyError):
            pipe.requeue(42)


class TestBackpressure:
    def test_overload_is_explicit_and_lossless(self):
        pipe, _ = make_pipeline(max_pending=3)
        for eid in range(3):
            assert pipe.submit(IngestRequest("insert", eid, 0b11)).status == QUEUED
        bounced = pipe.submit(IngestRequest("insert", 99, 0b11))
        assert bounced.status == OVERLOADED
        assert isinstance(bounced.error, OverloadedError)
        # nothing enqueued, nothing quarantined
        assert pipe.pending_count == 3
        assert len(pipe.quarantine) == 0
        assert pipe.counters.ingest_overloaded == 1
        # draining reopens admission
        results = pipe.process()
        assert all(r.status == APPLIED for r in results)
        assert pipe.submit(IngestRequest("insert", 99, 0b11)).status == QUEUED

    def test_strict_overload_raises(self):
        pipe, _ = make_pipeline(max_pending=1, strict=True)
        pipe.submit(IngestRequest("insert", 1, 0b11))
        with pytest.raises(OverloadedError):
            pipe.submit(IngestRequest("insert", 2, 0b11))

    def test_queue_high_watermark_recorded(self):
        pipe, _ = make_pipeline(max_pending=8)
        for eid in range(5):
            pipe.submit(IngestRequest("insert", eid, 0b11))
        pipe.process()
        assert pipe.counters.queue_high_watermark == 5


class TestIdempotentRetry:
    def test_duplicate_op_id_is_acknowledged_not_reapplied(self):
        pipe, partitioner = make_pipeline()
        first = pipe.ingest(IngestRequest("insert", 1, 0b11, op_id="c-1"))
        assert first.status == APPLIED
        retry = pipe.ingest(IngestRequest("insert", 1, 0b11, op_id="c-1"))
        assert retry.status == REPLAYED
        assert partitioner.catalog.entity_count == 1
        assert pipe.counters.ingest_replayed == 1

    def test_pending_op_id_also_dedups(self):
        pipe, _ = make_pipeline()
        assert pipe.submit(
            IngestRequest("insert", 1, 0b11, op_id="c-1")
        ).status == QUEUED
        assert pipe.submit(
            IngestRequest("insert", 1, 0b11, op_id="c-1")
        ).status == REPLAYED
        assert pipe.pending_count == 1


class TestStoreSink:
    def test_pipeline_feeds_distributed_store(self):
        store = DistributedUniversalStore(
            3,
            CinderellaPartitioner(
                CinderellaConfig(max_partition_size=6, weight=0.4)
            ),
            replication_factor=2,
        )
        pipe = IngestPipeline(store, attribute_universe=UNIVERSE)
        results = pipe.load(
            [(eid, 0b0011 if eid % 2 else 0b1100) for eid in range(20)]
        )
        assert all(r.status == APPLIED for r in results)
        assert store.check_placement() == []
        # op ids flow through to the store's idempotence layer
        applied = pipe.ingest(
            IngestRequest("insert", 50, 0b11, op_id="load-50")
        )
        assert applied.status == APPLIED
        assert "load-50" in store.applied_op_ids
        # counters are shared with the store by default
        assert pipe.counters is store.robustness
        assert store.robustness.ingest_accepted == 21

    def test_rejections_never_reach_the_catalog(self):
        store = DistributedUniversalStore(
            3,
            CinderellaPartitioner(
                CinderellaConfig(max_partition_size=6, weight=0.4)
            ),
            replication_factor=2,
        )
        pipe = IngestPipeline(store, attribute_universe=UNIVERSE)
        pipe.load([(1, 0b11), (2, 0), (3, 0b11, -9), (1, 0b1)])
        assert store.catalog.entity_count == 1
        assert store.check_placement() == []
        assert store.partitioner.check_invariants() == []
        # eid 2 (empty synopsis), eid 3 (bad size), eid 1's duplicate
        assert len(pipe.quarantine) == 3
        assert pipe.quarantine.summary()["duplicate-entity"] == 1
