"""Dedicated tests for the cost model (workload term included)."""

import pytest

from repro.cost.model import CostModel
from repro.query.executor import ExecutionStats


class TestQueryTime:
    def test_linear_in_each_component(self):
        model = CostModel()
        base = ExecutionStats(pages_read=10, entities_read=100, rows_returned=5)
        doubled_pages = ExecutionStats(
            pages_read=20, entities_read=100, rows_returned=5
        )
        delta = model.query_time_ms(doubled_pages) - model.query_time_ms(base)
        assert delta == pytest.approx(10 * model.page_read_ms)

    def test_branch_overhead_scales_with_branches(self):
        model = CostModel()
        one = ExecutionStats(entities_read=100, union_branches=1)
        five = ExecutionStats(entities_read=100, union_branches=5)
        assert model.query_time_ms(five) - model.query_time_ms(one) == (
            pytest.approx(4 * model.branch_overhead_ms)
        )

    def test_union_projection_charged_per_entity(self):
        model = CostModel()
        few = ExecutionStats(entities_read=100, union_branches=1)
        many = ExecutionStats(entities_read=1100, union_branches=1)
        delta = model.query_time_ms(many) - model.query_time_ms(few)
        assert delta == pytest.approx(
            1000 * (model.record_scan_ms + model.union_project_ms)
        )

    def test_no_union_costs_without_branches(self):
        model = CostModel(branch_overhead_ms=100.0, union_project_ms=100.0)
        plain = ExecutionStats(pages_read=1, entities_read=10)
        assert model.query_time_ms(plain) == pytest.approx(
            model.page_read_ms + 10 * model.record_scan_ms
        )


class TestWorkloadTime:
    def test_adds_engine_processing_per_row(self):
        model = CostModel()
        stats = ExecutionStats(entities_read=100, rows_returned=40)
        assert model.workload_time_ms(stats) == pytest.approx(
            model.query_time_ms(stats) + 40 * model.engine_process_ms
        )

    def test_identical_rows_mean_identical_engine_term(self):
        """The engine term cancels when comparing access paths that
        deliver the same rows — exactly the Table I setup."""
        model = CostModel()
        standard = ExecutionStats(entities_read=1000, rows_returned=500)
        partitioned = ExecutionStats(
            entities_read=1000, rows_returned=500, union_branches=4
        )
        difference = model.workload_time_ms(partitioned) - model.workload_time_ms(
            standard
        )
        assert difference == pytest.approx(
            model.query_time_ms(partitioned) - model.query_time_ms(standard)
        )


class TestInsertTime:
    def test_split_cost_dominated_by_moves(self):
        model = CostModel()
        plain = model.insert_time_ms(
            ratings_computed=50, records_moved=0, bytes_moved=0,
            partitions_created=0,
        )
        split = model.insert_time_ms(
            ratings_computed=50, records_moved=5000, bytes_moved=350_000,
            partitions_created=2,
        )
        assert split > 50 * plain

    def test_catalog_scan_term(self):
        model = CostModel()
        small = model.insert_time_ms(10, 0, 0, 0)
        large = model.insert_time_ms(1000, 0, 0, 0)
        assert large - small == pytest.approx(990 * model.rating_ms)

    def test_custom_coefficients(self):
        model = CostModel(insert_base_ms=0.0, rating_ms=1.0)
        assert model.insert_time_ms(3, 0, 0, 0) == pytest.approx(3.0)
