"""The backup subsystem: node checkpoints, WAL archiving, and PITR.

Three batteries:

* :class:`TestBackupArchive` — the on-disk archive contract: idempotent
  atomic writes, overlapping segments deduplicated by sequence, and the
  at-rest scrub catching every corruption it claims to catch.
* :class:`TestCheckpointCrashMatrix` — the checkpoint ordering proof:
  kill the checkpoint at *every* step, recover from what is on disk,
  and land exactly on the pre-crash state with no write applied twice
  and none lost.
* :class:`TestPointInTimeRecovery` — ``restore_to_seq`` rebuilds the
  exact historical state for every archived sequence, twice-restored
  states are bit-for-bit identical, and a gap in the archived history
  is an error instead of a silent partial restore.
"""

import json

import pytest

from repro.backup import (
    CHECKPOINT_STEPS,
    BackupArchive,
    BackupError,
    checkpoint_node,
    replay_into_table,
    restore_to_seq,
)
from repro.distributed.failures import CrashInjector, MidOperationCrash
from repro.storage.snapshot import (
    SnapshotFormatError,
    load_node_checkpoint,
    save_node_checkpoint,
)
from repro.storage.wal import WriteAheadLog, read_wal
from repro.table.partitioned import CinderellaTable


def table_signature(table):
    """Logical state: every entity with its exact attributes."""
    return sorted(
        (entity.entity_id, tuple(sorted(entity.attributes.items())))
        for entity in table.scan()
    )


def journaled_table(wal_path, n=30):
    """A table whose every write is journaled, like a serving node's."""
    wal = WriteAheadLog(wal_path)
    table = CinderellaTable()
    for eid in range(n):
        attributes = {"uid": f"u{eid}", "v": eid, f"a{eid % 3}": True}
        table.insert(attributes, entity_id=eid)
        wal.append("insert", {"eid": eid, "attributes": attributes})
    wal.sync()
    return table, wal


class TestBackupArchive:
    def test_segment_round_trip(self, tmp_path):
        _table, wal = journaled_table(tmp_path / "node.wal")
        archive = BackupArchive(tmp_path / "archive")
        path = archive.archive_segment(wal.basis_seq, wal.records())
        assert path is not None and path.exists()
        segments = archive.segments()
        assert [(s.first_seq, s.last_seq) for s in segments] == [(1, 30)]
        _basis, records, torn = read_wal(path)
        assert torn == 0
        assert [r.seq for r in records] == list(range(1, 31))
        assert records == wal.records()
        wal.close()

    def test_archiving_is_idempotent(self, tmp_path):
        _table, wal = journaled_table(tmp_path / "node.wal")
        archive = BackupArchive(tmp_path / "archive")
        first = archive.archive_segment(wal.basis_seq, wal.records())
        before = first.read_bytes()
        again = archive.archive_segment(wal.basis_seq, wal.records())
        assert again == first
        assert first.read_bytes() == before  # kept, not rewritten
        assert len(archive.segments()) == 1
        wal.close()

    def test_empty_wal_archives_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "empty.wal")
        archive = BackupArchive(tmp_path / "archive")
        assert archive.archive_segment(wal.basis_seq, wal.records()) is None
        assert archive.segments() == []
        wal.close()

    def test_overlapping_segments_deduplicate_by_seq(self, tmp_path):
        """A crash between archive and truncate re-archives overlapping
        ranges; reading history back must not double-apply them."""
        _table, wal = journaled_table(tmp_path / "node.wal", n=20)
        archive = BackupArchive(tmp_path / "archive")
        records = wal.records()
        archive.archive_segment(0, records[:15])     # seqs 1..15
        archive.archive_segment(9, records[9:])      # seqs 10..20 (overlap)
        merged = archive.records_through()
        assert [r.seq for r in merged] == list(range(1, 21))
        assert archive.last_archived_seq() == 20
        wal.close()

    def test_records_through_respects_bounds(self, tmp_path):
        _table, wal = journaled_table(tmp_path / "node.wal", n=20)
        archive = BackupArchive(tmp_path / "archive")
        archive.archive_segment(wal.basis_seq, wal.records())
        window = archive.records_through(to_seq=12, after_seq=5)
        assert [r.seq for r in window] == list(range(6, 13))
        wal.close()

    def test_scrub_clean_archive(self, tmp_path):
        table, wal = journaled_table(tmp_path / "node.wal")
        archive = BackupArchive(tmp_path / "archive")
        checkpoint_node(table, wal, tmp_path / "node.snapshot", archive=archive)
        report = archive.scrub()
        assert report["problems"] == []
        assert report["checkpoints_verified"] == 1
        assert report["segments_verified"] == 1
        assert report["records_verified"] == 30
        wal.close()

    def test_scrub_catches_corrupt_segment(self, tmp_path):
        table, wal = journaled_table(tmp_path / "node.wal")
        archive = BackupArchive(tmp_path / "archive")
        checkpoint_node(table, wal, tmp_path / "node.snapshot", archive=archive)
        segment = archive.segments()[0].path
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[3] = lines[3].replace(b'"insert"', b'"infect"', 1)
        segment.write_bytes(b"".join(lines))
        report = archive.scrub()
        assert any("checksum" in p for p in report["problems"])
        wal.close()

    def test_scrub_catches_corrupt_checkpoint(self, tmp_path):
        table, wal = journaled_table(tmp_path / "node.wal")
        archive = BackupArchive(tmp_path / "archive")
        checkpoint_node(table, wal, tmp_path / "node.snapshot", archive=archive)
        checkpoint = archive.checkpoints()[0].path
        document = json.loads(checkpoint.read_text())
        document["partitions"][0]["members"] = []
        checkpoint.write_text(json.dumps(document))
        report = archive.scrub()
        assert report["problems"], "tampered checkpoint passed the scrub"
        wal.close()

    def test_scrub_catches_mislabeled_checkpoint(self, tmp_path):
        table, wal = journaled_table(tmp_path / "node.wal")
        snapshot = tmp_path / "node.snapshot"
        save_node_checkpoint(table, 30, snapshot)
        archive = BackupArchive(tmp_path / "archive")
        archive.archive_checkpoint(snapshot, 99)  # filename lies
        report = archive.scrub()
        assert any("filename claims" in p for p in report["problems"])
        wal.close()


class TestNodeCheckpoint:
    def test_checkpoint_resets_wal_and_bounds_replay(self, tmp_path):
        table, wal = journaled_table(tmp_path / "node.wal")
        report = checkpoint_node(table, wal, tmp_path / "node.snapshot")
        assert report["wal_seq"] == 30
        assert report["records_truncated"] == 30
        assert wal.records() == []
        assert wal.basis_seq == 30
        # post-checkpoint writes land in the (now tiny) journal
        table.insert({"uid": "late"}, entity_id=100)
        wal.append("insert", {"eid": 100, "attributes": {"uid": "late"}},
                   sync=True)
        restored, checkpoint_seq = load_node_checkpoint(
            tmp_path / "node.snapshot"
        )
        assert checkpoint_seq == 30
        _basis, records, _torn = read_wal(wal.path)
        replayed = replay_into_table(restored, records,
                                     after_seq=checkpoint_seq)
        assert replayed == 1  # only the post-checkpoint suffix
        assert table_signature(restored) == table_signature(table)
        wal.close()

    def test_seq_skip_never_applies_twice(self, tmp_path):
        """Replaying records the checkpoint already covers is a no-op."""
        table, wal = journaled_table(tmp_path / "node.wal")
        save_node_checkpoint(table, wal.last_seq, tmp_path / "node.snapshot")
        restored, checkpoint_seq = load_node_checkpoint(
            tmp_path / "node.snapshot"
        )
        replayed = replay_into_table(
            restored, wal.records(), after_seq=checkpoint_seq
        )
        assert replayed == 0
        assert table_signature(restored) == table_signature(table)
        wal.close()

    def test_restart_replays_journaled_sync_records(self, tmp_path):
        """A node that restarts *after* a resync replays the sync
        records its WAL journaled — the peer's copy must win again."""
        from repro.storage.snapshot import _encode_value

        def encoded(attributes):
            return {
                name: _encode_value(value)
                for name, value in attributes.items()
            }

        wal = WriteAheadLog(tmp_path / "node.wal")
        table = CinderellaTable()
        for eid in range(8):
            attributes = {"uid": f"u{eid}", "common": eid % 3}
            table.insert(attributes, entity_id=eid)
            wal.append("insert", {"eid": eid, "attributes": attributes})
        # the resync the node lived through: shard 1 of 4 wiped, then
        # the peer's copy streamed in — a rewritten u1 (two overlapping
        # delta pages), u5 unchanged, u9 the node had never seen
        wal.append("sync_reset", {"n_shards": 4, "shards": [1]})
        wal.append("sync_put", {
            "eid": 1, "attributes": encoded({"uid": "u1-stale", "common": 0}),
        })
        peer_copy = {
            1: {"uid": "u1-peer", "common": 9},
            5: {"uid": "u5", "common": 2},
            9: {"uid": "u9", "common": 0},
        }
        for eid, attributes in peer_copy.items():
            wal.append("sync_put", {"eid": eid, "attributes": encoded(attributes)})
        wal.sync()
        for eid in (1, 5):  # mirror the resync on the live table
            table.delete(eid)
        for eid, attributes in peer_copy.items():
            table.insert(attributes, entity_id=eid)

        recovered = CinderellaTable()
        _basis, records, torn = read_wal(wal.path)
        assert torn == 0
        assert replay_into_table(recovered, records) == len(records)
        assert table_signature(recovered) == table_signature(table)
        assert recovered.check_consistency() == []
        wal.close()


def recover_from_disk(snapshot_path, wal_path):
    """What a restarting node does: checkpoint basis + WAL tail replay."""
    table, checkpoint_seq = None, 0
    if snapshot_path.exists():
        try:
            table, checkpoint_seq = load_node_checkpoint(snapshot_path)
        except SnapshotFormatError:
            table, checkpoint_seq = None, 0
    if table is None:
        table = CinderellaTable()
    _basis, records, _torn = read_wal(wal_path)
    replayed = replay_into_table(table, records, after_seq=checkpoint_seq)
    return table, replayed


class TestCheckpointCrashMatrix:
    """Kill the checkpoint at every step; recovery must be exact."""

    def test_crash_at_every_step_recovers_exactly(self, tmp_path):
        # dry run to learn the step labels actually walked
        table, wal = journaled_table(tmp_path / "dry.wal")
        counter = CrashInjector()
        checkpoint_node(
            table, wal, tmp_path / "dry.snapshot",
            archive=BackupArchive(tmp_path / "dry-archive"),
            crash_hook=counter.reached,
        )
        wal.close()
        assert counter.labels == list(CHECKPOINT_STEPS)

        for crash_at, label in enumerate(CHECKPOINT_STEPS):
            tag = f"crash{crash_at}"
            table, wal = journaled_table(tmp_path / f"{tag}.wal")
            # a pre-existing older checkpoint, as any steady-state node has
            snapshot = tmp_path / f"{tag}.snapshot"
            archive = BackupArchive(tmp_path / f"{tag}-archive")
            checkpoint_node(table, wal, snapshot, archive=archive)
            for eid in range(30, 42):
                attributes = {"uid": f"u{eid}", "v": eid}
                table.insert(attributes, entity_id=eid)
                wal.append("insert", {"eid": eid, "attributes": attributes})
            wal.sync()
            before = table_signature(table)
            with pytest.raises(MidOperationCrash):
                checkpoint_node(
                    table, wal, snapshot, archive=archive,
                    crash_hook=CrashInjector(crash_at).reached,
                )
            wal.close()  # the crash took the process; file state stands
            recovered, _replayed = recover_from_disk(
                snapshot, tmp_path / f"{tag}.wal"
            )
            assert table_signature(recovered) == before, (
                f"crash at step {crash_at} ({label}) lost or duplicated "
                f"writes on recovery"
            )
            assert recovered.check_consistency() == []

    def test_crash_then_retry_archives_identical_bytes(self, tmp_path):
        """The idempotent-archive contract under crash-retry: the retry
        after a crash between archive and truncate changes nothing."""
        table, wal = journaled_table(tmp_path / "retry.wal")
        archive = BackupArchive(tmp_path / "retry-archive")
        reset_step = CHECKPOINT_STEPS.index("reset_wal")
        with pytest.raises(MidOperationCrash):
            checkpoint_node(
                table, wal, tmp_path / "retry.snapshot", archive=archive,
                crash_hook=CrashInjector(reset_step).reached,
            )
        first = {p.path.name: p.path.read_bytes() for p in archive.segments()}
        checkpoint_node(
            table, wal, tmp_path / "retry.snapshot", archive=archive
        )
        after = {p.path.name: p.path.read_bytes() for p in archive.segments()}
        for name, payload in first.items():
            assert after[name] == payload
        wal.close()


class TestPointInTimeRecovery:
    def build_history(self, tmp_path, checkpoints_at=(10, 25)):
        """A node's life: inserts, updates, deletes, periodic checkpoints.

        Returns (archive, states) where states[seq] is the logical table
        state immediately after the write with that sequence applied.
        """
        wal = WriteAheadLog(tmp_path / "node.wal")
        table = CinderellaTable()
        archive = BackupArchive(tmp_path / "archive")
        states = {}
        for step in range(1, 36):
            if step % 7 == 0 and step > 7:
                table.update(step - 5, {"uid": f"u{step - 5}", "rev": step})
                wal.append("update", {
                    "eid": step - 5,
                    "attributes": {"uid": f"u{step - 5}", "rev": step},
                })
            elif step % 11 == 0:
                table.delete(step - 9)
                wal.append("delete", {"eid": step - 9})
            else:
                attributes = {"uid": f"u{step}", "v": step}
                table.insert(attributes, entity_id=step)
                wal.append("insert", {"eid": step, "attributes": attributes})
            states[wal.last_seq] = table_signature(table)
            if wal.last_seq in checkpoints_at:
                wal.sync()
                checkpoint_node(
                    table, wal, tmp_path / "node.snapshot", archive=archive
                )
        wal.sync()
        # archive the live tail too (what `repro backup` does)
        archive.archive_segment(wal.basis_seq, wal.records())
        wal.close()
        return archive, states

    def test_restore_every_historical_seq_exactly(self, tmp_path):
        archive, states = self.build_history(tmp_path)
        for seq, expected in states.items():
            restored, restored_seq = restore_to_seq(archive, to_seq=seq)
            assert restored_seq == seq
            assert table_signature(restored) == expected, (
                f"restore --to-seq {seq} did not land on the exact state"
            )

    def test_restore_is_bit_for_bit_reproducible(self, tmp_path):
        archive, states = self.build_history(tmp_path)
        seq = max(states)
        once, _ = restore_to_seq(archive, to_seq=seq)
        twice, _ = restore_to_seq(archive, to_seq=seq)
        save_node_checkpoint(once, seq, tmp_path / "once.json")
        save_node_checkpoint(twice, seq, tmp_path / "twice.json")
        assert (tmp_path / "once.json").read_bytes() == \
            (tmp_path / "twice.json").read_bytes()

    def test_restore_defaults_to_newest_archived(self, tmp_path):
        archive, states = self.build_history(tmp_path)
        restored, seq = restore_to_seq(archive)
        assert seq == max(states)
        assert table_signature(restored) == states[seq]

    def test_gap_in_history_is_an_error(self, tmp_path):
        archive, states = self.build_history(tmp_path)
        # destroy the middle of history: the second checkpoint and the
        # segment covering it — restore must now bridge seqs 11..25
        # from the first checkpoint, and cannot
        middle = [s for s in archive.segments() if s.first_seq == 11]
        assert middle, "history did not produce the expected middle segment"
        middle[0].path.unlink()
        archive.checkpoints()[-1].path.unlink()
        with pytest.raises(BackupError, match="missing sequences"):
            restore_to_seq(archive, to_seq=max(states))

    def test_target_past_archive_end_is_an_error(self, tmp_path):
        archive, states = self.build_history(tmp_path)
        with pytest.raises(BackupError, match="ends at sequence"):
            restore_to_seq(archive, to_seq=max(states) + 10)

    def test_restore_before_first_checkpoint_replays_from_empty(
        self, tmp_path
    ):
        archive, states = self.build_history(tmp_path)
        restored, seq = restore_to_seq(archive, to_seq=5)
        assert seq == 5
        assert table_signature(restored) == states[5]


class TestBackupCli:
    def test_backup_recover_scrub_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        table, wal = journaled_table(tmp_path / "node.wal")
        snapshot = tmp_path / "node.snapshot"
        save_node_checkpoint(table, wal.last_seq, snapshot)
        wal.close()
        archive = tmp_path / "archive"
        assert main([
            "backup", "--wal", str(tmp_path / "node.wal"),
            "--archive", str(archive), "--snapshot", str(snapshot),
        ]) == 0
        assert main([
            "recover", "--archive", str(archive), "--to-seq", "30",
            "--out", str(tmp_path / "restored.json"),
        ]) == 0
        restored, seq = load_node_checkpoint(tmp_path / "restored.json")
        assert seq == 30
        assert table_signature(restored) == table_signature(table)
        assert main([
            "scrub", "--archive", str(archive), "--snapshot", str(snapshot),
        ]) == 0
        out = capsys.readouterr().out
        assert "backup integrity: OK" in out

    def test_scrub_fails_on_tampering(self, tmp_path, capsys):
        from repro.cli import main

        table, wal = journaled_table(tmp_path / "node.wal")
        snapshot = tmp_path / "node.snapshot"
        archive = BackupArchive(tmp_path / "archive")
        checkpoint_node(table, wal, snapshot, archive=archive)
        wal.close()
        segment = archive.segments()[0].path
        segment.write_bytes(segment.read_bytes()[:-20])
        assert main(["scrub", "--archive", str(tmp_path / "archive")]) == 1
        assert "FAILED" in capsys.readouterr().out
