"""Wire-level trace propagation: one query, one cross-process tree.

The acceptance bar of the tentpole: a routed query through a two-node
cluster must leave a *single* trace — client context → router request →
one router.exchange per upstream hop → node request → the node's local
query spans — reconstructable purely from trace/span/parent ids, on the
live tracer and from exported JSONL alike.  Degraded scatter-gather
must mark the unreachable shard's hop with the transport error, and
with propagation off (the default) nothing may cross the wire at all.
"""

import json

import pytest

from repro import obs
from repro.obs.runtime import adopt_wire_trace, trace_scope, wire_trace
from repro.obs.tracing import TraceContext
from repro.router.testing import ClusterHarness


@pytest.fixture(autouse=True)
def _always_disable():
    yield
    obs.disable()


class TestTraceContext:
    def test_new_mints_w3c_width_ids(self):
        context = TraceContext.new()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16
        int(context.trace_id, 16)
        int(context.span_id, 16)
        assert context.parent_span_id is None
        assert context.sampled is True

    def test_child_keeps_trace_and_links_parent(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id == parent.span_id
        assert child.span_id != parent.span_id
        assert child.sampled is parent.sampled

    def test_wire_round_trip(self):
        context = TraceContext.new(sampled=False)
        wire = context.to_wire()
        # the W3C traceparent form: version-trace_id-span_id-flags
        assert wire == f"00-{context.trace_id}-{context.span_id}-00"
        back = TraceContext.from_wire(wire)
        assert back.trace_id == context.trace_id
        assert back.span_id == context.span_id
        assert back.sampled is False
        sampled = TraceContext.new(sampled=True)
        assert TraceContext.from_wire(sampled.to_wire()).sampled is True

    @pytest.mark.parametrize("malformed", [
        None,
        "junk",
        42,
        [],
        {"trace_id": "a" * 32, "span_id": "b" * 16, "sampled": True},
        "",
        "00-" + "a" * 32 + "-" + "b" * 16,          # flags missing
        "99-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
        "00-" + "a" * 33 + "-" + "b" * 15 + "-01",  # dashes misplaced
        "00_" + "a" * 32 + "_" + "b" * 16 + "_01",  # wrong separators
    ])
    def test_malformed_wire_fields_are_dropped(self, malformed):
        assert TraceContext.from_wire(malformed) is None


class TestRuntimeHelpers:
    def test_disabled_and_non_propagating_stamp_nothing(self):
        assert wire_trace() is None          # observability off
        obs.enable()                          # on, propagation off (default)
        assert wire_trace() is None
        assert adopt_wire_trace(TraceContext.new().to_wire()) is None

    def test_propagating_client_mints_a_fresh_root(self):
        obs.enable(propagate=True)
        wire = wire_trace()
        context = TraceContext.from_wire(wire)
        assert len(context.trace_id) == 32
        assert context.sampled is True
        # outside any span each request starts its own trace
        other = TraceContext.from_wire(wire_trace())
        assert other.trace_id != context.trace_id

    def test_wire_trace_inside_a_span_carries_its_position(self):
        state = obs.enable(propagate=True)
        with state.tracer.span("client.work") as span:
            wire = TraceContext.from_wire(wire_trace())
            assert wire.trace_id == span.trace_id
            assert wire.span_id == span.span_id
        # the lazily minted ids survive on the finished span
        assert state.tracer.finished[-1].trace_id == wire.trace_id

    def test_sample_rate_zero_marks_unsampled(self):
        obs.enable(propagate=True, sample_rate=0.0)
        assert wire_trace().endswith("-00")

    def test_adopt_creates_a_child_of_the_sender(self):
        obs.enable(propagate=True)
        sender = TraceContext.new()
        adopted = adopt_wire_trace(sender.to_wire())
        assert adopted.trace_id == sender.trace_id
        assert adopted.parent_span_id == sender.span_id
        assert adopted.span_id != sender.span_id

    def test_trace_scope_adopts_roots_and_restores(self):
        state = obs.enable(propagate=True)
        context = TraceContext.new().child()
        with trace_scope(context):
            with state.tracer.span("handler.work") as outer:
                with state.tracer.span("handler.inner") as inner:
                    pass
        assert outer.trace_id == context.trace_id
        assert outer.parent_span_id == context.span_id
        assert inner.trace_id == context.trace_id
        assert inner.parent_span_id == outer.span_id
        # scope closed: new roots are local-only again
        with state.tracer.span("afterwards") as after:
            pass
        assert after.trace_id is None

    def test_unsampled_context_yields_noop_scope(self):
        state = obs.enable(propagate=True)
        context = TraceContext(
            TraceContext.new().trace_id, "aa" * 8, sampled=False
        )
        with trace_scope(context):
            with state.tracer.span("handler.work") as span:
                pass
        assert span.trace_id is None


def _spans_by_trace(tracer):
    """All finished spans (roots and descendants) grouped by trace id."""
    groups: dict[str, list] = {}
    for root in tracer.finished:
        for span in root.walk():
            if span.trace_id is not None:
                groups.setdefault(span.trace_id, []).append(span)
    return groups


class TestClusterPropagation:
    def _run_query(self, harness, check=True):
        with harness.client(check=check) as client:
            for eid in range(12):
                client.insert({"a": eid % 3, "b": eid % 2}, eid=eid)
            return client.request("query", attributes=["a"])

    def test_routed_query_yields_one_cross_process_span_tree(self, tmp_path):
        state = obs.enable(propagate=True)
        with ClusterHarness(tmp_path, n_nodes=2) as harness:
            response = self._run_query(harness)
            assert response.ok

        # find the query's trace via the router.request span
        router_requests = [
            span for span in state.tracer.finished
            if span.name == "router.request"
            and span.attributes.get("op") == "query"
        ]
        assert router_requests, "router never recorded its request span"
        root = router_requests[-1]
        trace = _spans_by_trace(state.tracer)[root.trace_id]
        by_name: dict[str, list] = {}
        for span in trace:
            by_name.setdefault(span.name, []).append(span)

        # the client minted the trace: the router's hop has a parent
        # it never saw as a span (the client's wire context)
        assert root.parent_span_id is not None

        # scatter: one exchange per upstream node, both under the router
        exchanges = by_name["router.exchange"]
        assert len(exchanges) == 2
        for exchange in exchanges:
            assert exchange.parent_span_id == root.span_id

        # each node's request span hangs off its exchange
        node_requests = by_name["node.request"]
        assert len(node_requests) == 2
        assert {s.attributes["node"] for s in node_requests} == {
            "node0", "node1"
        }
        exchange_ids = {e.span_id for e in exchanges}
        for node_span in node_requests:
            assert node_span.parent_span_id in exchange_ids

        # the node-local query machinery joined the same trace
        local = [
            span for span in trace if span.name.startswith("query.")
        ]
        assert local, "node-local query spans did not adopt the context"
        node_ids = {s.span_id for s in node_requests}
        roots_of_local = {
            span.parent_span_id for span in trace
            if span.name.startswith("query.") and span.parent_span_id in node_ids
        }
        assert roots_of_local, "local spans are not parented on node hops"

        # the merge step on the router is in the tree too
        assert "router.gather_merge" in by_name

    def test_degraded_scatter_marks_the_dead_shard(self, tmp_path):
        state = obs.enable(propagate=True)
        # rf=1: the dead node's shards have no surviving replica, so the
        # scatter must answer degraded instead of failing over
        with ClusterHarness(
            tmp_path, n_nodes=2, replication_factor=1
        ) as harness:
            with harness.client() as client:
                for eid in range(12):
                    client.insert({"a": eid % 3}, eid=eid)
            harness.kill_node("node1")
            with harness.client(check=False) as client:
                response = client.request("query", attributes=["a"])
            assert response.status == "degraded"

        failed = [
            span for span in state.tracer.finished
            if span.name == "router.exchange"
            and span.attributes.get("node") == "node1"
            and span.error is not None
        ]
        assert failed, "the dead shard's hop was not marked"
        assert "UpstreamError" in failed[-1].error
        # the failed hop is inside the same trace as the degraded answer
        router_requests = [
            span for span in state.tracer.finished
            if span.name == "router.request"
            and span.attributes.get("op") == "query"
        ]
        assert failed[-1].trace_id == router_requests[-1].trace_id

    def test_jsonl_export_correlates_both_tiers(self, tmp_path):
        """The span tree must be reconstructable offline from JSONL."""
        path = tmp_path / "traces.jsonl"
        wal_dir = tmp_path / "cluster"
        wal_dir.mkdir()
        obs.enable(propagate=True, trace_jsonl_path=str(path))
        with ClusterHarness(wal_dir, n_nodes=2) as harness:
            self._run_query(harness)
        obs.disable()  # closes the exporter

        documents = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]

        def flatten(document):
            yield document
            for child in document.get("children", ()):
                yield from flatten(child)

        by_trace: dict[str, list] = {}
        for document in documents:
            for span in flatten(document):
                if "trace_id" in span:
                    by_trace.setdefault(span["trace_id"], []).append(span)
        query_traces = [
            spans for spans in by_trace.values()
            if any(
                s["name"] == "router.request"
                and s["attributes"].get("op") == "query"
                for s in spans
            )
        ]
        assert query_traces, "no exported trace contains the routed query"
        spans = query_traces[-1]
        names = {s["name"] for s in spans}
        assert {"router.request", "router.exchange", "node.request"} <= names
        # every non-root parent id resolves inside the same trace
        ids = {s["span_id"] for s in spans}
        router_root = next(s for s in spans if s["name"] == "router.request")
        for span in spans:
            parent = span.get("parent_span_id")
            if parent is not None and span is not router_root:
                assert parent in ids or parent == router_root["parent_span_id"]

    def test_propagation_disabled_keeps_the_wire_clean(self, tmp_path):
        """obs on but propagate off (the default): no trace fields sent,
        no remote spans recorded — the feature is strictly opt-in."""
        state = obs.enable()
        with ClusterHarness(tmp_path, n_nodes=2) as harness:
            response = self._run_query(harness)
            assert response.ok
        names = {span.name for span in state.tracer.finished}
        assert "router.request" not in names
        assert "node.request" not in names
        assert "router.exchange" not in names
