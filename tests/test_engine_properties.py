"""Property-based tests for the relational operator library.

Each operator is checked against an independent brute-force reference
implementation over randomly generated row sets.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.aggregates import Avg, Count, Max, Min, Sum
from repro.engine.operators import group_by, hash_join, order_by_many

keys = st.integers(min_value=0, max_value=6)
values = st.integers(min_value=-100, max_value=100)

left_rows = st.lists(
    st.fixed_dictionaries({"lk": keys, "lv": values}), max_size=25
)
right_rows = st.lists(
    st.fixed_dictionaries({"rk": keys, "rv": values}), max_size=25
)


class TestHashJoinAgainstNestedLoop:
    @given(left_rows, right_rows)
    def test_inner_join(self, left, right):
        result = sorted(
            map(repr, hash_join(left, right, "lk", "rk"))
        )
        reference = sorted(
            repr({**l, **r}) for l in left for r in right if l["lk"] == r["rk"]
        )
        assert result == reference

    @given(left_rows, right_rows)
    def test_left_join(self, left, right):
        result = list(hash_join(left, right, "lk", "rk", how="left"))
        matched = sum(
            1 for l in left for r in right if l["lk"] == r["rk"]
        )
        unmatched = sum(
            1 for l in left if not any(l["lk"] == r["rk"] for r in right)
        )
        assert len(result) == matched + unmatched
        # unmatched rows carry no right columns
        assert sum(1 for row in result if "rk" not in row) == unmatched

    @given(left_rows, right_rows)
    def test_semi_plus_anti_partition_the_left_input(self, left, right):
        semi = list(hash_join(left, right, "lk", "rk", how="semi"))
        anti = list(hash_join(left, right, "lk", "rk", how="anti"))
        assert len(semi) + len(anti) == len(left)
        right_keys = {r["rk"] for r in right}
        assert all(row["lk"] in right_keys for row in semi)
        assert all(row["lk"] not in right_keys for row in anti)


class TestGroupByAgainstManualFold:
    @given(left_rows)
    def test_sum_count_min_max_avg(self, rows):
        result = group_by(
            rows,
            "lk",
            {
                "total": lambda: Sum("lv"),
                "n": lambda: Count(),
                "low": lambda: Min("lv"),
                "high": lambda: Max("lv"),
                "mean": lambda: Avg("lv"),
            },
        )
        reference: dict[int, list[int]] = {}
        for row in rows:
            reference.setdefault(row["lk"], []).append(row["lv"])
        assert len(result) == len(reference)
        for out in result:
            values_for_key = reference[out["lk"]]
            assert out["total"] == sum(values_for_key)
            assert out["n"] == len(values_for_key)
            assert out["low"] == min(values_for_key)
            assert out["high"] == max(values_for_key)
            assert out["mean"] == sum(values_for_key) / len(values_for_key)

    @given(left_rows)
    def test_groups_are_a_partition_of_the_input(self, rows):
        result = group_by(rows, "lk", {"n": lambda: Count()})
        assert sum(r["n"] for r in result) == len(rows)
        assert len({r["lk"] for r in result}) == len(result)


class TestOrderByMany:
    @given(left_rows)
    def test_matches_python_sorted_with_composite_key(self, rows):
        result = order_by_many(rows, [("lk", False), ("lv", True)])
        reference = sorted(rows, key=lambda r: (r["lk"], -r["lv"]))
        assert result == reference

    @given(left_rows)
    def test_is_a_permutation(self, rows):
        result = order_by_many(rows, [("lv", True)])
        assert sorted(map(repr, result)) == sorted(map(repr, rows))
