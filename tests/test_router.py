"""The routing tier end to end: placement, routed writes, scatter reads.

The end-to-end tests drive a real :class:`ClusterHarness` — WAL-backed
serving nodes behind a router, all over real sockets — through the same
blocking client the single-node tests use: the router speaks the same
protocol, so the client cannot tell the difference.  That transparency
is itself under test.
"""

import time

import pytest

from repro.router import (
    ROUTER_EID_BASE,
    ClusterHarness,
    NodeAddress,
    PlacementMap,
    RouterConfig,
)
from repro.server import ServerConfig, ServerThread
from repro.server.client import ServerClient, ServerError


def wait_until(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _nodes(count):
    return [
        NodeAddress(name=f"node{i}", host="127.0.0.1", port=9000 + i)
        for i in range(count)
    ]


class TestPlacementMap:
    def test_defaults_to_four_shards_per_node(self):
        placement = PlacementMap(_nodes(3))
        assert placement.n_shards == 12

    def test_replication_factor_capped_at_node_count(self):
        placement = PlacementMap(_nodes(2), replication_factor=5)
        assert placement.replication_factor == 2

    def test_replicas_rotate_primary_first(self):
        placement = PlacementMap(_nodes(3), n_shards=6, replication_factor=2)
        names = [node.name for node in placement.replicas(4)]
        assert names == ["node1", "node2"]  # nodes[(4+j) % 3]

    def test_every_node_carries_equal_primaries(self):
        placement = PlacementMap(_nodes(3), n_shards=12, replication_factor=2)
        primaries = [placement.replicas(s)[0].name for s in placement.shards]
        assert all(primaries.count(f"node{i}") == 4 for i in range(3))

    def test_shard_of_is_modulo(self):
        placement = PlacementMap(_nodes(2), n_shards=8)
        assert placement.shard_of(21) == 5
        assert placement.replicas_of_eid(21) == placement.replicas(5)

    def test_shards_on_covers_replicas_too(self):
        placement = PlacementMap(_nodes(3), n_shards=6, replication_factor=2)
        on_node1 = placement.shards_on("node1")
        # primary of shards 1, 4; secondary of shards 0, 3
        assert on_node1 == [0, 1, 3, 4]

    def test_duplicate_names_rejected(self):
        nodes = _nodes(2) + [_nodes(1)[0]]
        with pytest.raises(ValueError, match="duplicate"):
            PlacementMap(nodes)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            PlacementMap([])
        with pytest.raises(ValueError):
            PlacementMap(_nodes(1), replication_factor=0)
        with pytest.raises(ValueError):
            PlacementMap(_nodes(1)).replicas(99)

    def test_nodes_of_lookup(self):
        placement = PlacementMap(_nodes(2))
        assert placement.nodes_of("node1").port == 9001
        with pytest.raises(KeyError):
            placement.nodes_of("ghost")

    def test_as_dict_is_plain_data(self):
        document = PlacementMap(_nodes(2), n_shards=4).as_dict()
        assert document["n_shards"] == 4
        assert [n["name"] for n in document["nodes"]] == ["node0", "node1"]
        assert document["shards"]["3"] == ["node1"]


@pytest.fixture()
def cluster(tmp_path):
    with ClusterHarness(tmp_path, n_nodes=3, replication_factor=2) as harness:
        yield harness


@pytest.fixture()
def client(cluster):
    with cluster.client() as connected:
        yield connected


class TestRoutedBasics:
    def test_ping_identifies_the_router(self, client):
        response = client.ping(payload={"k": 1})
        assert response.ok
        assert response.get("payload") == {"k": 1}
        assert response.get("router") == "router"

    def test_insert_reports_shard_and_replicas(self, cluster, client):
        response = client.insert({"a": 1}, eid=17)
        assert response.status == "applied"
        assert response.get("eid") == 17
        assert response.get("shard") == cluster.placement.shard_of(17)
        assert response.get("replicas_acked") == 2
        assert response.get("replicas_missed") == 0

    def test_router_assigned_eids_cannot_collide_with_client_ids(self, client):
        first = client.insert({"a": 1}).get("eid")
        second = client.insert({"a": 2}).get("eid")
        assert first >= ROUTER_EID_BASE
        assert second == first + 1

    def test_bad_entity_id_refused(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.request("insert", attributes={"a": 1}, eid=-3)
        assert excinfo.value.code == "invalid_entity_id"

    def test_update_delete_cycle_through_the_router(self, client):
        eid = client.insert({"name": "S120", "resolution": 12.1}).get("eid")
        client.update(eid, {"name": "S120", "zoom": 5})
        assert client.query(["zoom"]) == [{"zoom": 5}]
        client.delete(eid)
        assert client.query(["zoom"]) == []

    def test_scatter_query_returns_each_row_exactly_once(self, client):
        # rf=2: every row lives on two nodes; an unscoped scatter would
        # double-count — the shard_filter scoping must not
        for i in range(60):
            client.insert({"a": i, "uid": f"u{i}"}, eid=i)
        response = client.query_response(["uid"])
        assert response.ok
        assert response.get("row_count") == 60
        uids = {row["uid"] for row in response.get("rows")}
        assert len(uids) == 60
        assert response.get("shards_answered") == response.get("shards_total")

    def test_query_stats_are_summed_across_shards(self, client):
        for i in range(20):
            client.insert({"a": i}, eid=i)
        response = client.query_response(["a"])
        assert response.get("row_count") == 20
        stats = response.get("stats")
        # summed over the per-node answers: every replica's partitions
        # were scanned at least once
        assert stats["partitions_scanned"] >= 1
        assert stats["partitions_total"] >= stats["partitions_scanned"]

    def test_sql_scatter(self, client):
        for i in range(30):
            client.insert({"weight": i * 10, "name": f"p{i}"}, eid=i)
        response = client.sql(
            "SELECT name FROM universalTable WHERE weight > 250"
        )
        assert response.ok
        assert response.get("row_count") == 4

    def test_logical_rejection_propagates_untouched(self, client):
        client.insert({"a": 1}, eid=5)
        with pytest.raises(ServerError) as excinfo:
            client.insert({"b": 2}, eid=5)
        assert excinfo.value.status == "rejected"
        assert excinfo.value.code == "duplicate_entity"

    def test_sql_syntax_error_propagates_from_the_shards(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sql("SELEKT nope")
        assert excinfo.value.status == "bad_request"
        assert excinfo.value.code == "sql_syntax"

    def test_maintain_fans_out_to_every_node(self, client):
        response = client.maintain()
        assert response.ok
        assert set(response.get("nodes")) == {"node0", "node1", "node2"}

    def test_stats_snapshot_shape(self, client):
        client.insert({"a": 1})
        stats = client.stats()
        assert stats["router"] == "router"
        assert stats["placement"]["replication_factor"] == 2
        assert set(stats["health"]) == {"node0", "node1", "node2"}
        assert stats["counters"]["writes_routed"] == 1
        assert stats["counters"]["availability"] == 1.0
        assert "heat" not in stats  # federation is opt-in

    def test_stats_heat_federates_from_adapting_nodes(self, tmp_path):
        from repro.adapt import AdaptationConfig

        config = ServerConfig(
            maintenance_interval_s=0.05, adapt_every=1,
            adaptation=AdaptationConfig(min_observations=4, cooldown_s=0.0),
        )
        with ClusterHarness(
            tmp_path, n_nodes=2, replication_factor=1, server_config=config
        ) as harness:
            with harness.client() as client:
                for i in range(16):
                    client.insert({"a": i}, eid=i)
                client.query(["a"])
                heat = client.request("stats", heat=True).fields["heat"]
                assert heat  # every node saw writes
                assert {key.split("/")[0] for key in heat} <= {
                    "node0", "node1"
                }
                for doc in heat.values():
                    assert set(doc) == {"reads", "writes", "last_version"}
                assert sum(d["writes"] for d in heat.values()) >= 16


class TestFailover:
    def test_write_survives_a_dead_replica(self, cluster, client):
        for i in range(12):
            client.insert({"a": i}, eid=i)
        cluster.kill_node("node1")
        response = client.retrying("insert", attributes={"a": 99}, eid=100)
        assert response.status == "applied"
        assert response.get("replicas_acked") >= 1

    def test_reads_stay_complete_with_one_dead_node_at_rf2(
        self, cluster, client
    ):
        for i in range(24):
            client.insert({"a": i, "uid": f"u{i}"}, eid=i)
        cluster.kill_node("node2")
        response = client.request("query", attributes=["a"])
        assert response.ok  # every shard still has a live replica
        assert response.get("row_count") == 24
        assert cluster.router.counters.failovers >= 1

    def test_restart_restores_and_replays_catchup(self, cluster, client):
        for i in range(12):
            client.insert({"a": i}, eid=i)
        cluster.kill_node("node1")
        # shard_of(100) = 4, whose replicas are node1 (primary) and
        # node2 — the write must fail over and buffer node1's copy
        acked = client.retrying("insert", attributes={"a": 77}, eid=100)
        assert acked.status == "applied"
        assert acked.get("replicas_missed") >= 1
        cluster.restart_node("node1")

        def caught_up():
            client.query(["a"])  # traffic is the probe
            return cluster.router.counters.catchup_replayed >= 1

        assert wait_until(caught_up)
        assert len(cluster.router._catchup["node1"]) == 0  # buffer drained
        # the replica that missed the write serves it after replay
        with cluster.node_client("node1") as direct:
            rows = direct.query(["a"])
        assert {"a": 77} in rows


class TestUnavailability:
    def test_everything_down_is_typed_and_retryable(self, tmp_path):
        with ClusterHarness(
            tmp_path, n_nodes=1, replication_factor=1
        ) as harness:
            with harness.client(check=False) as client:
                client.insert({"a": 1}, eid=1)
                harness.kill_node("node0")
                write = client.request("insert", attributes={"a": 2}, eid=2)
                assert write.status == "node_unavailable"
                assert write.retryable
                assert write.error["code"] == "no_reachable_replica"
                read = client.request("query", attributes=["a"])
                assert read.status == "node_unavailable"
                assert read.get("shards_answered") == 0

    def test_degraded_partial_result_contract(self, tmp_path):
        with ClusterHarness(
            tmp_path, n_nodes=2, replication_factor=1
        ) as harness:
            with harness.client(check=False) as client:
                for i in range(20):
                    client.insert({"a": i, "uid": f"u{i}"}, eid=i)
                harness.kill_node("node1")
                response = client.request("query", attributes=["uid"])
                assert response.status == "degraded"
                assert response.degraded
                assert response.error["code"] == "partial_result"
                unreachable = response.get("unreachable_shards")
                assert unreachable == harness.placement.shards_on("node1")
                assert response.get("shards_answered") == (
                    response.get("shards_total") - len(unreachable)
                )
                # the gathered rows are exactly the live shards' rows
                live = {
                    f"u{i}" for i in range(20)
                    if harness.placement.shard_of(i) not in unreachable
                }
                assert {r["uid"] for r in response.get("rows")} == live
                # a check=True client keeps the partial rows instead of
                # raising (degraded is exempt)
                with harness.client(check=True) as strict:
                    degraded = strict.request("query", attributes=["a"])
                    assert degraded.status == "degraded"


class TestRetryingClient:
    def test_retries_overloaded_until_budget_exhausted(self):
        config = ServerConfig(max_pending=0, maintenance_interval_s=0)
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address, check=False) as client:
                response = client.retrying(
                    "insert", attributes={"a": 1},
                    attempts=4, base_delay_s=0.001,
                )
                assert response.status == "overloaded"
                stats = client.stats()
                assert stats["counters"]["writes_shed_overloaded"] == 4

    def test_wall_clock_budget_stops_the_loop(self):
        config = ServerConfig(max_pending=0, maintenance_interval_s=0)
        with ServerThread(config=config) as harness:
            with ServerClient(*harness.address, check=False) as client:
                started = time.monotonic()
                client.retrying(
                    "insert", attributes={"a": 1},
                    attempts=10_000, base_delay_s=0.05, max_delay_s=0.05,
                    budget_s=0.2,
                )
                assert time.monotonic() - started < 2.0

    def test_check_mode_restored_and_nonretryable_raises(self):
        with ServerThread(config=ServerConfig(maintenance_interval_s=0)) as h:
            with ServerClient(*h.address) as client:
                client.insert({"a": 1}, eid=1)
                with pytest.raises(ServerError) as excinfo:
                    client.retrying("insert", attributes={"b": 2}, eid=1)
                assert excinfo.value.code == "duplicate_entity"
                assert client.check is True

    def test_backoff_shim_is_gone(self):
        # insert_with_backoff was deprecated in favor of retrying(...)
        # and has been removed; this pins the removal so it cannot
        # silently come back
        assert not hasattr(ServerClient, "insert_with_backoff")
