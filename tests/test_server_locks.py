"""Tests for the asyncio reader–writer lock guarding the catalog."""

import asyncio

import pytest

from repro.server.locks import AsyncReadWriteLock


def run(coroutine):
    return asyncio.run(coroutine)


class TestSharedAcquisition:
    def test_many_readers_hold_together(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            inside = asyncio.Event()
            release = asyncio.Event()

            async def reader():
                async with lock.read_locked():
                    if lock.readers == 3:
                        inside.set()
                    await release.wait()

            tasks = [asyncio.create_task(reader()) for _ in range(3)]
            await asyncio.wait_for(inside.wait(), 5)
            assert lock.readers == 3
            release.set()
            await asyncio.gather(*tasks)
            assert lock.readers == 0
            assert lock.max_concurrent_readers == 3
            assert lock.read_acquisitions == 3

        run(scenario())

    def test_writer_excludes_readers_and_writers(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            order: list[str] = []

            async def writer(name):
                async with lock.write_locked():
                    order.append(f"{name}:in")
                    await asyncio.sleep(0.01)
                    order.append(f"{name}:out")

            async def reader():
                async with lock.read_locked():
                    order.append("r")

            await asyncio.gather(writer("w1"), writer("w2"), reader())
            # each writer's in/out is adjacent: nothing interleaved it
            for name in ("w1", "w2"):
                start = order.index(f"{name}:in")
                assert order[start + 1] == f"{name}:out"
            assert lock.write_acquisitions == 2

        run(scenario())


class TestWriterPreference:
    def test_new_readers_queue_behind_a_waiting_writer(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            order: list[str] = []
            first_reader_in = asyncio.Event()
            first_reader_release = asyncio.Event()

            async def long_reader():
                async with lock.read_locked():
                    first_reader_in.set()
                    await first_reader_release.wait()
                order.append("r1-done")

            async def writer():
                async with lock.write_locked():
                    order.append("w")

            async def late_reader():
                async with lock.read_locked():
                    order.append("r2")

            r1 = asyncio.create_task(long_reader())
            await first_reader_in.wait()
            w = asyncio.create_task(writer())
            # let the writer reach its wait so it is registered as waiting
            while lock.writers_waiting == 0:
                await asyncio.sleep(0)
            r2 = asyncio.create_task(late_reader())
            await asyncio.sleep(0.01)
            assert order == []  # r2 must not slip past the waiting writer
            first_reader_release.set()
            await asyncio.gather(r1, w, r2)
            assert order.index("w") < order.index("r2")

        run(scenario())


class TestStarvation:
    """Regressions for the lock's liveness properties.

    Since reads went lock-free the write lock only serializes the
    batcher, maintenance, and sync deltas against each other — but the
    preference invariants still guard those three: a hypothetical
    reader stream must not starve a writer, and a writer burst must
    drain into any waiting reader.
    """

    def test_reader_stream_cannot_starve_a_writer(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            writer_done = asyncio.Event()
            readers_completed = 0

            async def reader_stream():
                nonlocal readers_completed
                while not writer_done.is_set():
                    async with lock.read_locked():
                        await asyncio.sleep(0)
                    readers_completed += 1
                    await asyncio.sleep(0)

            streams = [
                asyncio.create_task(reader_stream()) for _ in range(4)
            ]
            await asyncio.sleep(0.01)  # the stream is flowing
            baseline = readers_completed

            async def writer():
                async with lock.write_locked():
                    pass
                writer_done.set()

            writer_task = asyncio.create_task(writer())
            await asyncio.wait_for(writer_done.wait(), 5)
            overtakers = readers_completed - baseline
            # writer preference: only readers already in flight (plus
            # one scheduling turn per stream) may finish ahead of the
            # queued writer; an unbounded stream must not starve it
            assert overtakers <= 3 * len(streams), (
                f"{overtakers} readers overtook the queued writer"
            )
            await asyncio.gather(*streams, writer_task)

        run(scenario())

    def test_writer_burst_drains_into_a_waiting_reader(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            order: list[str] = []

            async def writer(i):
                async with lock.write_locked():
                    order.append(f"w{i}")
                    await asyncio.sleep(0)

            async def reader():
                async with lock.read_locked():
                    order.append("r")

            writers = [asyncio.create_task(writer(i)) for i in range(10)]
            reader_task = asyncio.create_task(reader())
            # liveness: the reader gets through once the burst drains —
            # the wait_for is the regression (a starved reader hangs)
            await asyncio.wait_for(
                asyncio.gather(*writers, reader_task), 5
            )
            assert order.count("r") == 1
            assert len(order) == 11

        run(scenario())


class TestMisuse:
    def test_unbalanced_releases_raise(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            with pytest.raises(RuntimeError, match="release_read"):
                await lock.release_read()
            with pytest.raises(RuntimeError, match="release_write"):
                await lock.release_write()

        run(scenario())

    def test_exception_inside_context_releases(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            with pytest.raises(ValueError):
                async with lock.read_locked():
                    raise ValueError("boom")
            with pytest.raises(ValueError):
                async with lock.write_locked():
                    raise ValueError("boom")
            # both fully released: a writer can acquire immediately
            async with lock.write_locked():
                assert lock.writer_active

        run(scenario())
