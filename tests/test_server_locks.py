"""Tests for the asyncio reader–writer lock guarding the catalog."""

import asyncio

import pytest

from repro.server.locks import AsyncReadWriteLock


def run(coroutine):
    return asyncio.run(coroutine)


class TestSharedAcquisition:
    def test_many_readers_hold_together(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            inside = asyncio.Event()
            release = asyncio.Event()

            async def reader():
                async with lock.read_locked():
                    if lock.readers == 3:
                        inside.set()
                    await release.wait()

            tasks = [asyncio.create_task(reader()) for _ in range(3)]
            await asyncio.wait_for(inside.wait(), 5)
            assert lock.readers == 3
            release.set()
            await asyncio.gather(*tasks)
            assert lock.readers == 0
            assert lock.max_concurrent_readers == 3
            assert lock.read_acquisitions == 3

        run(scenario())

    def test_writer_excludes_readers_and_writers(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            order: list[str] = []

            async def writer(name):
                async with lock.write_locked():
                    order.append(f"{name}:in")
                    await asyncio.sleep(0.01)
                    order.append(f"{name}:out")

            async def reader():
                async with lock.read_locked():
                    order.append("r")

            await asyncio.gather(writer("w1"), writer("w2"), reader())
            # each writer's in/out is adjacent: nothing interleaved it
            for name in ("w1", "w2"):
                start = order.index(f"{name}:in")
                assert order[start + 1] == f"{name}:out"
            assert lock.write_acquisitions == 2

        run(scenario())


class TestWriterPreference:
    def test_new_readers_queue_behind_a_waiting_writer(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            order: list[str] = []
            first_reader_in = asyncio.Event()
            first_reader_release = asyncio.Event()

            async def long_reader():
                async with lock.read_locked():
                    first_reader_in.set()
                    await first_reader_release.wait()
                order.append("r1-done")

            async def writer():
                async with lock.write_locked():
                    order.append("w")

            async def late_reader():
                async with lock.read_locked():
                    order.append("r2")

            r1 = asyncio.create_task(long_reader())
            await first_reader_in.wait()
            w = asyncio.create_task(writer())
            # let the writer reach its wait so it is registered as waiting
            while lock.writers_waiting == 0:
                await asyncio.sleep(0)
            r2 = asyncio.create_task(late_reader())
            await asyncio.sleep(0.01)
            assert order == []  # r2 must not slip past the waiting writer
            first_reader_release.set()
            await asyncio.gather(r1, w, r2)
            assert order.index("w") < order.index("r2")

        run(scenario())


class TestMisuse:
    def test_unbalanced_releases_raise(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            with pytest.raises(RuntimeError, match="release_read"):
                await lock.release_read()
            with pytest.raises(RuntimeError, match="release_write"):
                await lock.release_write()

        run(scenario())

    def test_exception_inside_context_releases(self):
        async def scenario():
            lock = AsyncReadWriteLock()
            with pytest.raises(ValueError):
                async with lock.read_locked():
                    raise ValueError("boom")
            with pytest.raises(ValueError):
                async with lock.write_locked():
                    raise ValueError("boom")
            # both fully released: a writer can acquire immediately
            async with lock.write_locked():
                assert lock.writer_active

        run(scenario())
