"""Tests for partition merging and offline reorganization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency
from repro.core.partitioner import CinderellaPartitioner
from repro.maintenance.merger import merge_small_partitions
from repro.maintenance.reorganizer import reorganize
from repro.table.partitioned import CinderellaTable


def fragmented_partitioner(weight: float = 0.4) -> CinderellaPartitioner:
    """Two schema families, then heavy deletes leave small fragments."""
    p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=weight))
    for eid in range(60):
        p.insert(eid, 0b0011 if eid % 2 else 0b1100)
    # delete most entities: partitions shrink but never empty out entirely
    for eid in range(60):
        if eid % 5:
            p.delete(eid)
    return p


class TestMergeSmallPartitions:
    def test_merges_compatible_fragments(self):
        p = fragmented_partitioner()
        before = len(p.catalog)
        report = merge_small_partitions(p, min_fill=0.5)
        assert report.merge_count > 0
        assert len(p.catalog) == before - report.merge_count
        assert p.check_invariants() == []

    def test_never_mixes_incompatible_schemas(self):
        p = fragmented_partitioner(weight=0.4)
        merge_small_partitions(p, min_fill=0.5)
        for partition in p.catalog:
            masks = {mask for _eid, mask, _size in partition.members()}
            # the two families must remain separated
            assert not ({0b0011, 0b1100} <= masks)

    def test_respects_capacity(self):
        p = fragmented_partitioner()
        merge_small_partitions(p, min_fill=0.9)
        limit = p.config.max_partition_size
        for partition in p.catalog:
            assert partition.total_size <= limit

    def test_moves_are_reported_in_apply_order(self):
        p = fragmented_partitioner()
        locations = {
            eid: p.catalog.partition_of(eid)
            for partition in p.catalog
            for eid in partition.entity_ids()
        }
        report = merge_small_partitions(p, min_fill=0.5)
        for move in report.moves:
            assert locations[move.eid] == move.from_pid
            locations[move.eid] = move.to_pid
        for eid, pid in locations.items():
            assert p.catalog.partition_of(eid) == pid

    def test_unique_schema_fragment_left_alone(self):
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.3))
        p.insert(1, 0b0011)
        p.insert(2, 0b0011)
        p.insert(3, 0b1111_0000_0000)  # lonely, schema-unique
        report = merge_small_partitions(p, min_fill=1.0)
        # the unique fragment rates negative against the other partition
        assert p.catalog.partition_of(3) not in (
            pid for pid, _target in report.merged
        )
        assert len(p.catalog) == 2

    def test_invalid_min_fill(self):
        with pytest.raises(ValueError):
            merge_small_partitions(CinderellaPartitioner(), min_fill=0.0)

    def test_physical_merge_on_table(self):
        table = CinderellaTable(CinderellaConfig(max_partition_size=6, weight=0.4))
        for eid in range(24):
            table.insert(
                {"a": 1, "b": 2} if eid % 2 else {"c": 3, "d": 4}, entity_id=eid
            )
        for eid in range(24):
            if eid % 4:
                table.delete(eid)
        before = table.partition_count()
        report = table.merge_small_partitions(min_fill=0.9)
        assert report.merge_count > 0
        assert table.partition_count() < before
        assert table.check_consistency() == []
        # data still retrievable
        assert table.get(0).attributes == {"c": 3, "d": 4}


#: small attribute space keeps the search dense enough that merges,
#: guard skips, and capacity refusals all actually occur
_masks = st.integers(min_value=1, max_value=(1 << 6) - 1)


@st.composite
def merge_scenarios(draw):
    """A partitioner history plus a workload and a merge threshold."""
    inserts = draw(st.lists(_masks, min_size=5, max_size=60))
    # delete a subset of the inserted entities (by index), but never all
    delete_flags = draw(
        st.lists(st.booleans(), min_size=len(inserts), max_size=len(inserts))
    )
    if all(delete_flags):
        delete_flags[draw(st.integers(0, len(delete_flags) - 1))] = False
    queries = draw(st.lists(_masks, min_size=1, max_size=6))
    min_fill = draw(st.floats(min_value=0.1, max_value=1.0))
    weight = draw(st.sampled_from([0.2, 0.4, 0.7]))
    return inserts, delete_flags, queries, min_fill, weight


class TestMergeEfficiencyProperty:
    """Satellite property: a guarded merge pass never hurts the workload.

    With ``query_masks`` armed, :func:`merge_small_partitions` only takes
    a merge when no workload query distinguishes source from target —
    every query then reads exactly as much data after the merge as
    before, so the Definition 1 efficiency cannot drop.  (Without the
    guard the property is false: merging a pair that some query tells
    apart strictly increases that query's read cost.)
    """

    @settings(max_examples=60, deadline=None)
    @given(merge_scenarios())
    def test_efficiency_never_drops_and_capacity_holds(self, scenario):
        inserts, delete_flags, queries, min_fill, weight = scenario
        p = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10, weight=weight)
        )
        for eid, mask in enumerate(inserts):
            p.insert(eid, mask)
        for eid, doomed in enumerate(delete_flags):
            if doomed:
                p.delete(eid)
        entities_before = p.catalog.entity_count
        efficiency_before = catalog_efficiency(p.catalog, queries)

        report = merge_small_partitions(
            p, min_fill=min_fill, query_masks=queries
        )

        efficiency_after = catalog_efficiency(p.catalog, queries)
        assert efficiency_after >= efficiency_before - 1e-9, (
            f"merge pass dropped efficiency {efficiency_before} -> "
            f"{efficiency_after} ({report.merge_count} merges)"
        )
        limit = p.config.max_partition_size
        for partition in p.catalog:
            assert partition.total_size <= limit + 1e-9
        assert p.catalog.entity_count == entities_before
        assert p.check_invariants() == []

    @settings(max_examples=30, deadline=None)
    @given(merge_scenarios())
    def test_guarded_merge_preserves_efficiency_exactly(self, scenario):
        """The guard is not just a bound: every taken merge is invisible
        to the workload, so efficiency is *unchanged*, not merely
        non-decreasing."""
        inserts, delete_flags, queries, min_fill, weight = scenario
        p = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10, weight=weight)
        )
        for eid, mask in enumerate(inserts):
            p.insert(eid, mask)
        for eid, doomed in enumerate(delete_flags):
            if doomed:
                p.delete(eid)
        before = catalog_efficiency(p.catalog, queries)
        merge_small_partitions(p, min_fill=min_fill, query_masks=queries)
        after = catalog_efficiency(p.catalog, queries)
        assert after == pytest.approx(before)


class TestReorganize:
    def test_reduces_fragment_count(self):
        p = fragmented_partitioner()
        report = reorganize(p, query_masks=[0b0001, 0b0100])
        assert report.partitions_after <= report.partitions_before
        assert report.partitioner.check_invariants() == []
        assert report.partitioner.catalog.entity_count == p.catalog.entity_count

    def test_efficiency_never_drops_on_fragmented_input(self):
        p = fragmented_partitioner()
        report = reorganize(p, query_masks=[0b0001, 0b0100])
        assert report.efficiency_after >= report.efficiency_before - 1e-9
        assert report.efficiency_gain is not None

    def test_new_config_applies(self):
        p = fragmented_partitioner()
        new_config = CinderellaConfig(max_partition_size=50, weight=0.2)
        report = reorganize(p, config=new_config)
        assert report.partitioner.config is new_config
        assert report.efficiency_gain is None  # no workload given

    def test_stored_order(self):
        p = fragmented_partitioner()
        report = reorganize(p, order="stored")
        assert report.partitioner.catalog.entity_count == p.catalog.entity_count

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            reorganize(fragmented_partitioner(), order="random")

    def test_original_left_untouched(self):
        p = fragmented_partitioner()
        signature = sorted(
            tuple(sorted(part.entity_ids())) for part in p.catalog
        )
        reorganize(p)
        assert signature == sorted(
            tuple(sorted(part.entity_ids())) for part in p.catalog
        )
