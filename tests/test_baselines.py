"""Tests for the baseline partitioners."""

import pytest

from repro.baselines.hash_partitioner import HashPartitioner
from repro.baselines.offline_clustering import (
    OfflineClusteringPartitioner,
    jaccard,
    leader_clusters,
)
from repro.baselines.oracle import OraclePartitioner
from repro.baselines.round_robin import RoundRobinPartitioner
from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency, universal_table_efficiency
from repro.core.partitioner import CinderellaPartitioner


class TestHashPartitioner:
    def test_deterministic_assignment(self):
        a = HashPartitioner(4)
        b = HashPartitioner(4)
        for eid in range(50):
            assert a.insert(eid, 0b1).partition_id == b.insert(eid, 0b1).partition_id

    def test_respects_partition_budget(self):
        p = HashPartitioner(4)
        for eid in range(100):
            p.insert(eid, 0b1)
        assert len(p.catalog) <= 4

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        for eid in range(400):
            p.insert(eid, 0b1)
        sizes = [len(part) for part in p.catalog]
        assert max(sizes) < 2 * min(sizes)

    def test_delete_drops_empty(self):
        p = HashPartitioner(2)
        p.insert(1, 0b1)
        outcome = p.delete(1)
        assert outcome.dropped_partitions
        assert len(p.catalog) == 0
        # slot is reusable afterwards
        p.insert(1, 0b1)
        assert p.catalog.entity_count == 1

    def test_update_stays_in_place(self):
        p = HashPartitioner(2)
        pid = p.insert(1, 0b1).partition_id
        outcome = p.update(1, 0b111)
        assert outcome.in_place and outcome.partition_id == pid

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRoundRobinPartitioner:
    def test_fills_then_opens_next(self):
        p = RoundRobinPartitioner(3)
        pids = [p.insert(eid, 0b1).partition_id for eid in range(7)]
        assert pids[0] == pids[1] == pids[2]
        assert pids[3] == pids[4] == pids[5] != pids[0]
        assert pids[6] not in (pids[0], pids[3])

    def test_capacity_never_exceeded(self):
        p = RoundRobinPartitioner(5)
        for eid in range(23):
            p.insert(eid, 0b1)
        assert all(len(part) <= 5 for part in p.catalog)

    def test_delete_and_update(self):
        p = RoundRobinPartitioner(2)
        p.insert(1, 0b1)
        p.update(1, 0b11)
        assert p.catalog.get(p.catalog.partition_of(1)).mask == 0b11
        p.delete(1)
        assert len(p.catalog) == 0


class TestJaccardClustering:
    def test_jaccard_values(self):
        assert jaccard(0b11, 0b11) == 1.0
        assert jaccard(0b11, 0b00) == 0.0
        assert jaccard(0b11, 0b01) == 0.5
        assert jaccard(0, 0) == 1.0

    def test_leader_clusters_group_similar(self):
        entities = [(1, 0b0011), (2, 0b0011), (3, 0b1100), (4, 0b0111)]
        clusters = leader_clusters(entities, threshold=0.5)
        families = [sorted(eid for eid, _m in cluster) for cluster in clusters]
        assert [1, 2, 4] in families
        assert [3] in families

    def test_threshold_one_requires_identity(self):
        clusters = leader_clusters([(1, 0b01), (2, 0b11)], threshold=1.0)
        assert len(clusters) == 2

    def test_threshold_zero_lumps_everything(self):
        clusters = leader_clusters([(1, 0b01), (2, 0b10)], threshold=0.0)
        assert len(clusters) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            leader_clusters([], threshold=1.5)


class TestOfflinePartitioners:
    ENTITIES = [(eid, 0b0011 if eid % 2 else 0b1100) for eid in range(20)]

    def test_offline_clustering_packs_to_capacity(self):
        p = OfflineClusteringPartitioner(max_partition_size=4, threshold=0.5)
        p.fit(self.ENTITIES)
        assert all(len(part) <= 4 for part in p.catalog)
        assert p.catalog.entity_count == 20
        assert p.cluster_count == 2

    def test_oracle_partitions_are_signature_pure(self):
        p = OraclePartitioner(max_partition_size=4)
        p.fit(self.ENTITIES)
        for part in p.catalog:
            signatures = {mask for _eid, mask, _size in part.members()}
            assert len(signatures) == 1

    def test_fit_twice_rejected(self):
        p = OraclePartitioner(max_partition_size=4)
        p.fit(self.ENTITIES)
        with pytest.raises(RuntimeError):
            p.fit(self.ENTITIES)


class TestEfficiencyOrdering:
    """Oracle ≥ Cinderella ≥ universal table on structured data."""

    def test_ordering_on_two_family_data(self):
        entities = [(eid, 0b00001111 if eid % 2 else 0b11110000) for eid in range(60)]
        queries = [0b1, 0b10000000]

        cinderella = CinderellaPartitioner(
            CinderellaConfig(max_partition_size=10, weight=0.3)
        )
        for eid, mask in entities:
            cinderella.insert(eid, mask)
        oracle = OraclePartitioner(10)
        oracle.fit(entities)
        hashp = HashPartitioner(len(cinderella.catalog))
        for eid, mask in entities:
            hashp.insert(eid, mask)

        sized = [(mask, 1.0) for _eid, mask in entities]
        eff_universal = universal_table_efficiency(sized, queries)
        eff_hash = catalog_efficiency(hashp.catalog, queries)
        eff_cin = catalog_efficiency(cinderella.catalog, queries)
        eff_oracle = catalog_efficiency(oracle.catalog, queries)

        assert eff_oracle == 1.0
        assert eff_cin == 1.0  # clean two-family data: Cinderella is exact
        assert eff_cin > eff_hash
        assert eff_hash == pytest.approx(eff_universal, abs=0.05)
