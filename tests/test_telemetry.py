"""Tests for the telemetry collector and the ASCII chart renderer."""

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.metrics.telemetry import TelemetryCollector
from repro.reporting.chart import render_line_chart


class TestTelemetryCollector:
    def test_samples_at_interval(self):
        collector = TelemetryCollector(interval=5)
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=4, weight=0.4))
        for eid in range(12):
            p.insert(eid, 0b11)
            collector.observe(p)
        assert [s.operations for s in collector.samples] == [5, 10]
        assert collector.samples[-1].entity_count == 10

    def test_sample_now_forces_a_point(self):
        collector = TelemetryCollector(interval=100)
        p = CinderellaPartitioner()
        p.insert(1, 0b1)
        sample = collector.sample_now(p)
        assert sample.partition_count == 1
        assert sample.mean_fill == 1.0
        assert sample.efficiency is None  # no workload configured

    def test_efficiency_tracked_with_workload(self):
        collector = TelemetryCollector(interval=1, query_masks=[0b1])
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4))
        p.insert(1, 0b1)
        collector.observe(p)
        assert collector.samples[0].efficiency == 1.0

    def test_series_extraction(self):
        collector = TelemetryCollector(interval=2)
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=4, weight=0.4))
        for eid in range(6):
            p.insert(eid, 0b11)
            collector.observe(p)
        series = collector.series("partition_count")
        assert [x for x, _y in series] == [2.0, 4.0, 6.0]
        assert collector.series("efficiency") == []  # all None: dropped

    def test_split_count_propagates(self):
        collector = TelemetryCollector(interval=1)
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=2, weight=0.5))
        for eid in range(6):
            p.insert(eid, 0b11)
            collector.observe(p)
        assert collector.samples[-1].split_count == p.split_count


class TestRenderLineChart:
    def test_renders_markers_and_legend(self):
        text = render_line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=6,
            title="demo",
        )
        assert text.startswith("demo")
        assert "* a" in text and "o b" in text
        assert "└" in text

    def test_empty_series(self):
        assert render_line_chart({}) == "(no data)"
        assert render_line_chart({"a": []}) == "(no data)"

    def test_flat_series_does_not_crash(self):
        text = render_line_chart({"flat": [(0, 5), (10, 5)]}, width=10, height=4)
        assert "*" in text

    def test_axis_labels_show_extent(self):
        text = render_line_chart({"a": [(2, 10), (8, 42)]}, width=16, height=5)
        assert "42" in text and "10" in text
        assert "2" in text and "8" in text
