"""Tests for the B/w parameter advisor."""

import pytest

from repro.tuning.advisor import advise
from repro.workloads.dbpedia import generate_dbpedia_persons


@pytest.fixture(scope="module")
def masks():
    dataset = generate_dbpedia_persons(1500, seed=21)
    dictionary = dataset.dictionary()
    return [entity.synopsis_mask(dictionary) for entity in dataset.entities]


class TestAdvise:
    def test_recommends_a_valid_config(self, masks):
        report = advise(masks)
        config = report.recommended
        assert 0.0 <= config.weight <= 1.0
        assert config.max_partition_size >= 2
        assert report.sample_size == len(masks)
        assert report.rationale

    def test_trials_cover_the_grid(self, masks):
        report = advise(masks, weights=(0.2, 0.4), size_fractions=(0.05, 0.25))
        assert len(report.trials) == 4
        assert {t.weight for t in report.trials} == {0.2, 0.4}

    def test_trials_sorted_by_score(self, masks):
        report = advise(masks)
        scores = [t.score for t in report.trials]
        assert scores == sorted(scores, reverse=True)
        assert report.best_trial() == report.trials[0]

    def test_recommended_weight_in_paper_band(self, masks):
        """On DBpedia-like data the paper finds 0.2-0.5 reasonable."""
        report = advise(masks)
        assert 0.1 <= report.recommended.weight <= 0.5

    def test_respects_sample_limit(self, masks):
        report = advise(masks, sample_limit=200)
        assert report.sample_size == 200

    def test_workload_aware_advice(self, masks):
        # a workload of two rare probes vs the attribute-agnostic default
        report = advise(masks, query_masks=[1 << 40, 1 << 60])
        assert report.trials  # runs without error and scores something

    def test_scales_recommendation_to_full_data_size(self, masks):
        report = advise(masks, sample_limit=500, size_fractions=(0.1,))
        # B recommended for the FULL data set, not the sample
        assert report.recommended.max_partition_size == pytest.approx(
            0.1 * len(masks), rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            advise([])
        with pytest.raises(ValueError):
            advise([1], weights=())
