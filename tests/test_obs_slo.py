"""SLO battery: objectives, burn-rate windows, and alert pairing.

Everything runs on an injected fake clock — hours of scrape history
replay in milliseconds.  The scenarios mirror the multi-window
multi-burn-rate discipline the module implements: a hard latency
regression must page (fast pair), a slow leak must open a ticket
without paging (slow pair), and recovery must clear the page as soon
as the short window drains.
"""

import pytest

from repro import obs
from repro.obs.federation import merge_documents
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    AVAILABILITY,
    DEFAULT_ALERTS,
    DEFAULT_OBJECTIVES,
    LATENCY,
    BurnAlert,
    SloMonitor,
    SloObjective,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now_s = start

    def now(self) -> float:
        return self.now_s

    def advance(self, seconds: float) -> None:
        self.now_s += seconds


@pytest.fixture(autouse=True)
def _always_disable():
    yield
    obs.disable()


class TestObjective:
    def test_kind_and_objective_validation(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloObjective(name="x", verb="query", objective=0.99, kind="weird")
        with pytest.raises(ValueError, match="objective must be"):
            SloObjective(name="x", verb="query", objective=1.0)
        with pytest.raises(ValueError, match="objective must be"):
            SloObjective(name="x", verb="query", objective=0.0)

    def test_budget_is_complement(self):
        objective = SloObjective(name="x", verb="query", objective=0.999)
        assert objective.budget == pytest.approx(0.001)

    def _view(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_server_request_seconds", labelnames=("op",),
            buckets=(0.025, 0.1),
        )
        for value in (0.01, 0.02, 0.09, 0.09):
            hist.labels(op="query").observe(value)
        counter = registry.counter(
            "repro_server_requests_total", labelnames=("op", "status"),
        )
        counter.labels(op="insert", status="applied").inc(90)
        counter.labels(op="insert", status="degraded").inc(5)
        counter.labels(op="insert", status="overloaded").inc(5)
        return merge_documents([{
            "name": "n0", "tier": "node", "collected_at": 0.0,
            "enabled": True, "registry": registry.to_json_obj(),
        }], now=0.0)

    def test_latency_counts_read_the_threshold_bucket(self):
        objective = SloObjective(
            name="q", verb="query", objective=0.99,
            kind=LATENCY, threshold_s=0.025,
        )
        assert objective.counts(self._view()) == (2.0, 4.0)

    def test_availability_counts_good_statuses(self):
        """applied + degraded count as answered; overloaded does not."""
        objective = SloObjective(
            name="w", verb="insert", objective=0.999,
            kind=AVAILABILITY, metric="repro_server_requests_total",
        )
        assert objective.counts(self._view()) == (95.0, 100.0)

    def test_default_objectives_cover_reads_and_writes(self):
        kinds = {(o.verb, o.kind) for o in DEFAULT_OBJECTIVES}
        assert ("query", LATENCY) in kinds
        assert ("insert", AVAILABILITY) in kinds

    def test_default_alert_pairs_are_the_sre_workbook(self):
        by_severity = {a.severity: a for a in DEFAULT_ALERTS}
        page = by_severity["page"]
        assert (page.threshold, page.long_window_s, page.short_window_s) == (
            14.4, 3600.0, 300.0
        )
        ticket = by_severity["ticket"]
        assert (
            ticket.threshold, ticket.long_window_s, ticket.short_window_s
        ) == (6.0, 21600.0, 3600.0)


def _feed(
    monitor: SloMonitor,
    clock: FakeClock,
    minutes: int,
    rps: float,
    error_rate: float,
    state: dict,
) -> None:
    """Advance scrape-by-scrape (one per minute) at a given error rate."""
    for _ in range(minutes):
        clock.advance(60.0)
        state["total"] += rps * 60.0
        state["good"] += rps * 60.0 * (1.0 - error_rate)
        monitor.observe_counts("obj", state["good"], state["total"])


def _monitor(clock: FakeClock) -> SloMonitor:
    return SloMonitor(
        objectives=[SloObjective(name="obj", verb="query", objective=0.999)],
        clock=clock.now,
    )


class TestBurnRates:
    def test_no_alerts_before_history_exists(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        statuses = monitor.evaluate()
        assert statuses[0].compliance is None
        assert all(rate is None for rate in statuses[0].burn_rates.values())
        assert not statuses[0].firing

    def test_healthy_traffic_never_alerts(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 7 * 60, rps=10, error_rate=0.0005, state=state)
        (status,) = monitor.evaluate()
        # burning half the budget: burn rate 0.5 in every window
        assert status.burn_rates[300.0] == pytest.approx(0.5, rel=0.05)
        assert status.burn_rates[21600.0] == pytest.approx(0.5, rel=0.05)
        assert not status.firing
        assert status.compliance == pytest.approx(0.9995)

    def test_hard_regression_pages_on_the_fast_pair(self):
        """10% errors against a 0.1% budget: burn 100 in the short
        window; the 1h window crosses 14.4x after ~10 bad minutes."""
        clock = FakeClock()
        monitor = _monitor(clock)
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 7 * 60, rps=10, error_rate=0.0, state=state)
        _feed(monitor, clock, 12, rps=10, error_rate=0.10, state=state)
        (status,) = monitor.evaluate()
        severities = {a["severity"] for a in status.alerts}
        assert "page" in severities
        assert status.burn_rates[300.0] == pytest.approx(100.0, rel=0.05)
        # the slow pair must NOT ticket yet: 12 bad minutes barely move
        # the 6h window (burn ~3.3, under the 6x threshold)
        assert "ticket" not in severities

    def test_slow_leak_tickets_without_paging(self):
        """1% errors (burn 10): above the ticket threshold of 6, below
        the page threshold of 14.4 — sustained for 7h so both slow
        windows see it."""
        clock = FakeClock()
        monitor = _monitor(clock)
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 7 * 60, rps=10, error_rate=0.01, state=state)
        (status,) = monitor.evaluate()
        severities = {a["severity"] for a in status.alerts}
        assert severities == {"ticket"}
        assert status.burn_rates[3600.0] == pytest.approx(10.0, rel=0.05)

    def test_recovery_clears_the_page_when_the_short_window_drains(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 60, rps=10, error_rate=0.0, state=state)
        _feed(monitor, clock, 30, rps=10, error_rate=0.10, state=state)
        (burning,) = monitor.evaluate()
        assert {a["severity"] for a in burning.alerts} >= {"page"}
        # fix ships: 10 clean minutes drain the 5m window below 14.4x
        # even though the 1h window still burns hot
        _feed(monitor, clock, 10, rps=10, error_rate=0.0, state=state)
        (recovered,) = monitor.evaluate()
        assert recovered.burn_rates[3600.0] > 14.4
        assert recovered.burn_rates[300.0] < 14.4
        assert "page" not in {a["severity"] for a in recovered.alerts}

    def test_windows_with_no_traffic_stay_silent(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 10, rps=10, error_rate=0.0, state=state)
        # the cluster goes idle: counters stop moving for an hour
        for _ in range(60):
            clock.advance(60.0)
            monitor.observe_counts("obj", state["good"], state["total"])
        (status,) = monitor.evaluate()
        assert status.burn_rates[300.0] is None
        assert not status.firing

    def test_unknown_objective_name_raises(self):
        monitor = _monitor(FakeClock())
        with pytest.raises(KeyError, match="nope"):
            monitor.observe_counts("nope", 1.0, 1.0)

    def test_status_as_dict_is_json_ready(self):
        import json

        clock = FakeClock()
        monitor = _monitor(clock)
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 120, rps=10, error_rate=0.10, state=state)
        (status,) = monitor.evaluate()
        document = json.loads(json.dumps(status.as_dict()))
        assert document["name"] == "obj"
        assert document["burn_rates"]["300"] == pytest.approx(100.0, rel=0.05)
        assert document["alerts"][0]["severity"] in ("page", "ticket")

    def test_custom_alert_rules_are_respected(self):
        clock = FakeClock()
        monitor = SloMonitor(
            objectives=[
                SloObjective(name="obj", verb="query", objective=0.99)
            ],
            alerts=[BurnAlert(
                severity="nag", threshold=2.0,
                long_window_s=600.0, short_window_s=300.0,
            )],
            clock=clock.now,
        )
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 20, rps=10, error_rate=0.05, state=state)
        (status,) = monitor.evaluate()
        assert {a["severity"] for a in status.alerts} == {"nag"}
        assert set(status.burn_rates) == {300.0, 600.0}

    def test_ring_is_bounded(self):
        clock = FakeClock()
        monitor = SloMonitor(
            objectives=[
                SloObjective(name="obj", verb="query", objective=0.999)
            ],
            clock=clock.now,
            max_samples=16,
        )
        state = {"good": 0.0, "total": 0.0}
        _feed(monitor, clock, 100, rps=10, error_rate=0.0, state=state)
        ring = monitor._rings["obj"]
        assert len(ring.times) == 16


class TestMonitorOverFederation:
    def test_observe_reads_counts_through_the_view(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_server_requests_total", labelnames=("op", "status"),
        )
        counter.labels(op="query", status="ok").inc(99)
        counter.labels(op="query", status="error").inc(1)
        view = merge_documents([{
            "name": "n0", "tier": "node", "collected_at": 0.0,
            "enabled": True, "registry": registry.to_json_obj(),
        }], now=0.0)
        clock = FakeClock()
        monitor = SloMonitor(
            objectives=[SloObjective(
                name="avail", verb="query", objective=0.999,
                kind=AVAILABILITY, metric="repro_server_requests_total",
            )],
            clock=clock.now,
        )
        monitor.observe(view)
        clock.advance(60.0)
        monitor.observe(view)
        (status,) = monitor.evaluate()
        assert status.good == 99.0
        assert status.total == 100.0
        assert status.compliance == pytest.approx(0.99)
