"""Snapshot-isolation battery: the proof behind the MVCC read path.

Five parts, each pinning one leg of the concurrency model that replaced
the single-writer read barrier:

1. **Differential oracle** — snapshots pinned at commit points keep
   serving rows bit-identical to the naive full-scan oracle captured at
   the same instant, no matter how much the live table mutates, merges,
   or reorganizes afterwards.
2. **Properties** (Hypothesis, derandomized by ``conftest``) — no
   snapshot ever exposes a torn batch, and publication is monotonic in
   both snapshot id and version clock.
3. **Retention GC** — the manager never collects a pinned snapshot nor
   the latest one, and reclaims promptly once pins drop.
4. **Concurrent wire soak** — sixteen real connections drive a mixed
   workload through the server; adaptive admission must keep the shed
   rate under two percent (the seed fixed-window server shed ~43% at
   this concurrency) while reads stay lock-free.
5. **Version-clock edges** — ``adopt_version_clock`` across an offline
   reorganization keeps publication monotonic, and a pinned snapshot
   outlives a merge/split cascade without a bit changing.
"""

import random
import threading

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.query.query import AttributeQuery
from repro.query.snapshot import SnapshotManager
from repro.server import CinderellaServer, ServerConfig, ServerThread
from repro.server.client import ServerClient
from repro.table.partitioned import CinderellaTable

from tests.conftest import WORKLOAD_SEED

#: the probe queries every differential check replays
PROBES = (
    AttributeQuery(("attr0",)),
    AttributeQuery(("attr1", "attr2"), mode="any"),
    AttributeQuery(("common", "attr3"), mode="all"),
    AttributeQuery(("common", "renamed"), mode="any"),
)


def build_table(max_partition_size: float = 8.0) -> CinderellaTable:
    return CinderellaTable(
        CinderellaConfig(
            max_partition_size=max_partition_size,
            weight=0.3,
            use_synopsis_index=True,
        )
    )


def freeze(result) -> list[dict]:
    """Deep-copy an ExecutionResult's rows so later mutation can't leak in."""
    return [dict(row) for row in result.rows]


def snapshot_rows(snapshot, query: AttributeQuery) -> list[dict]:
    return [dict(row) for row in snapshot.execute(query).rows]


# ----------------------------------------------------------------------
# 1. differential oracle at commit points
# ----------------------------------------------------------------------
class TestDifferentialOracle:
    def test_pinned_snapshots_match_the_oracle_at_their_commit_points(self):
        """Each pinned snapshot == the naive oracle frozen at its publish."""
        rng = random.Random(WORKLOAD_SEED)
        table = build_table()
        manager = SnapshotManager(retain=4)
        live: list[int] = []
        next_eid = 0
        history = []  # (snapshot, [oracle rows per probe])

        for _round in range(10):
            for _ in range(15):
                choice = rng.random()
                if choice < 0.6 or not live:
                    table.insert(
                        {
                            "common": next_eid % 3,
                            f"attr{rng.randrange(4)}": next_eid,
                        },
                        entity_id=next_eid,
                    )
                    live.append(next_eid)
                    next_eid += 1
                elif choice < 0.8:
                    eid = live[rng.randrange(len(live))]
                    table.update(
                        eid, {"renamed": eid, f"attr{eid % 4}": eid}
                    )
                else:
                    table.delete(live.pop(rng.randrange(len(live))))
            snapshot = manager.pin(manager.publish(table))
            oracle = [freeze(table.execute_naive(q)) for q in PROBES]
            assert snapshot.version_clock == table.catalog.version_clock
            history.append((snapshot, oracle))

        # post-history churn: merge, then keep writing past every snapshot
        table.merge_small_partitions(min_fill=0.9)
        for extra in range(50):
            table.insert({"attr0": extra, "late": extra}, entity_id=next_eid)
            next_eid += 1
        manager.publish(table)

        for snapshot, oracle in history:
            for query, expected in zip(PROBES, oracle):
                assert snapshot_rows(snapshot, query) == expected
                # repeat read: the response-cache path must agree too
                fragment, row_count, _ = snapshot.serve_query(query)
                again, again_count, from_cache = snapshot.serve_query(query)
                assert row_count == again_count == len(expected)
                assert from_cache
                # identical rows; only the stats block differs (the
                # cached serve reports hits where the first scanned)
                assert (
                    again.split(b',"stats"')[0]
                    == fragment.split(b',"stats"')[0]
                )

    def test_two_interleaved_snapshots_disagree_exactly_by_the_batch(self):
        """The rows a later snapshot adds are exactly the committed delta."""
        table = build_table()
        manager = SnapshotManager(retain=4)
        for i in range(10):
            table.insert({"attr0": i}, entity_id=i)
        before = manager.pin(manager.publish(table))
        for i in range(10, 20):
            table.insert({"attr0": i}, entity_id=i)
        after = manager.pin(manager.publish(table))

        query = PROBES[0]
        seen_before = {eid for eid, _ in before.entities()}
        seen_after = {eid for eid, _ in after.entities()}
        assert seen_before == set(range(10))
        assert seen_after - seen_before == set(range(10, 20))
        assert len(snapshot_rows(before, query)) == 10
        assert len(snapshot_rows(after, query)) == 20


# ----------------------------------------------------------------------
# 2. properties: no torn reads, monotonic publication
# ----------------------------------------------------------------------
def _apply(table, model, next_eid, kind, attr, pick):
    """One model-checked mutation; returns the next free eid."""
    if kind == "insert" or not model:
        eid = next_eid
        attributes = {"common": eid % 2, f"attr{attr % 4}": eid}
        table.insert(attributes, entity_id=eid)
        model[eid] = dict(attributes)
        return next_eid + 1
    eid = sorted(model)[pick % len(model)]
    if kind == "update":
        attributes = {"renamed": pick, f"attr{attr % 4}": pick}
        table.update(eid, attributes)
        model[eid] = dict(attributes)
    else:
        table.delete(eid)
        del model[eid]
    return next_eid


OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "update", "delete"]),
        st.integers(0, 3),
        st.integers(0, 1_000),
    ),
    min_size=1,
    max_size=60,
)


class TestIsolationProperties:
    @given(ops=OPS, batch=st.integers(2, 9))
    @settings(max_examples=40)
    def test_no_snapshot_ever_exposes_a_torn_batch(self, ops, batch):
        """Snapshots published at batch boundaries see whole batches only."""
        table = build_table()
        manager = SnapshotManager(retain=3)
        model: dict[int, dict] = {}
        next_eid = 0
        published = []  # (pinned snapshot, model copy at its commit point)

        for index, (kind, attr, pick) in enumerate(ops):
            next_eid = _apply(table, model, next_eid, kind, attr, pick)
            if (index + 1) % batch == 0:
                snapshot = manager.pin(manager.publish(table))
                published.append(
                    (snapshot, {k: dict(v) for k, v in model.items()})
                )
        snapshot = manager.pin(manager.publish(table))
        published.append((snapshot, {k: dict(v) for k, v in model.items()}))

        for snapshot, expected in published:
            observed = {eid: dict(a) for eid, a in snapshot.entities()}
            assert observed == expected  # exactly its commit point, never torn

    @given(ops=OPS)
    @settings(max_examples=25)
    def test_publication_is_monotonic_in_id_and_version_clock(self, ops):
        table = build_table()
        manager = SnapshotManager(retain=3)
        model: dict[int, dict] = {}
        next_eid = 0
        snapshots = [manager.pin(manager.publish(table))]
        for kind, attr, pick in ops:
            next_eid = _apply(table, model, next_eid, kind, attr, pick)
            snapshots.append(manager.pin(manager.publish(table)))
        ids = [s.snapshot_id for s in snapshots]
        clocks = [s.version_clock for s in snapshots]
        assert ids == sorted(set(ids))  # strictly increasing
        assert clocks == sorted(clocks)  # never goes backwards


# ----------------------------------------------------------------------
# 3. retention GC never frees pinned or latest
# ----------------------------------------------------------------------
class TestRetentionGC:
    def test_gc_never_frees_a_pinned_snapshot(self):
        table = build_table()
        manager = SnapshotManager(retain=2)
        for i in range(5):
            table.insert({"attr0": i}, entity_id=i)
        pinned = manager.pin(manager.publish(table))
        frozen = snapshot_rows(pinned, PROBES[0])

        for i in range(5, 25):  # push far past the retention bound
            table.insert({"attr0": i}, entity_id=i)
            manager.publish(table)

        retained = manager.retained_ids()
        assert pinned.snapshot_id in retained
        assert manager.latest.snapshot_id in retained
        assert snapshot_rows(pinned, PROBES[0]) == frozen
        assert manager.retired > 0  # unpinned middle generations did go

        manager.release(pinned)
        table.insert({"attr0": 99}, entity_id=99)
        manager.publish(table)  # next publish reclaims the released one
        assert pinned.snapshot_id not in manager.retained_ids()

    def test_latest_is_never_collected_even_at_retain_one(self):
        table = build_table()
        manager = SnapshotManager(retain=1)
        for i in range(6):
            table.insert({"attr0": i}, entity_id=i)
            manager.publish(table)
        assert manager.retained_count() == 1
        assert manager.retained_ids() == [manager.latest.snapshot_id]
        assert manager.latest.entity_count == 6

    def test_double_pin_needs_double_release(self):
        table = build_table()
        manager = SnapshotManager(retain=1)
        table.insert({"attr0": 1}, entity_id=1)
        snapshot = manager.pin(manager.pin(manager.publish(table)))
        for i in range(2, 6):
            table.insert({"attr0": i}, entity_id=i)
            manager.publish(table)
        manager.release(snapshot)
        table.insert({"attr0": 6}, entity_id=6)
        manager.publish(table)
        assert snapshot.snapshot_id in manager.retained_ids()  # 1 pin left
        manager.release(snapshot)
        table.insert({"attr0": 7}, entity_id=7)
        manager.publish(table)
        assert snapshot.snapshot_id not in manager.retained_ids()


# ----------------------------------------------------------------------
# 4. sixteen concurrent connections: the shed-rate gate
# ----------------------------------------------------------------------
class _WireWorker(threading.Thread):
    """70/30 insert/query mix with NO client-side retry — every shed
    the server issues is counted against the gate."""

    def __init__(self, index: int, address, ops: int):
        super().__init__(name=f"isolation-client-{index}")
        self.index = index
        self.address = address
        self.ops = ops
        self.applied = 0
        self.shed = 0
        self.rows_seen = 0
        self.failures: list[str] = []

    def run(self) -> None:
        rng = random.Random(WORKLOAD_SEED + self.index)
        base = self.index * 1_000_000
        try:
            with ServerClient(*self.address, check=False) as client:
                for step in range(self.ops):
                    if rng.random() < 0.7:
                        response = client.insert(
                            {
                                "common": self.index,
                                f"attr{rng.randrange(4)}": step,
                            },
                            eid=base + step,
                        )
                        if response.status == "applied":
                            self.applied += 1
                        elif response.status == "overloaded":
                            self.shed += 1
                        else:
                            self.failures.append(
                                f"insert -> {response.status}: {response.error}"
                            )
                    else:
                        response = client.query_response(
                            [f"attr{rng.randrange(4)}", "common"], mode="any"
                        )
                        if response.ok:
                            self.rows_seen += response.get("row_count", 0)
                        else:
                            self.failures.append(
                                f"query -> {response.status}: {response.error}"
                            )
        except Exception as err:  # surfaced by the main thread
            self.failures.append(f"{type(err).__name__}: {err}")


class TestConcurrentWireIsolation:
    def test_sixteen_connections_shed_below_two_percent(self):
        table = CinderellaTable(
            CinderellaConfig(
                max_partition_size=12.0, weight=0.3, use_synopsis_index=True
            ),
            result_cache=QueryResultCache(thread_safe=True),
        )
        server = CinderellaServer(
            table=table,
            config=ServerConfig(
                max_pending=512,
                batch_max=128,
                batch_linger_s=0.001,
                admission_target_latency_s=0.25,
                maintenance_interval_s=0.05,
                merge_min_fill=0.6,
            ),
        )
        with ServerThread(server=server) as harness:
            pool = [
                _WireWorker(index, harness.address, ops=120)
                for index in range(16)
            ]
            for worker in pool:
                worker.start()
            for worker in pool:
                worker.join(timeout=180)
                assert not worker.is_alive(), f"{worker.name} hung"
            with ServerClient(*harness.address) as client:
                stats = client.stats()

        failures = [f for worker in pool for f in worker.failures]
        assert failures == [], failures[:10]

        applied = sum(worker.applied for worker in pool)
        shed = sum(worker.shed for worker in pool)
        attempted = applied + shed
        assert attempted > 0
        shed_rate = shed / attempted
        assert shed_rate < 0.02, (
            f"shed {shed}/{attempted} = {shed_rate:.1%} at c=16 "
            f"(window ended at {stats['admission']['window']})"
        )

        # the reads really were lock-free snapshot reads
        assert stats["counters"]["snapshot_reads"] > 0
        assert stats["lock"]["read_acquisitions"] == 0
        assert stats["snapshots"]["published"] > 1

        # convergence: the final table holds exactly the acked inserts
        assert table.check_consistency() == []
        assert len(table.execute_naive(
            AttributeQuery(("common",))
        ).rows) == applied


# ----------------------------------------------------------------------
# 5. version-clock edges: reorganization and merge/split cascades
# ----------------------------------------------------------------------
class TestVersionClockEdges:
    def test_pinned_snapshot_survives_reorganization_clock_adoption(self):
        table = build_table()
        for i in range(40):
            table.insert(
                {"common": i % 2, f"attr{i % 4}": i}, entity_id=i
            )
        manager = SnapshotManager(retain=4)
        pinned = manager.pin(manager.publish(table))
        frozen_entities = {eid: dict(a) for eid, a in pinned.entities()}
        frozen_rows = [snapshot_rows(pinned, q) for q in PROBES]

        clock_before = table.catalog.version_clock
        table.reorganize()
        # adopt_version_clock: the rebuilt catalog's clock strictly
        # succeeds the replaced one — publication stays monotonic
        assert table.catalog.version_clock > clock_before
        after = manager.publish(table)
        assert after.snapshot_id > pinned.snapshot_id
        assert after.version_clock > pinned.version_clock

        # the pinned snapshot is bit-identical to its commit point
        assert {eid: dict(a) for eid, a in pinned.entities()} == frozen_entities
        assert [snapshot_rows(pinned, q) for q in PROBES] == frozen_rows
        # and the post-reorganization snapshot agrees with the oracle
        for query in PROBES:
            assert snapshot_rows(after, query) == freeze(
                table.execute_naive(query)
            )

    def test_pinned_snapshot_outlives_a_merge_and_split_cascade(self):
        table = build_table(max_partition_size=6.0)
        for i in range(60):  # same few masks: partitions fill and split
            table.insert(
                {"common": 1, f"attr{i % 3}": i}, entity_id=i
            )
        splits_before = table.partitioner.split_count
        assert splits_before > 0

        manager = SnapshotManager(retain=2)
        pinned = manager.pin(manager.publish(table))
        frozen_entities = {eid: dict(a) for eid, a in pinned.entities()}

        # hollow out, merge, then grow back through fresh splits
        for i in range(0, 60, 2):
            table.delete(i)
        table.merge_small_partitions(min_fill=0.9)
        for i in range(100, 160):
            table.insert({"common": 1, f"attr{i % 3}": i}, entity_id=i)
        assert table.partitioner.split_count > splits_before
        for _ in range(4):  # several publishes: real GC pressure
            manager.publish(table)

        assert pinned.snapshot_id in manager.retained_ids()
        assert {eid: dict(a) for eid, a in pinned.entities()} == frozen_entities
        latest = manager.latest
        for query in PROBES:
            assert snapshot_rows(latest, query) == freeze(
                table.execute_naive(query)
            )

        manager.release(pinned)
        table.insert({"common": 1, "tail": 1}, entity_id=999)
        manager.publish(table)
        assert pinned.snapshot_id not in manager.retained_ids()
