"""Chaos harness: random workloads under random failure schedules.

The acceptance bar of the fault-tolerance subsystem: under a seeded
schedule of node crashes and recoveries during a mixed insert/delete/
update workload with replication factor 2,

* no query ever silently loses rows — every result is either complete
  or explicitly marked ``degraded`` with the unreachable partition set
  accounting for exactly the missing rows;
* every repair pass restores the reachable replication target;
* placement and catalog invariants hold after every operation window;
* a coordinator kill + replay from snapshot + WAL reproduces the exact
  catalog (same partition ids, members, starters) and placement as the
  uncrashed coordinator.
"""

import random

import pytest

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.failures import FailureSchedule
from repro.distributed.replication import replication_report
from repro.distributed.store import DistributedUniversalStore
from repro.storage.wal import WriteAheadLog

NODES = 6
REPLICATION_FACTOR = 2
OPERATIONS = 1_000
SCHEDULE_SEED = 20_14
WORKLOAD_SEED = 777


def build_schedule():
    schedule = FailureSchedule.random(
        NODES,
        OPERATIONS,
        seed=SCHEDULE_SEED,
        crash_rate=0.012,
        mean_downtime=60,
        degrade_rate=0.004,
        drop_every=3,
    )
    assert schedule.crash_count >= 5, "the seed must produce a real chaos run"
    return schedule


def expected_returned(store, query_mask, excluding=()):
    """Size-weighted result the catalog says the query should return."""
    total = 0.0
    for partition in store.catalog:
        if partition.mask & query_mask == 0 or partition.pid in excluding:
            continue
        total += sum(
            size for _eid, mask, size in partition.members() if mask & query_mask
        )
    return total


def check_no_silent_loss(store, query_mask):
    """Results are complete, or explicitly degraded by exactly the
    unreachable partitions — never silently short."""
    stats = store.route_query(query_mask)
    if stats.degraded:
        assert stats.unreachable_partitions, "degraded must name partitions"
        reachable = expected_returned(
            store, query_mask, excluding=set(stats.unreachable_partitions)
        )
        assert stats.entities_returned == pytest.approx(reachable)
    else:
        assert stats.unreachable_partitions == ()
        assert stats.entities_returned == pytest.approx(
            expected_returned(store, query_mask)
        )
    return stats


def drive_chaos(store, schedule, check_queries=True, repair_interval=25):
    """Run the mixed workload under *schedule*; returns ops applied."""
    rng = random.Random(WORKLOAD_SEED)
    live: set[int] = set()
    next_eid = 0
    for op_index in range(OPERATIONS):
        for event in schedule.events_at(op_index):
            store.apply_event(event)
        if check_queries and op_index % 10 == 3:
            check_no_silent_loss(store, rng.getrandbits(14) | 0b1)
        kind = rng.choice(("insert", "insert", "insert", "delete", "update"))
        if kind == "insert" or not live:
            store.insert(next_eid, rng.getrandbits(14) | 0b1)
            live.add(next_eid)
            next_eid += 1
        elif kind == "delete":
            eid = rng.choice(sorted(live))
            store.delete(eid)
            live.discard(eid)
        else:
            eid = rng.choice(sorted(live))
            store.update(eid, rng.getrandbits(14) | 0b1)
        if op_index % repair_interval == repair_interval - 1:
            store.re_replicate()
            report = replication_report(store.cluster)
            assert report.healthy, (
                f"repair pass at op {op_index} left partitions "
                f"under-replicated: {report}"
            )
            # every repair pass must hand back a structurally sound
            # catalog — repair fixes placement, never corrupts the logic
            assert store.partitioner.check_invariants() == [], (
                f"repair pass at op {op_index} broke catalog invariants"
            )
        if op_index % 50 == 49:
            assert store.check_placement() == []
            assert store.partitioner.check_invariants() == []
    return OPERATIONS


def make_store(wal=None):
    return DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=8, weight=0.4)),
        replication_factor=REPLICATION_FACTOR,
        wal=wal,
    )


def store_signature(store):
    """Everything the acceptance bar compares: catalog + placement."""
    return (
        sorted(
            (
                partition.pid,
                partition.mask,
                tuple(partition.members()),
                (
                    partition.starters.eid_a, partition.starters.mask_a,
                    partition.starters.eid_b, partition.starters.mask_b,
                ),
            )
            for partition in store.catalog
        ),
        {
            pid: store.cluster.replica_nodes(pid)
            for pid in store.cluster.partition_ids()
        },
        sorted(store.cluster.unhosted_partitions()),
        store.catalog.next_partition_id,
        store.partitioner.split_count,
        [node.state.value for node in store.cluster.nodes],
    )


class TestChaos:
    def test_invariants_hold_under_chaos(self):
        schedule = build_schedule()
        store = make_store()
        drive_chaos(store, schedule)
        counters = store.counters
        assert counters.node_crashes >= 5
        assert counters.node_recoveries >= 1
        assert counters.queries_total >= 90
        assert counters.retries > 0, "chaos must actually exercise failover"
        # the run ends healthy after the final repair pass
        store.re_replicate()
        assert replication_report(store.cluster).healthy
        assert store.check_placement() == []

    def test_coordinator_kill_and_replay_is_exact(self, tmp_path):
        """Snapshot + WAL replay reproduces the uncrashed coordinator."""
        schedule = build_schedule()
        wal = WriteAheadLog(tmp_path / "coordinator.wal")
        store = make_store(wal=wal)

        rng = random.Random(WORKLOAD_SEED)
        live: set[int] = set()
        next_eid = 0
        for op_index in range(OPERATIONS):
            for event in schedule.events_at(op_index):
                store.apply_event(event)
            kind = rng.choice(("insert", "insert", "insert", "delete", "update"))
            if kind == "insert" or not live:
                store.insert(next_eid, rng.getrandbits(14) | 0b1)
                live.add(next_eid)
                next_eid += 1
            elif kind == "delete":
                eid = rng.choice(sorted(live))
                store.delete(eid)
                live.discard(eid)
            else:
                eid = rng.choice(sorted(live))
                store.update(eid, rng.getrandbits(14) | 0b1)
            if op_index % 25 == 24:
                store.re_replicate()
            if op_index == OPERATIONS // 2:
                store.checkpoint(tmp_path / "coordinator.snap.json")

        # kill: the in-memory coordinator is gone; rebuild from disk
        recovered = DistributedUniversalStore.recover(
            tmp_path / "coordinator.snap.json", tmp_path / "coordinator.wal"
        )
        assert store_signature(recovered) == store_signature(store)
        assert recovered.check_placement() == []
        assert recovered.partitioner.check_invariants() == []
        # and the recovered coordinator serves queries correctly
        check_no_silent_loss(recovered, 0b111)

    def test_higher_replication_factor_improves_availability(self):
        schedule = build_schedule()
        availability = {}
        for rf in (1, 2, 3):
            store = DistributedUniversalStore(
                NODES,
                CinderellaPartitioner(
                    CinderellaConfig(max_partition_size=8, weight=0.4)
                ),
                replication_factor=rf,
            )
            rng = random.Random(WORKLOAD_SEED)
            for op_index in range(400):
                for event in schedule.events_at(op_index):
                    store.apply_event(event)
                store.insert(op_index, rng.getrandbits(14) | 0b1)
                if op_index % 5 == 1:
                    store.route_query(rng.getrandbits(14) | 0b1)
                if op_index % 25 == 24:
                    store.re_replicate()
            availability[rf] = store.counters.availability()
        assert availability[1] < availability[2] <= availability[3]
        assert availability[2] > 0.9
        assert availability[3] == 1.0


class TestChaosObservability:
    def test_every_injected_fault_leaves_a_trace_event(self):
        """Observability satellite: the chaos schedule's faults must all
        land in the obs event log — an operator replaying an incident
        from ``repro obs`` sees every crash, recovery, degradation, and
        repair pass, with counts that agree with the store's counters."""
        from repro import obs

        schedule = build_schedule()
        store = make_store()
        state = obs.enable(
            slow_op_threshold_s=None, event_capacity=4096
        )
        try:
            drive_chaos(store, schedule, check_queries=False)
            store.re_replicate()
        finally:
            obs.disable()
        counters = store.counters
        events = state.events
        assert events.dropped == 0, "the event ring must hold the full run"
        assert len(events.of_kind("fault.crash")) == counters.node_crashes
        assert (
            len(events.of_kind("fault.recover")) == counters.node_recoveries
        )
        assert (
            len(events.of_kind("fault.degrade")) == counters.node_degradations
        )
        assert (
            len(events.of_kind("fault.repair"))
            == counters.re_replication_passes
        )
        # the events carry enough payload to reconstruct the schedule
        crashed_nodes = {
            event.fields["node"] for event in events.of_kind("fault.crash")
        }
        assert crashed_nodes, "the seeded schedule crashes at least one node"
        assert crashed_nodes <= set(range(NODES))
        # and the counters themselves mirrored into the registry
        assert (
            state.registry.get_value("repro_dist_node_crashes_total")
            == counters.node_crashes
        )
        assert (
            state.registry.get_value("repro_dist_re_replication_passes_total")
            == counters.re_replication_passes
        )
