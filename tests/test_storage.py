"""Tests for pages, heap files, the buffer pool, and I/O accounting."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.iostats import IOStats
from repro.storage.page import Page, PageFullError


class TestPage:
    def test_insert_and_read(self):
        page = Page(128)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert len(page) == 1

    def test_capacity_enforced(self):
        page = Page(32)
        page.insert(b"x" * 20)
        assert not page.fits(b"y" * 20)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 20)

    def test_delete_tombstones_and_reuses_slot(self):
        page = Page(128)
        slot_a = page.insert(b"aaa")
        page.insert(b"bbb")
        assert page.delete(slot_a) == b"aaa"
        with pytest.raises(KeyError):
            page.read(slot_a)
        assert page.insert(b"ccc") == slot_a  # tombstone reused
        assert len(page) == 2

    def test_replace_in_place(self):
        page = Page(128)
        slot = page.insert(b"aaa")
        page.replace(slot, b"bbbbbb")
        assert page.read(slot) == b"bbbbbb"

    def test_replace_overflow_rejected(self):
        page = Page(32)
        slot = page.insert(b"aaaa")
        with pytest.raises(PageFullError):
            page.replace(slot, b"b" * 100)

    def test_records_iterates_live_only(self):
        page = Page(128)
        a = page.insert(b"a")
        page.insert(b"b")
        page.delete(a)
        assert [record for _slot, record in page.records()] == [b"b"]

    def test_free_bytes_accounting(self):
        page = Page(100)
        before = page.free_bytes
        page.insert(b"12345")
        assert before - page.free_bytes == 5 + 8  # payload + slot overhead

    def test_tiny_page_size_rejected(self):
        with pytest.raises(ValueError):
            Page(4)


class TestHeapFile:
    def test_insert_read_delete(self):
        heap = HeapFile(page_size=64)
        rid = heap.insert(b"record-1")
        assert heap.read(rid) == b"record-1"
        heap.delete(rid)
        assert len(heap) == 0

    def test_spills_to_new_pages(self):
        heap = HeapFile(page_size=64)
        for i in range(20):
            heap.insert(b"x" * 30)
        assert heap.page_count > 1
        assert len(heap) == 20

    def test_scan_returns_everything(self):
        heap = HeapFile(page_size=64)
        payloads = {bytes([65 + i]) * 10 for i in range(10)}
        for payload in payloads:
            heap.insert(payload)
        scanned = {record for _rid, record in heap.scan()}
        assert scanned == payloads

    def test_oversized_record_rejected(self):
        heap = HeapFile(page_size=64)
        with pytest.raises(PageFullError):
            heap.insert(b"z" * 100)

    def test_replace_relocates_when_needed(self):
        heap = HeapFile(page_size=64)
        rid = heap.insert(b"a" * 40)
        heap.insert(b"b" * 10)
        new_rid = heap.replace(rid, b"c" * 45)
        assert heap.read(new_rid) == b"c" * 45
        assert len(heap) == 2

    def test_deleted_space_is_reused(self):
        heap = HeapFile(page_size=64)
        rids = [heap.insert(b"x" * 30) for _ in range(10)]
        pages_before = heap.page_count
        for rid in rids[:5]:
            heap.delete(rid)
        for _ in range(5):
            heap.insert(b"y" * 30)
        assert heap.page_count == pages_before

    def test_free_resets_everything(self):
        heap = HeapFile(page_size=64)
        heap.insert(b"abc")
        heap.free()
        assert len(heap) == 0
        assert heap.page_count == 0

    def test_data_bytes_tracks_live_payload(self):
        heap = HeapFile(page_size=128)
        rid = heap.insert(b"x" * 10)
        heap.insert(b"y" * 20)
        assert heap.data_bytes() == 10 + 20 + 2 * 8
        heap.delete(rid)
        assert heap.data_bytes() == 20 + 8


class TestIOAccounting:
    def test_scan_charges_pages_and_bytes(self):
        io = IOStats()
        heap = HeapFile(page_size=64, io=io)
        for _ in range(10):
            heap.insert(b"r" * 20)
        list(heap.scan())
        assert io.pages_read == heap.page_count
        assert io.records_read == 10
        assert io.bytes_read > 0

    def test_writes_counted(self):
        io = IOStats()
        heap = HeapFile(page_size=64, io=io)
        heap.insert(b"abcde")
        assert io.records_written == 1
        assert io.bytes_written == 5

    def test_snapshot_and_delta(self):
        io = IOStats()
        heap = HeapFile(page_size=64, io=io)
        heap.insert(b"x" * 10)
        before = io.snapshot()
        list(heap.scan())
        delta = io.delta_since(before)
        assert delta.records_written == 0
        assert delta.records_read == 1
        assert delta.pages_read == 1

    def test_merge_and_reset(self):
        a = IOStats(pages_read=2, bytes_read=100)
        b = IOStats(pages_read=3, bytes_read=50, records_read=7)
        a.merge(b)
        assert (a.pages_read, a.bytes_read, a.records_read) == (5, 150, 7)
        a.reset()
        assert a.pages_read == 0


class TestBufferPool:
    def test_disabled_pool_always_misses(self):
        pool = BufferPool(0)
        assert not pool.access(1, 0)
        assert not pool.access(1, 0)
        assert pool.misses == 2 and pool.hits == 0

    def test_hit_on_second_access(self):
        pool = BufferPool(4)
        assert not pool.access(1, 0)
        assert pool.access(1, 0)
        assert pool.hit_rate == 0.5

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.access(1, 0)
        pool.access(1, 1)
        pool.access(1, 2)  # evicts (1, 0)
        assert pool.evictions == 1
        assert not pool.access(1, 0)  # miss again

    def test_recency_updated_on_hit(self):
        pool = BufferPool(2)
        pool.access(1, 0)
        pool.access(1, 1)
        pool.access(1, 0)  # refresh
        pool.access(1, 2)  # evicts (1, 1), not (1, 0)
        assert pool.access(1, 0)

    def test_invalidate_file(self):
        pool = BufferPool(4)
        pool.access(1, 0)
        pool.access(2, 0)
        pool.invalidate_file(1)
        assert not pool.access(1, 0)
        assert pool.access(2, 0)

    def test_heap_scans_use_pool(self):
        io = IOStats()
        pool = BufferPool(16)
        heap = HeapFile(page_size=64, io=io, buffer_pool=pool)
        for _ in range(5):
            heap.insert(b"x" * 20)
        list(heap.scan())  # cold
        cold_reads = io.pages_read
        list(heap.scan())  # warm
        assert io.pages_read == cold_reads  # all hits
        assert io.buffer_hits > 0
