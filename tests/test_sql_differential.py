"""Differential tests: the SQL executor vs the native attribute-query path.

``AttributeQuery.sql()`` renders the paper's SQL form of every attribute
query (``SELECT a, b FROM universalTable WHERE a IS NOT NULL OR b IS NOT
NULL``).  Feeding that text back through :func:`repro.sql.execute` must
produce exactly the rows the native :meth:`CinderellaTable.execute` path
produces on the same catalog — the two executors share the storage layer
but nothing above it (different pruning, different predicate evaluation,
different projection code), so agreement pins them to each other.

The comparison is by row multiset: the native path visits partitions in
plan order, the SQL path in catalog order, and neither order is part of
the contract.
"""

from collections import Counter

import pytest

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.query.query import AttributeQuery
from repro.sql import execute
from repro.table.partitioned import CinderellaTable
from repro.workloads.dbpedia import generate_dbpedia_persons


def row_multiset(rows):
    return Counter(tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in rows)


def assert_same_rows(query: AttributeQuery, table: CinderellaTable) -> None:
    native = table.execute(query).rows
    naive = table.execute_naive(query).rows
    via_sql = execute(query.sql(), table).rows
    assert row_multiset(via_sql) == row_multiset(native), query.sql()
    assert row_multiset(via_sql) == row_multiset(naive), query.sql()


@pytest.fixture()
def loaded_table():
    dataset = generate_dbpedia_persons(n_entities=400, seed=17)
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=40.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(),
    )
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    return table


def _probe_queries(table: CinderellaTable) -> list[AttributeQuery]:
    """Queries over frequent, rare, and absent attributes, both modes."""
    names = sorted(table.dictionary.names())
    assert len(names) >= 4
    picks = [
        (names[0],),
        (names[1], names[3]),
        (names[0], names[2], names[len(names) // 2]),
        (names[-1],),
        (names[2], "no_such_attribute"),
    ]
    return [
        AttributeQuery(attributes, mode)
        for attributes in picks
        for mode in ("any", "all")
    ]


class TestSqlMatchesNativeExecutor:
    def test_agreement_on_loaded_catalog(self, loaded_table):
        for query in _probe_queries(loaded_table):
            assert_same_rows(query, loaded_table)

    def test_agreement_survives_mutations(self, loaded_table):
        table = loaded_table
        queries = _probe_queries(table)
        for query in queries:
            assert_same_rows(query, table)
        # mutate: deletes, updates, inserts forcing further splits
        for eid in range(0, 100, 7):
            table.delete(eid)
        for eid in range(101, 160, 9):
            table.update(eid, {"name": f"renamed {eid}", "deathPlace": "X"})
        for eid in range(10_000, 10_120):
            table.insert(
                {"name": f"new {eid}", "occupation": "tester", "era": eid % 5},
                entity_id=eid,
            )
        for query in queries:
            assert_same_rows(query, table)
        assert table.check_consistency() == []

    def test_agreement_on_cache_hits(self, loaded_table):
        """Second execution serves from the result cache; SQL must agree."""
        table = loaded_table
        query = AttributeQuery(tuple(sorted(table.dictionary.names())[:2]))
        table.execute(query)  # populate the cache
        hits_before = table.query_counters.cache_hits
        assert_same_rows(query, table)  # native side now cache-served
        assert table.query_counters.cache_hits > hits_before

    def test_agreement_after_maintenance(self, loaded_table):
        table = loaded_table
        queries = _probe_queries(table)
        table.merge_small_partitions(min_fill=0.6)
        for query in queries:
            assert_same_rows(query, table)
        table.reorganize()
        for query in queries:
            assert_same_rows(query, table)
        assert table.check_consistency() == []
