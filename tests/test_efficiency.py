"""Tests for the partitioning efficiency metric (Definition 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.core.efficiency import (
    catalog_efficiency,
    partitioning_efficiency,
    universal_table_efficiency,
)
from repro.core.partitioner import CinderellaPartitioner

masks = st.integers(min_value=0, max_value=2**16 - 1)


class TestHandComputedExamples:
    def test_perfect_partitioning(self):
        # two homogeneous partitions, each query touches exactly one
        entities = [(0b01, 1.0), (0b01, 1.0), (0b10, 1.0), (0b10, 1.0)]
        partitions = [(0b01, 2.0), (0b10, 2.0)]
        queries = [0b01, 0b10]
        assert partitioning_efficiency(entities, queries, partitions) == 1.0

    def test_universal_table_reads_everything(self):
        # one partition holding all entities; query 0b01 matches half of
        # the entities but reads all four
        entities = [(0b01, 1.0), (0b01, 1.0), (0b10, 1.0), (0b10, 1.0)]
        assert universal_table_efficiency(entities, [0b01]) == pytest.approx(0.5)

    def test_mixed_partition_reads_irrelevant_entities(self):
        # partition {e1: a, e2: b} read fully by a query for a
        entities = [(0b01, 1.0), (0b10, 1.0)]
        partitions = [(0b11, 2.0)]
        assert partitioning_efficiency(entities, [0b01], partitions) == 0.5

    def test_size_weighting(self):
        # the relevant entity is big, the irrelevant one small
        entities = [(0b01, 9.0), (0b10, 1.0)]
        partitions = [(0b11, 10.0)]
        assert partitioning_efficiency(entities, [0b01], partitions) == 0.9

    def test_vacuous_workload_is_perfect(self):
        entities = [(0b01, 1.0)]
        partitions = [(0b01, 1.0)]
        assert partitioning_efficiency(entities, [0b100], partitions) == 1.0

    def test_multiple_queries_accumulate(self):
        entities = [(0b01, 1.0), (0b10, 1.0)]
        partitions = [(0b11, 2.0)]
        # each query matches 1 of 2 read entities: (1+1)/(2+2)
        assert partitioning_efficiency(entities, [0b01, 0b10], partitions) == 0.5


class TestProperties:
    @given(
        st.lists(masks, min_size=1, max_size=30),
        st.lists(masks, min_size=1, max_size=8),
    )
    def test_bounded_between_zero_and_one(self, entity_masks, queries):
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=5, weight=0.4))
        for eid, mask in enumerate(entity_masks):
            p.insert(eid, mask)
        value = catalog_efficiency(p.catalog, queries)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(masks, min_size=1, max_size=40),
        st.lists(masks, min_size=1, max_size=6),
    )
    def test_partitioning_never_worse_than_universal(self, entity_masks, queries):
        """Soundly pruned partitions can only reduce data read, never add."""
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=8, weight=0.3))
        for eid, mask in enumerate(entity_masks):
            p.insert(eid, mask)
        entities = [(mask, 1.0) for mask in entity_masks]
        partitioned = catalog_efficiency(p.catalog, queries)
        universal = universal_table_efficiency(entities, queries)
        assert partitioned >= universal - 1e-12

    def test_catalog_efficiency_matches_raw_computation(self):
        p = CinderellaPartitioner(CinderellaConfig(max_partition_size=4, weight=0.4))
        entity_masks = [0b011, 0b011, 0b110, 0b1100, 0b1100]
        for eid, mask in enumerate(entity_masks):
            p.insert(eid, mask)
        queries = [0b001, 0b100]
        raw = partitioning_efficiency(
            [(m, 1.0) for m in entity_masks],
            queries,
            [(part.mask, part.total_size) for part in p.catalog],
        )
        assert catalog_efficiency(p.catalog, queries) == pytest.approx(raw)
