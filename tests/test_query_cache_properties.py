"""Property battery: cache coherence under arbitrary op interleavings.

The central property (ISSUE 3): **for any interleaving of modifications
and queries, a cache hit never serves a result from a stale partition
version.**  Hypothesis drives a model-based test — an oracle dictionary
of live entities next to the real table — through random interleavings
of inserts, value-churning updates, deletes, merge passes, offline
reorganizations, and queries.  After every query three things must hold:

* the fast path's rows equal the naive full-scan oracle's, bit for bit;
* the row multiset equals what the model dictionary predicts;
* every *servable* cache entry (stored version == current partition
  version) re-scans to exactly its stored rows
  (:func:`~repro.query.cache.verify_cache_coherence`).

Shrinking is deterministic: ``tests/conftest.py`` loads a
``derandomize=True`` profile, so the minimal counterexample of any
failure replays identically run to run — pinned by an explicit
double-``find`` test below.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache, verify_cache_coherence
from repro.query.query import AttributeQuery
from repro.table.partitioned import CinderellaTable

ATTRS = tuple(f"a{i}" for i in range(6))

masks = st.integers(min_value=1, max_value=2 ** len(ATTRS) - 1)

#: one step of an interleaving; entity references are indices into the
#: live set (modulo its size at application time)
operations = st.one_of(
    st.tuples(st.just("insert"), masks),
    st.tuples(st.just("update"), st.integers(0, 30), masks),
    st.tuples(st.just("delete"), st.integers(0, 30)),
    st.tuples(st.just("query"), masks, st.sampled_from(["any", "all"])),
    st.tuples(st.just("merge")),
    st.tuples(st.just("reorganize")),
)

interleavings = st.lists(operations, min_size=1, max_size=40)


def attributes_from_mask(mask: int, nonce: int) -> dict:
    """Entity payload for a mask; the nonce makes every write's values
    unique, so serving any stale row is guaranteed to be visible."""
    return {
        name: f"v{nonce}"
        for bit, name in enumerate(ATTRS)
        if mask & (1 << bit)
    }


def query_from_mask(mask: int, mode: str) -> AttributeQuery:
    return AttributeQuery(
        tuple(name for bit, name in enumerate(ATTRS) if mask & (1 << bit)),
        mode=mode,
    )


def expected_rows(model: dict, query: AttributeQuery) -> Counter:
    """The row multiset the model dictionary predicts for a query."""
    return Counter(
        tuple(sorted(query.project(attrs).items()))
        for attrs in model.values()
        if query.matches(attrs)
    )


def run_interleaving(ops, use_index=True, use_cache=True) -> dict:
    """Replay one interleaving; returns end-state diagnostics."""
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=6.0,
            weight=0.3,
            use_synopsis_index=use_index,
        ),
        result_cache=QueryResultCache() if use_cache else None,
    )
    model: dict[int, dict] = {}
    next_eid = 0
    for nonce, op in enumerate(ops):
        kind = op[0]
        if kind == "insert":
            attrs = attributes_from_mask(op[1], nonce)
            table.insert(attrs, entity_id=next_eid)
            model[next_eid] = attrs
            next_eid += 1
        elif kind == "update":
            if not model:
                continue
            eid = sorted(model)[op[1] % len(model)]
            attrs = attributes_from_mask(op[2], nonce)
            table.update(eid, attrs)
            model[eid] = attrs
        elif kind == "delete":
            if not model:
                continue
            eid = sorted(model)[op[1] % len(model)]
            table.delete(eid)
            del model[eid]
        elif kind == "merge":
            table.merge_small_partitions(min_fill=0.5)
        elif kind == "reorganize":
            table.reorganize(order="size")
        else:  # query
            query = query_from_mask(op[1], op[2])
            fast = table.execute(query)
            assert fast.rows == table.execute_naive(query).rows
            assert (
                Counter(tuple(sorted(row.items())) for row in fast.rows)
                == expected_rows(model, query)
            )
            if table.result_cache is not None:
                assert verify_cache_coherence(table.result_cache, table) == []
    assert table.check_consistency() == []
    if table.result_cache is not None:
        assert verify_cache_coherence(table.result_cache, table) == []
    return {
        "stale_drops": table.query_counters.cache_stale_drops,
        "hits": table.query_counters.cache_hits,
        "splits": table.partitioner.split_count,
    }


@pytest.mark.parametrize("use_index", [False, True], ids=["scan", "index"])
@pytest.mark.parametrize("use_cache", [False, True], ids=["nocache", "cache"])
@settings(max_examples=30)
@given(ops=interleavings)
def test_no_stale_serve_under_any_interleaving(ops, use_index, use_cache):
    run_interleaving(ops, use_index=use_index, use_cache=use_cache)


@settings(max_examples=25)
@given(interleavings)
def test_no_stale_serve_with_tiny_partitions_and_cache_pressure(ops):
    """Partition limit 2 maximizes splits; a 4-entry cache forces
    constant eviction alongside version invalidation."""
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=2.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(max_entries=4),
    )
    model: dict[int, dict] = {}
    next_eid = 0
    for nonce, op in enumerate(ops):
        kind = op[0]
        if kind == "insert":
            attrs = attributes_from_mask(op[1], nonce)
            table.insert(attrs, entity_id=next_eid)
            model[next_eid] = attrs
            next_eid += 1
        elif kind == "delete" and model:
            eid = sorted(model)[op[1] % len(model)]
            table.delete(eid)
            del model[eid]
        elif kind == "query":
            query = query_from_mask(op[1], op[2])
            fast = table.execute(query)
            assert fast.rows == table.execute_naive(query).rows
            assert verify_cache_coherence(table.result_cache, table) == []
    assert len(table.result_cache) <= 4


def _first_staleness_trace(ops) -> bool:
    """Predicate for the shrink-determinism pin: the interleaving makes
    at least one cache entry go stale and then get dropped on lookup."""
    try:
        return run_interleaving(ops)["stale_drops"] > 0
    except Exception:  # pragma: no cover - a real bug fails the @given tests
        return False


def test_shrunk_counterexamples_are_deterministic():
    """`find` twice, compare: with the derandomized profile the minimal
    interleaving producing a stale drop must be identical on every run
    — the guarantee that a CI failure shrinks the same way locally."""
    from hypothesis import find

    first = find(interleavings, _first_staleness_trace)
    second = find(interleavings, _first_staleness_trace)
    assert first == second
    # and it is genuinely minimal-looking: an insert, a query caching
    # the partition, a mutation bumping its version, and a re-query
    assert _first_staleness_trace(first)
    assert len(first) <= 4
