"""Day-2 operations — advisor, churn, maintenance, and snapshots.

A lifecycle walkthrough of running Cinderella in production, using the
extensions built on top of the paper:

1. **advise** — pick B and w for the data before enabling partitioning;
2. **load & churn** — online inserts, then a heavy deletion wave;
3. **maintain** — merge the under-filled fragments the paper's
   delete routine leaves behind;
4. **persist** — snapshot the table and restore it bit-exact.

Run with::

    python examples/operations_lifecycle.py
"""

import tempfile
from pathlib import Path

from repro import CinderellaTable
from repro.metrics import summarize_catalog
from repro.reporting import format_kv_block, format_table
from repro.storage.snapshot import load_table, save_table
from repro.tuning import advise
from repro.workloads import generate_dbpedia_persons


def main() -> None:
    dataset = generate_dbpedia_persons(n_entities=4000, seed=3)
    dictionary = dataset.dictionary()
    masks = [entity.synopsis_mask(dictionary) for entity in dataset.entities]

    # 1. advisor: pick B and w from a sample
    report = advise(masks, sample_limit=1500)
    print(format_table(
        ["w", "B", "efficiency", "partitions", "score"],
        [[t.weight, f"{t.max_partition_size:g}", t.efficiency,
          t.partition_count, t.score] for t in report.trials[:5]],
        title="1. Advisor (top 5 trials)",
    ))
    config = report.recommended
    print(f"   -> B = {config.max_partition_size:g}, w = {config.weight}\n")

    # 2. load and churn
    table = CinderellaTable(config)
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    loaded = summarize_catalog(table.catalog)
    for entity in dataset.entities:
        if entity.entity_id % 10 < 7:  # 70 % of the data ages out
            table.delete(entity.entity_id)
    churned = summarize_catalog(table.catalog)

    # 3. maintenance: merge the fragments
    merge_report = table.merge_small_partitions(min_fill=0.4)
    maintained = summarize_catalog(table.catalog)
    assert table.check_consistency() == []
    print(format_table(
        ["state", "entities", "partitions", "median fill"],
        [
            ["loaded", loaded.entity_count, loaded.partition_count,
             loaded.entities_summary.median],
            ["after 70 % deletes", churned.entity_count,
             churned.partition_count, churned.entities_summary.median],
            [f"after merge ({merge_report.merge_count} merges)",
             maintained.entity_count, maintained.partition_count,
             maintained.entities_summary.median],
        ],
        title="2./3. Churn and maintenance",
    ))

    # 4. snapshot round-trip
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "table.json"
        save_table(table, path)
        restored = load_table(path)
        print()
        print(format_kv_block(
            "4. Snapshot round-trip",
            [
                ("file size", f"{path.stat().st_size / 1024:.0f} KiB"),
                ("entities restored", len(restored)),
                ("partitions restored", restored.partition_count()),
                ("consistency check", restored.check_consistency() == []),
            ],
        ))


if __name__ == "__main__":
    main()
