"""Fault tolerance — crashes, failover, repair, and crash recovery.

A walkthrough of the fault-tolerance subsystem on the simulated
shared-nothing cluster (see docs/FAULT_TOLERANCE.md):

1. **replicate** — place partitions on two nodes each while loading;
2. **crash** — kill a node mid-workload and watch queries fail over;
3. **repair** — restore the replication factor with a repair pass;
4. **recover** — kill the *coordinator* and replay snapshot + WAL to
   the exact pre-crash state.

Run with::

    python examples/fault_tolerance.py
"""

import random
from pathlib import Path

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed import (
    DistributedUniversalStore,
    FailureSchedule,
    replication_report,
)
from repro.reporting import format_kv_block
from repro.storage.scratch import scratch_dir
from repro.storage.wal import WriteAheadLog

NODES = 5
OPS = 600
SEED = 7


def make_store(wal=None):
    return DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=8, weight=0.4)),
        replication_factor=2,
        wal=wal,
    )


def main() -> None:
    # the scratch dir (WAL + checkpoint) is removed on every exit path,
    # including Ctrl-C and SIGTERM mid-run
    with scratch_dir(prefix="cinderella-ft-") as workdir:
        _run(workdir)


def _run(workdir: Path) -> None:
    wal = WriteAheadLog(workdir / "coordinator.wal")
    store = make_store(wal=wal)
    schedule = FailureSchedule.random(
        NODES, OPS, seed=SEED, crash_rate=0.015, mean_downtime=50
    )
    print(f"schedule: {schedule.crash_count} node crashes over {OPS} ops\n")

    # 1-3. load under chaos: crash/recover events fire in operation time,
    # queries fail over to replicas, repair passes restore the factor
    rng = random.Random(SEED)
    for op_index in range(OPS):
        for event in schedule.events_at(op_index):
            print(f"  op {op_index:3d}: {event.action} node {event.node_id}")
            store.apply_event(event)
        store.insert(op_index, rng.getrandbits(12) | 0b1)
        if op_index % 10 == 3:
            store.route_query(rng.getrandbits(12) | 0b1)
        if op_index % 25 == 24:
            store.re_replicate()
        if op_index == OPS // 2:
            store.checkpoint(workdir / "coordinator.snap.json")
            print(f"  op {op_index:3d}: coordinator checkpoint written")
    store.re_replicate()
    assert replication_report(store.cluster).healthy
    assert store.check_placement() == []

    counters = store.counters.as_dict()
    print()
    print(format_kv_block("after the chaos run", [
        ("partitions", store.cluster.partition_count),
        ("node crashes survived", counters["node_crashes"]),
        ("queries", counters["queries_total"]),
        ("degraded queries", counters["queries_degraded"]),
        ("availability", f"{counters['availability']:.4f}"),
        ("failovers", counters["failovers"]),
        ("replicas re-created", counters["replicas_created"]),
    ]))

    # 4. kill the coordinator; replay snapshot + WAL
    recovered = DistributedUniversalStore.recover(
        workdir / "coordinator.snap.json", workdir / "coordinator.wal"
    )
    same_catalog = (
        sorted((p.pid, p.mask, tuple(p.members())) for p in recovered.catalog)
        == sorted((p.pid, p.mask, tuple(p.members())) for p in store.catalog)
    )
    same_placement = all(
        recovered.cluster.replica_nodes(pid) == store.cluster.replica_nodes(pid)
        for pid in store.cluster.partition_ids()
    )
    print()
    print(format_kv_block("coordinator crash recovery", [
        ("WAL records replayed", recovered.counters.wal_records_replayed),
        ("catalog identical", same_catalog),
        ("placement identical", same_placement),
        ("placement check clean", recovered.check_placement() == []),
    ]))
    assert same_catalog and same_placement


if __name__ == "__main__":
    main()
