"""SQL interface — transparent access the way the prototype offered it.

The paper's prototype "provides transparent data access […] as the user
inserts data to the universal table using regular SQL statements".  This
example drives the partitioned product catalog entirely through SQL,
showing how WHERE clauses translate into partition pruning — including
predicates the paper's synthetic workload doesn't cover (comparisons,
LIKE, conjunctions).

Run with::

    python examples/sql_interface.py
"""

from repro import CinderellaConfig, CinderellaTable, CostModel
from repro.sql import execute

PRODUCTS = [
    {"name": "Canon PowerShot S120", "resolution": 12.1, "aperture": 2.0,
     "weight": 198, "price": 329},
    {"name": "Sony SLT-A99", "resolution": 24, "aperture": 1.8,
     "weight": 733, "price": 1998},
    {"name": "Nikon D750", "resolution": 24.3, "aperture": 1.8,
     "weight": 750, "price": 1896},
    {"name": "WD4000FYYZ", "storage": "4TB", "rotation": 7200,
     "weight": 150, "price": 219},
    {"name": "WD2003FYYS", "storage": "2TB", "rotation": 7200,
     "weight": 640, "price": 119},
    {"name": "Samsung 860 EVO", "storage": "1TB", "weight": 50, "price": 99},
    {"name": "LG 60LA7408", "resolution": "Full HD", "screen": 40,
     "tuner": "DVB-T/C/S", "weight": 9800, "price": 1499},
]

STATEMENTS = [
    "SELECT name, aperture FROM products WHERE aperture IS NOT NULL",
    "SELECT name, price FROM products WHERE price < 300 ORDER BY price",
    "SELECT name FROM products WHERE storage LIKE '%TB' AND rotation IS NULL",
    "SELECT name, weight FROM products WHERE aperture IS NOT NULL "
    "OR tuner IS NOT NULL ORDER BY weight DESC LIMIT 3",
    "SELECT * FROM products WHERE rotation = 7200",
]


def main() -> None:
    table = CinderellaTable(CinderellaConfig(max_partition_size=3, weight=0.3))
    for product in PRODUCTS:
        table.insert(product)
    print(
        f"{len(table)} products partitioned into "
        f"{table.partition_count()} partitions\n"
    )

    model = CostModel()
    for sql in STATEMENTS:
        result = execute(sql, table)
        print(f"SQL> {sql}")
        print(
            f"     {len(result.rows)} rows | "
            f"{result.stats.partitions_pruned} of "
            f"{result.stats.partitions_total} partitions pruned | "
            f"{result.stats.entities_read} entities read | "
            f"{model.query_time_ms(result.stats):.3f} ms simulated"
        )
        for row in result.rows:
            print(f"     {row}")
        print()


if __name__ == "__main__":
    main()
