"""Quickstart — the paper's Figure 1 product catalog, partitioned online.

An electronics shop stores cameras, phones, TVs, disks, and GPS devices in
one universal table.  The entities share a few attributes (name, weight)
but differ wildly otherwise.  Cinderella partitions them online as they
arrive; a query for camera attributes then prunes the partitions that hold
only disks and TVs.

Run with::

    python examples/quickstart.py
"""

from repro import AttributeQuery, CinderellaConfig, CinderellaTable

PRODUCTS = [
    {"name": "Canon PowerShot S120", "resolution": 12.1, "aperture": 2.0,
     "screen": 3, "weight": 198},
    {"name": "Sony SLT-A99", "resolution": 24, "aperture": 1.8,
     "screen": 3, "weight": 733},
    {"name": "Samsung Galaxy S4", "resolution": 13, "screen": 4.3,
     "storage": "32GB", "weight": 133},
    {"name": "Apple iPod touch", "resolution": 5, "screen": 4,
     "storage": "64GB", "weight": 88},
    {"name": "LG 60LA7408", "resolution": "Full HD", "screen": 40,
     "tuner": "DVB-T/C/S", "weight": 9800},
    {"name": "WD4000FYYZ", "storage": "4TB", "rotation": 7200,
     "form_factor": '3.5"', "weight": 150},
    {"name": "WD2003FYYS", "storage": "2TB", "rotation": 7200,
     "form_factor": '3.5"', "weight": 640},
    {"name": "Garmin Dakota 20", "screen": 2.6, "weight": 150},
]


def main() -> None:
    # a small partition limit so the toy data set actually partitions;
    # w = 0.3 is in the paper's recommended 0.2-0.5 band
    table = CinderellaTable(CinderellaConfig(max_partition_size=3, weight=0.3))

    print("Inserting the Figure 1 product catalog ...")
    for product in PRODUCTS:
        outcome = table.insert(product)
        print(
            f"  {product['name']:<22} -> partition {outcome.partition_id}"
            + ("  (new partition)" if outcome.created_partitions else "")
            + (f"  ({outcome.splits} split)" if outcome.splits else "")
        )

    print(f"\nCinderella formed {table.partition_count()} partitions:")
    for partition in table.catalog:
        attrs = ", ".join(table.dictionary.decode(partition.mask))
        print(f"  partition {partition.pid}: {len(partition)} entities  [{attrs}]")

    query = AttributeQuery(("aperture", "resolution"))
    print(f"\nQuery: {query.sql()}")
    plan = table.plan(query)
    print(plan.describe())

    result = table.execute(query)
    print("\nRows:")
    for row in result.rows:
        print(f"  {row}")
    print(
        f"\nRead {result.stats.entities_read} of {len(table)} entities "
        f"({result.stats.partitions_pruned} of "
        f"{result.stats.partitions_total} partitions pruned)."
    )

    # modifications keep the partitioning healthy
    print("\nThe Galaxy S4 gains a camera aperture (update) ...")
    table.update(2, {**PRODUCTS[2], "aperture": 2.2})
    result = table.execute(query)
    print(f"The query now returns {len(result.rows)} rows.")
    assert table.check_consistency() == []
    print("Catalog and storage are consistent.")


if __name__ == "__main__":
    main()
