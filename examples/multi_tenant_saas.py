"""Multi-tenant scenario — workload-based Cinderella.

The paper's introduction names multi-tenancy databases as a core use case
for universal tables: every tenant of a SaaS CRM extends the base schema
with custom fields, so the shared table is wide and sparse.  This example
shows both Cinderella modes on such data:

* **entity-based** (default): entities cluster by attribute-set shape —
  tenants with similar customizations share partitions;
* **workload-based**: the known per-tenant report queries define the
  synopses, so entities cluster by *which reports touch them* — exactly
  the paper's "tailored for the given workload" setup.

Run with::

    python examples/multi_tenant_saas.py
"""

import random

from repro import (
    CinderellaConfig,
    CinderellaPartitioner,
    WorkloadBasedPartitioner,
    catalog_efficiency,
)
from repro.catalog import AttributeDictionary
from repro.reporting import format_kv_block, format_table

BASE_FIELDS = ("account", "owner", "created")
TENANT_FIELDS = {
    "acme": ("acme_sla_tier", "acme_renewal", "acme_region"),
    "globex": ("globex_leads", "globex_score"),
    "initech": ("initech_tps", "initech_cover_sheet", "initech_printer"),
    "umbrella": ("umbrella_lab", "umbrella_clearance"),
}


def generate_tenant_entities(n_per_tenant: int, dictionary, seed: int = 9):
    """CRM records: shared base fields plus tenant-specific custom fields."""
    rng = random.Random(seed)
    entities = []
    eid = 0
    for tenant, fields in TENANT_FIELDS.items():
        for _ in range(n_per_tenant):
            names = list(BASE_FIELDS)
            names.extend(f for f in fields if rng.random() < 0.8)
            entities.append((eid, tenant, dictionary.encode(names)))
            eid += 1
    rng.shuffle(entities)  # arrival order interleaves tenants
    return entities


def main() -> None:
    dictionary = AttributeDictionary()
    entities = generate_tenant_entities(300, dictionary)

    # per-tenant report queries: each references that tenant's fields only
    report_queries = {
        tenant: dictionary.encode(fields)
        for tenant, fields in TENANT_FIELDS.items()
    }

    config = CinderellaConfig(max_partition_size=250, weight=0.3)
    entity_based = CinderellaPartitioner(config)
    workload_based = WorkloadBasedPartitioner(
        list(report_queries.values()), config
    )
    for eid, _tenant, mask in entities:
        entity_based.insert(eid, mask)
        workload_based.insert(eid, mask)

    def tenant_purity(catalog) -> float:
        """Fraction of entities co-located with their own tenant majority."""
        tenant_of = {eid: tenant for eid, tenant, _mask in entities}
        pure = 0
        for partition in catalog:
            members = [tenant_of[eid] for eid in partition.entity_ids()]
            majority = max(set(members), key=members.count)
            pure += members.count(majority)
        return pure / len(entities)

    queries = list(report_queries.values())
    rows = [
        [
            "entity-based",
            len(entity_based.catalog),
            tenant_purity(entity_based.catalog),
            catalog_efficiency(entity_based.catalog, queries),
        ],
        [
            "workload-based",
            len(workload_based.catalog),
            tenant_purity(workload_based.catalog),
            "n/a (workload-space synopses)",
        ],
    ]
    print(format_table(
        ["mode", "partitions", "tenant purity", "EFFICIENCY(P)"],
        rows,
        title="Cinderella on a multi-tenant CRM universal table",
    ))

    print()
    print("Workload-based pruning per tenant report:")
    for index, tenant in enumerate(report_queries):
        relevant = workload_based.partitions_for_query(index)
        print(
            f"  {tenant:<9} report scans {len(relevant)} of "
            f"{len(workload_based.catalog)} partitions"
        )

    print()
    print(format_kv_block(
        "Takeaway",
        [
            ("entity-based", "clusters by schema shape, workload-agnostic"),
            ("workload-based", "clusters by query relevance, tailored"),
        ],
    ))


if __name__ == "__main__":
    main()
