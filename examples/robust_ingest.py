"""Robust ingest — validation, quarantine, backpressure, atomic maintenance.

A walkthrough of the transactional-maintenance and hardened-ingest
subsystem (see docs/ROBUST_INGEST.md):

1. **validate** — malformed rows are refused with typed errors and
   dead-lettered to quarantine instead of poisoning the catalog;
2. **requeue** — a repaired quarantined row re-enters through full
   validation;
3. **backpressure** — a bounded admission queue bounces the overflow
   with an explicit ``OVERLOADED`` outcome, losing nothing;
4. **retry** — duplicate client op ids are acknowledged as replayed,
   never double-applied;
5. **crash** — a merge pass is killed mid-operation and rolls back to
   the exact pre-operation catalog; the coordinator then crashes after
   a *committed* merge and recovers it exactly from snapshot + WAL.

Run with::

    python examples/robust_ingest.py
"""

from pathlib import Path

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed import DistributedUniversalStore
from repro.distributed.failures import CrashInjector, MidOperationCrash
from repro.ingest import (
    EmptySynopsisError,
    IngestPipeline,
    IngestRequest,
    OVERLOADED,
    QUEUED,
)
from repro.reporting import format_kv_block
from repro.storage.scratch import scratch_dir
from repro.storage.wal import WriteAheadLog

NODES = 4
UNIVERSE = 0xFF  # eight declared attributes


def catalog_signature(store):
    return sorted(
        (p.pid, p.mask, tuple(sorted(p.entity_ids()))) for p in store.catalog
    )


def main() -> None:
    # the scratch dir (WAL + checkpoint) is removed on every exit path,
    # including Ctrl-C and SIGTERM mid-run
    with scratch_dir(prefix="cinderella-ingest-") as workdir:
        _run(workdir)


def _run(workdir: Path) -> None:
    wal = WriteAheadLog(workdir / "coordinator.wal")
    store = DistributedUniversalStore(
        NODES,
        CinderellaPartitioner(CinderellaConfig(max_partition_size=10, weight=0.4)),
        replication_factor=2,
        wal=wal,
    )
    pipe = IngestPipeline(store, attribute_universe=UNIVERSE, max_pending=16)

    # 1. validation: clean rows apply, malformed rows are dead-lettered
    rows = [(eid, 0b0011 if eid % 2 else 0b1100) for eid in range(40)]
    rows[7] = (7, 0)                  # empty synopsis
    rows[13] = (13, 0b11, -4)         # negative SIZE(e)
    rows[21] = (5, 0b1)               # duplicate entity id
    rows[30] = (30, 0b1 | (1 << 40))  # undeclared attribute bit
    results = pipe.load(rows)
    print(format_kv_block("hardened load of 40 rows (4 malformed)", [
        ("applied", sum(r.status == "applied" for r in results)),
        ("quarantined", sum(r.status == "quarantined" for r in results)),
        ("quarantine summary", dict(pipe.quarantine.summary())),
        ("catalog invariants", store.partitioner.check_invariants() == []),
    ]))

    # 2. repair the empty-synopsis row in place, then requeue it
    entry = pipe.quarantine.take(7)
    repaired = IngestRequest("insert", 7, 0b0011)
    pipe.quarantine.add(repaired, EmptySynopsisError(entry.reason))
    result = pipe.requeue(7)
    pipe.process()
    print()
    print(format_kv_block("requeue of the repaired row", [
        ("requeue admitted", result.status == QUEUED),
        ("entity 7 stored", store.catalog.has_entity(7)),
        ("quarantine left", len(pipe.quarantine)),
    ]))

    # 3. backpressure: the 17th submission in a burst is bounced, not lost
    burst = [IngestRequest("insert", 100 + i, 0b11) for i in range(20)]
    statuses = [pipe.submit(request).status for request in burst]
    pipe.process()
    resubmitted = [
        pipe.ingest(burst[i]).status
        for i, status in enumerate(statuses)
        if status == OVERLOADED
    ]
    print()
    print(format_kv_block("burst of 20 against a 16-slot queue", [
        ("queued first pass", statuses.count(QUEUED)),
        ("bounced (overloaded)", statuses.count(OVERLOADED)),
        ("applied on resubmit", resubmitted.count("applied")),
        ("high watermark", pipe.counters.queue_high_watermark),
    ]))

    # 4. idempotent retry: the duplicate op id is a no-op acknowledgement
    first = pipe.ingest(IngestRequest("insert", 200, 0b11, op_id="client-200"))
    retry = pipe.ingest(IngestRequest("insert", 200, 0b11, op_id="client-200"))
    print()
    print(format_kv_block("at-least-once sender retries op client-200", [
        ("first", first.status),
        ("retry", retry.status),
        ("stored once", store.catalog.has_entity(200)),
    ]))

    # 5a. crash a merge mid-operation: exact rollback
    before = catalog_signature(store)
    injector = CrashInjector(crash_at=2)
    try:
        store.merge_small(min_fill=0.9, crash_hook=injector.reached)
    except MidOperationCrash as crash:
        print(f"\n  {crash}")
    print(format_kv_block("after the mid-merge crash", [
        ("catalog rolled back exactly", catalog_signature(store) == before),
        ("invariants clean", store.partitioner.check_invariants() == []),
        ("ops rolled back", store.robustness.ops_rolled_back),
    ]))

    # 5b. commit a merge, crash the coordinator, recover from snapshot+WAL
    store.checkpoint(workdir / "coordinator.snap.json")
    report = store.merge_small(min_fill=0.9)
    committed = catalog_signature(store)
    recovered = DistributedUniversalStore.recover(
        workdir / "coordinator.snap.json", workdir / "coordinator.wal"
    )
    print()
    print(format_kv_block("coordinator crash after a committed merge", [
        ("merges committed", report.merge_count),
        ("recovered catalog identical", catalog_signature(recovered) == committed),
        ("recovered invariants clean",
         recovered.partitioner.check_invariants() == []),
        ("ops committed", store.robustness.ops_committed),
    ]))
    assert catalog_signature(recovered) == committed


if __name__ == "__main__":
    main()
