"""DBpedia scenario — the paper's irregular-data evaluation in one script.

Loads the synthetic DBpedia person extract (calibrated to the paper's
Figure 4) into a Cinderella-partitioned universal table and into the
unpartitioned baseline, then compares selective-query cost, partitioning
efficiency (Definition 1), and the resulting partition layout.

Run with::

    python examples/dbpedia_partitioning.py [n_entities]
"""

import sys

from repro import (
    CinderellaConfig,
    CinderellaTable,
    CostModel,
    UniversalTable,
    catalog_efficiency,
    universal_table_efficiency,
)
from repro.metrics import summarize_catalog
from repro.reporting import format_kv_block, format_table
from repro.workloads import (
    build_query_workload,
    generate_dbpedia_persons,
    representative_queries,
)


def main(n_entities: int = 10_000) -> None:
    print(f"Generating {n_entities} DBpedia person entities ...")
    dataset = generate_dbpedia_persons(n_entities=n_entities, seed=42)
    print(
        f"  {len(dataset.attribute_names)} attributes, "
        f"sparseness {dataset.sparseness():.2f} (paper: 0.94)"
    )

    config = CinderellaConfig(max_partition_size=n_entities // 20, weight=0.2)
    cinderella = CinderellaTable(config, page_size=1024)
    universal = UniversalTable(page_size=1024)
    print(f"Loading both layouts (B = {config.max_partition_size:g}, w = 0.2) ...")
    for entity in dataset.entities:
        cinderella.insert(entity.attributes, entity_id=entity.entity_id)
        universal.insert(entity.attributes, entity_id=entity.entity_id)

    summary = summarize_catalog(cinderella.catalog)
    print()
    print(format_kv_block(
        "Cinderella partitioning",
        [
            ("partitions", summary.partition_count),
            ("splits during load", cinderella.partitioner.split_count),
            ("median entities/partition", summary.entities_summary.median),
            ("median attributes/partition", summary.attributes_summary.median),
            ("median sparseness/partition", summary.sparseness_summary.median),
        ],
    ))

    dictionary = cinderella.dictionary
    masks = list(cinderella.entity_masks().values())
    workload = representative_queries(
        build_query_workload(masks, dictionary, max_triples=60), per_bucket=1
    )
    model = CostModel()

    rows = []
    for spec in workload[::3]:
        stats_c = cinderella.execute(spec.query).stats
        stats_u = universal.execute(spec.query).stats
        rows.append(
            [
                ", ".join(spec.query.attributes)[:34],
                spec.selectivity,
                model.query_time_ms(stats_c),
                model.query_time_ms(stats_u),
                f"{stats_c.partitions_pruned}/{stats_c.partitions_total}",
            ]
        )
    print()
    print(format_table(
        ["query attributes", "selectivity", "cinderella ms", "universal ms",
         "pruned"],
        rows,
        title="Simulated query cost by selectivity",
    ))

    query_masks = [s.query.synopsis_mask(dictionary) for s in workload]
    eff_c = catalog_efficiency(cinderella.catalog, query_masks)
    eff_u = universal_table_efficiency([(m, 1.0) for m in masks], query_masks)
    print()
    print(format_kv_block(
        "Partitioning efficiency (Definition 1)",
        [("cinderella", eff_c), ("universal table", eff_u)],
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
