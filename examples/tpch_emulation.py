"""TPC-H scenario — the paper's regular-data experiment (Section V-C).

Loads a TPC-H database into a Cinderella-partitioned universal table,
shows that Cinderella recovers the TPC-H schema exactly, and runs part of
the 22-query workload through the schema-emulating views against the
standard per-table layout.

Run with::

    python examples/tpch_emulation.py [scale_factor]
"""

import sys
import time

from repro import CinderellaConfig, CostModel
from repro.reporting import format_kv_block, format_table
from repro.workloads.tpch import (
    CinderellaTPCHDatabase,
    StandardTPCHDatabase,
    generate_tpch,
    run_query,
)


def main(scale_factor: float = 0.002) -> None:
    print(f"Generating TPC-H at scale factor {scale_factor} ...")
    data = generate_tpch(scale_factor=scale_factor, seed=7)
    print(f"  {data.total_rows()} rows: {data.row_counts()}")

    print("\nLoading into a Cinderella universal table (B = 500, w = 0.5) ...")
    started = time.perf_counter()
    cinderella = CinderellaTPCHDatabase(
        data, CinderellaConfig(max_partition_size=500, weight=0.5)
    )
    print(f"  loaded in {time.perf_counter() - started:.1f}s, "
          f"{cinderella.partition_count()} partitions")

    print("\nRecovered schema (one line per partition attribute set):")
    seen = set()
    for name, columns in sorted(cinderella.recovered_schema().items()):
        signature = frozenset(columns)
        if signature in seen:
            continue
        seen.add(signature)
        prefix = columns[0].split("_")[0] if columns else "?"
        print(f"  {prefix}_* table: {len(columns)} columns")
    print(f"  schema exactly matches TPC-H: {cinderella.schema_is_exact()}")

    standard = StandardTPCHDatabase(data)
    model = CostModel()
    rows = []
    for number in (1, 3, 6, 12, 14):
        result_std = run_query(number, standard)
        sim_std = model.workload_time_ms(standard.pop_stats())
        result_cin = run_query(number, cinderella)
        sim_cin = model.workload_time_ms(cinderella.pop_stats())
        assert len(result_std) == len(result_cin)
        rows.append([f"Q{number}", len(result_std), sim_std, sim_cin,
                     f"{100 * sim_cin / sim_std:.1f} %"])
    print()
    print(format_table(
        ["query", "rows", "standard ms", "cinderella ms", "overhead"],
        rows,
        title="Query cost through schema-emulating views (simulated)",
    ))
    print()
    print(format_kv_block(
        "Takeaway (paper Table I)",
        [
            ("schema recovered exactly", cinderella.schema_is_exact()),
            ("overhead source", "UNION ALL branches + projection"),
            ("overhead shrinks with", "larger partition size limit B"),
        ],
    ))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
